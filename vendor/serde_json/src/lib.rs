//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the vendored serde stub's [`Value`] tree as JSON.
//! Supports `to_string`, `to_string_pretty`, `to_vec`, `from_str`, the
//! [`json!`] macro and an [`Error`] type — the full surface `jetsim`
//! uses.

// API-subset stub of the real crate; keep lints quiet so the
// workspace lint gate (-D warnings) tracks first-party code only.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// A JSON (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serialisable value into a [`Value`] tree (used by the
/// [`json!`] macro).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors upstream's
/// signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` to a pretty-printed (2-space indent) JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors upstream's
/// signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialises `value` to a compact JSON byte vector.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors upstream's
/// signature.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a JSON document into any deserialisable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Upstream errors on non-finite floats; emitting null keeps the
        // document valid, which is friendlier for benchmark reports.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Match upstream's "1.0" rendering for integral floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        // Rust's shortest-roundtrip formatting.
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::I64(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------

/// Builds a [`Value`] from JSON-like syntax.
///
/// Object values may be nested `{ ... }` objects, `[ ... ]` arrays of
/// expressions, or any Rust expression whose type implements the stub
/// `serde::Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($inner:tt)* }) => {{
        #[allow(unused_mut)]
        let mut fields: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_entries!(fields; $($inner)*);
        $crate::Value::Map(fields)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![$($crate::to_value(&$elem)),*])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal helper for [`json!`] object bodies. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($fields:ident; ) => {};
    ($fields:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $($crate::json_object_entries!($fields; $($rest)*);)?
    };
    ($fields:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::Value::Null));
        $($crate::json_object_entries!($fields; $($rest)*);)?
    };
    ($fields:ident; $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $fields.push(($key.to_string(), $crate::to_value(&$value)));
        $($crate::json_object_entries!($fields; $($rest)*);)?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = json!({
            "name": "jetsim",
            "batches": [1, 2, 4],
            "nested": { "ok": true, "ratio": 2.5 },
            "nothing": null,
        });
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"jetsim","batches":[1,2,4],"nested":{"ok":true,"ratio":2.5},"nothing":null}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"jetsim\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        let back2: Value = from_str(&compact).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn integral_floats_render_like_upstream() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&-2.0f64).unwrap(), "-2.0");
        assert_eq!(to_string(&1u64).unwrap(), "1");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\tand \\ back";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn negative_and_large_numbers() {
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
        let back: u64 = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(back, u64::MAX);
        let back: f64 = from_str("1e-3").unwrap();
        assert!((back - 0.001).abs() < 1e-12);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("{} junk").is_err());
    }
}
