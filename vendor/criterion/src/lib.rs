//! Offline stand-in for the `criterion` crate (API subset).
//!
//! Provides the macro + type surface `jetsim`'s `harness = false` bench
//! targets use, with a simple warm-up + median-of-samples timing loop
//! instead of criterion's full statistical machinery. Results print as
//! one line per benchmark:
//!
//! ```text
//! bench_name              median   1.234 ms   (11 samples, 8 iters/sample)
//! ```

// API-subset stub of the real crate; keep lints quiet so the
// workspace lint gate (-D warnings) tracks first-party code only.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched
/// work (forwards to [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration timing harness handed to `bench_function` closures.
pub struct Bencher {
    /// Measured samples, one duration per sample of `iters` iterations.
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly and records timing samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes
        // roughly 5ms per sample, capped so slow benches still finish.
        let calib_start = Instant::now();
        black_box(routine());
        let once = calib_start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted
            .get(sorted.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO)
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} us", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark manager (`criterion::Criterion` subset).
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 11 }
    }
}

impl Criterion {
    fn run_one(&self, name: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count,
        };
        f(&mut bencher);
        let iters = bencher.samples.len();
        println!(
            "{name:<48} median {:>12}   ({iters} samples)",
            fmt_duration(bencher.median()),
        );
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        self.run_one(name.as_ref(), self.sample_count, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        println!("group: {}", name.as_ref());
        BenchmarkGroup {
            criterion: self,
            prefix: name.as_ref().to_string(),
            sample_count: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(1));
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        let full = format!("{}/{}", self.prefix, name.as_ref());
        self.criterion.run_one(&full, samples, &mut f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups (for `harness = false`
/// bench targets).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        c.bench_function(format!("{}_{}", "direct", 1), |b| {
            b.iter(|| black_box(1 + 1))
        });
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
