//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Property tests run a fixed number of deterministically generated
//! cases (seeded from the test's name and the case index, overridable
//! via `PROPTEST_CASES`). Failing inputs are reported with the case
//! number and every generated argument's `Debug` form; there is **no
//! shrinking** — rerun with the printed inputs to debug.
//!
//! Supported surface (exactly what the `jetsim` workspace uses):
//! `proptest!` with optional `#![proptest_config(...)]`, integer/float
//! range strategies, tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, `prop::option::weighted`,
//! `prop::string::string_regex` (and `&str` literals as regex
//! strategies), `any::<T>()` for primitive `T`, `.prop_map`,
//! `prop_assert!` / `prop_assert_eq!`, and `ProptestConfig::with_cases`.

// API-subset stub of the real crate; keep lints quiet so the
// workspace lint gate (-D warnings) tracks first-party code only.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration (`proptest::test_runner::Config` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, like upstream; `PROPTEST_CASES` overrides.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Per-case source of randomness handed to strategies.
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A deterministic runner for `(test name, case index)`.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut h);
        let seed = h.finish() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A failed property case (returned by `prop_assert!`-style macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.source.new_value(runner))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        runner.rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * runner.rng.gen::<f64>()
    }
}

/// String literals act as regex strategies, like upstream.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        let gen = string::RegexGenerator::parse(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy `{self}`: {e}"));
        gen.generate(&mut runner.rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$n.new_value(runner),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Primitive types generatable by [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.rng.gen::<bool>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates any value of `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

// ---------------------------------------------------------------------
// prop::collection
// ---------------------------------------------------------------------

/// `prop::collection` subset.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// A length range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length falls in `size`, with elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = runner
                .rng
                .gen_range(self.size.lo..self.size.hi_exclusive.max(self.size.lo + 1));
            (0..n).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// prop::sample
// ---------------------------------------------------------------------

/// `prop::sample` subset.
pub mod sample {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `options` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            assert!(!self.options.is_empty(), "select over empty options");
            let i = runner.rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

// ---------------------------------------------------------------------
// prop::option
// ---------------------------------------------------------------------

/// `prop::option` subset.
pub mod option {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// The strategy returned by [`weighted`].
    #[derive(Debug, Clone)]
    pub struct Weighted<S> {
        probability: f64,
        inner: S,
    }

    /// Generates `Some` with probability `probability`, else `None`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> Weighted<S> {
        Weighted {
            probability: probability.clamp(0.0, 1.0),
            inner,
        }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Option<S::Value> {
            if runner.rng.gen::<f64>() < self.probability {
                Some(self.inner.new_value(runner))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------
// prop::string
// ---------------------------------------------------------------------

/// `prop::string` subset: a regex-lite string generator.
pub mod string {
    use super::{Strategy, TestRunner};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Regex parse error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One pattern atom with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Atom {
        /// Candidate characters (a singleton for literals).
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// A compiled regex-lite pattern: a sequence of character classes
    /// with `{m,n}` quantifiers. Supports literals, `\`-escapes and
    /// `[...]` classes with ranges — the subset the workspace's patterns
    /// use ("[ -~]{0,20}", "[a-z0-9 ]{0,12}", ...).
    #[derive(Debug, Clone)]
    pub struct RegexGenerator {
        atoms: Vec<Atom>,
    }

    impl RegexGenerator {
        /// Compiles `pattern`.
        ///
        /// # Errors
        ///
        /// Returns [`Error`] on syntax outside the supported subset.
        pub fn parse(pattern: &str) -> Result<Self, Error> {
            let chars: Vec<char> = pattern.chars().collect();
            let mut i = 0usize;
            let mut atoms = Vec::new();
            while i < chars.len() {
                let class = match chars[i] {
                    '[' => {
                        let (class, next) = parse_class(&chars, i + 1)?;
                        i = next;
                        class
                    }
                    '\\' => {
                        let c = *chars
                            .get(i + 1)
                            .ok_or_else(|| Error("dangling escape".into()))?;
                        i += 2;
                        vec![c]
                    }
                    '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                        return Err(Error(format!(
                            "unsupported regex syntax `{}` (vendored stub)",
                            chars[i]
                        )))
                    }
                    c => {
                        i += 1;
                        vec![c]
                    }
                };
                let (min, max) = if chars.get(i) == Some(&'{') {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .ok_or_else(|| Error("unterminated quantifier".into()))?
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    let parts: Vec<&str> = body.split(',').collect();
                    match parts.as_slice() {
                        [n] => {
                            let n = n
                                .trim()
                                .parse()
                                .map_err(|_| Error(format!("bad quantifier {{{body}}}")))?;
                            (n, n)
                        }
                        [m, n] => (
                            m.trim()
                                .parse()
                                .map_err(|_| Error(format!("bad quantifier {{{body}}}")))?,
                            n.trim()
                                .parse()
                                .map_err(|_| Error(format!("bad quantifier {{{body}}}")))?,
                        ),
                        _ => return Err(Error(format!("bad quantifier {{{body}}}"))),
                    }
                } else {
                    (1, 1)
                };
                if min > max {
                    return Err(Error(format!("inverted quantifier {{{min},{max}}}")));
                }
                atoms.push(Atom {
                    chars: class,
                    min,
                    max,
                });
            }
            Ok(RegexGenerator { atoms })
        }

        /// Generates one matching string.
        pub fn generate(&self, rng: &mut SmallRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.gen_range(atom.min..=atom.max);
                for _ in 0..n {
                    let i = rng.gen_range(0..atom.chars.len());
                    out.push(atom.chars[i]);
                }
            }
            out
        }
    }

    fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), Error> {
        let mut out = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                *chars
                    .get(i)
                    .ok_or_else(|| Error("dangling escape in class".into()))?
            } else {
                chars[i]
            };
            // Range `a-z` when `-` is neither first nor last.
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                let hi = chars[i + 2];
                if (c as u32) > (hi as u32) {
                    return Err(Error(format!("inverted class range {c}-{hi}")));
                }
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        out.push(ch);
                    }
                }
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        }
        if i >= chars.len() {
            return Err(Error("unterminated character class".into()));
        }
        if out.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok((out, i + 1)) // skip `]`
    }

    /// The strategy returned by [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        gen: RegexGenerator,
    }

    /// Compiles `pattern` into a string strategy.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on syntax outside the supported subset.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        RegexGenerator::parse(pattern).map(|gen| RegexGeneratorStrategy { gen })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn new_value(&self, runner: &mut TestRunner) -> String {
            self.gen.generate(runner.rng())
        }
    }
}

// ---------------------------------------------------------------------
// prelude + macros
// ---------------------------------------------------------------------

/// `use proptest::prelude::*;` — everything the tests need.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Mirror of upstream's `prelude::prop` module re-exports.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::string;
    }
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut runner =
                    $crate::TestRunner::deterministic(stringify!($name), case);
                let mut inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let value = $crate::Strategy::new_value(&$strat, &mut runner);
                    inputs.push(format!(
                        "{} = {:?}",
                        stringify!($arg),
                        value
                    ));
                    let $arg = value;
                )+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {case} of {} failed: {e}\n  inputs:\n    {}",
                        stringify!($name),
                        inputs.join("\n    "),
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest case {case} of {} panicked\n  inputs:\n    {}",
                            stringify!($name),
                            inputs.join("\n    "),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (1u64..100, prop::collection::vec(0.0f64..1.0, 1..8));
        let mut a = TestRunner::deterministic("t", 3);
        let mut b = TestRunner::deterministic("t", 3);
        assert_eq!(
            format!("{:?}", strat.new_value(&mut a)),
            format!("{:?}", strat.new_value(&mut b)),
        );
        let mut c = TestRunner::deterministic("t", 4);
        // Overwhelmingly likely to differ.
        assert_ne!(
            format!("{:?}", strat.new_value(&mut a)),
            format!("{:?}", strat.new_value(&mut c)),
        );
    }

    #[test]
    fn regex_lite_generates_matching_strings() {
        let strat = prop::string::string_regex("[a-c]{2,4}x").expect("valid");
        let mut runner = TestRunner::deterministic("re", 0);
        for _ in 0..100 {
            let s = strat.new_value(&mut runner);
            assert!(s.ends_with('x'));
            let body = &s[..s.len() - 1];
            assert!((2..=4).contains(&body.len()), "{s}");
            assert!(body.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
        }
    }

    #[test]
    fn unsupported_regex_is_rejected() {
        assert!(prop::string::string_regex("a|b").is_err());
        assert!(prop::string::string_regex("[a-z").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro machinery itself: args bind, asserts work.
        #[test]
        fn macro_smoke(x in 1u64..10, v in prop::collection::vec(0u8..4, 2), s in "[a-b]{1,3}") {
            prop_assert!(x >= 1 && x < 10);
            prop_assert_eq!(v.len(), 2);
            prop_assert!(!s.is_empty() && s.len() <= 3, "s={}", s);
        }
    }
}
