//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Generates `serde::Serialize::to_value` / `serde::Deserialize::from_value`
//! impls against the stub's `Value` tree. Implemented with hand-rolled
//! token parsing (no `syn`/`quote` — this builds fully offline).
//!
//! Supported shapes — exactly what the `jetsim` workspace derives:
//! named-field structs, unit structs, tuple structs (newtype =
//! transparent, wider = array), enums with unit / newtype / tuple /
//! struct variants (externally tagged, like upstream's default), at most
//! a handful of plain type parameters, and the container attribute
//! `#[serde(rename_all = "lowercase")]`.

// API-subset stub of the real crate; keep lints quiet so the
// workspace lint gate (-D warnings) tracks first-party code only.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Tiny IR
// ---------------------------------------------------------------------

struct Item {
    name: String,
    /// Type-parameter idents, e.g. `["T"]` for `PerPrecision<T>`.
    generics: Vec<String>,
    /// `#[serde(rename_all = "lowercase")]` present on the container.
    rename_lowercase: bool,
    data: Data,
}

enum Data {
    /// Named-field struct; field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this many fields (1 = newtype, transparent).
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, got {other:?}"),
        }
    }

    /// Skips any leading `#[...]` attributes; returns true if one of them
    /// was `#[serde(...)]` mentioning `lowercase`.
    fn skip_attrs(&mut self) -> bool {
        let mut lowercase = false;
        while self.eat_punct('#') {
            // Outer attribute group (inner `#![...]` never appears here).
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let text = g.stream().to_string();
                    if text.starts_with("serde") && text.contains("lowercase") {
                        lowercase = true;
                    }
                }
                other => panic!("serde_derive: malformed attribute: {other:?}"),
            }
        }
        lowercase
    }

    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1; // pub(crate), pub(super), ...
                }
            }
        }
    }

    /// Consumes a `<...>` generics list, returning type-parameter names.
    fn parse_generics(&mut self) -> Vec<String> {
        if !self.eat_punct('<') {
            return Vec::new();
        }
        let mut params = Vec::new();
        let mut depth = 1usize;
        let mut at_param_start = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => at_param_start = true,
                    '\'' => {
                        // Lifetime: consume its ident, stay "at start" so
                        // `'a, T` still records T.
                        let _ = self.next();
                        at_param_start = false;
                    }
                    _ => at_param_start = false,
                },
                Some(TokenTree::Ident(i)) => {
                    if at_param_start && depth == 1 {
                        params.push(i.to_string());
                    }
                    at_param_start = false;
                }
                Some(_) => at_param_start = false,
                None => panic!("serde_derive: unterminated generics"),
            }
        }
        params
    }

    /// Skips tokens up to (not including) a top-level `,`, balancing
    /// `<`/`>` so commas inside generic arguments don't terminate early.
    fn skip_type(&mut self) {
        let mut angle = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) => match p.as_char() {
                    ',' if angle == 0 => return,
                    '<' => angle += 1,
                    '>' => angle = angle.saturating_sub(1),
                    _ => {}
                },
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn cursor_of(stream: TokenStream) -> Cursor {
    Cursor {
        toks: stream.into_iter().collect(),
        pos: 0,
    }
}

/// Field names of a named-field body `{ ... }`.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut c = cursor_of(group);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        c.skip_visibility();
        let name = c.expect_ident("field name");
        assert!(
            c.eat_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        c.skip_type();
        c.eat_punct(',');
        fields.push(name);
    }
    fields
}

/// Number of fields in a tuple body `( ... )`.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = cursor_of(group);
    let mut count = 0usize;
    while c.peek().is_some() {
        c.skip_attrs();
        c.skip_visibility();
        c.skip_type();
        count += 1;
        c.eat_punct(',');
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut c = cursor_of(group);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        let name = c.expect_ident("variant name");
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                c.pos += 1;
                match count_tuple_fields(stream) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                c.pos += 1;
                VariantKind::Struct(parse_named_fields(stream))
            }
            _ => VariantKind::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip its expression.
            c.skip_type();
        }
        c.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse(input: TokenStream) -> Item {
    let mut c = cursor_of(input);
    let rename_lowercase = c.skip_attrs();
    c.skip_visibility();
    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!("serde_derive: only structs and enums are supported");
    };
    let name = c.expect_ident("type name");
    let generics = c.parse_generics();
    // Where-clauses are not used in this workspace; the next token is the
    // body (or `;`/`(...)` for unit/tuple structs).
    let data = if is_enum {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Unit,
            other => panic!("serde_derive: expected struct body, got {other:?}"),
        }
    };
    Item {
        name,
        generics,
        rename_lowercase,
        data,
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generics.is_empty() {
        format!("impl {trait_path} for {} ", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect();
        format!(
            "impl<{}> {trait_path} for {}<{}> ",
            bounded.join(", "),
            item.name,
            item.generics.join(", ")
        )
    }
}

fn variant_tag(item: &Item, variant: &str) -> String {
    if item.rename_lowercase {
        variant.to_lowercase()
    } else {
        variant.to_string()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Data::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Data::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", entries.join(", "))
        }
        Data::Unit => "serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = variant_tag(item, &v.name);
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => serde::Value::Str(\"{tag}\".to_string()),")
                        }
                        VariantKind::Newtype => format!(
                            "{name}::{vn}(x0) => serde::Value::Map(vec![(\"{tag}\"\
                             .to_string(), serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let entries: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(\"{tag}\"\
                                 .to_string(), serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => serde::Value::Map(vec![\
                                 (\"{tag}\".to_string(), serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] {header}{{ fn to_value(&self) -> serde::Value {{ {body} }} }}",
        header = impl_header(item, "serde::Serialize"),
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: serde::field(m, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| \
                 serde::Error::expected(\"object\", \"{name}\", v))?; \
                 Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Data::Tuple(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Data::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&s[{i}])?"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| \
                 serde::Error::expected(\"array\", \"{name}\", v))?; \
                 if s.len() != {n} {{ return Err(serde::Error::custom(format!(\
                 \"expected {n} elements for {name}, got {{}}\", s.len()))); }} \
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Data::Unit => format!("let _ = v; Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                let tag = variant_tag(item, &v.name);
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("\"{tag}\" => Ok({name}::{vn}),"));
                    }
                    VariantKind::Newtype => {
                        data_arms.push(format!(
                            "\"{tag}\" => Ok({name}::{vn}(\
                             serde::Deserialize::from_value(payload)?)),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&s[{i}])?"))
                            .collect();
                        data_arms.push(format!(
                            "\"{tag}\" => {{ let s = payload.as_seq().ok_or_else(|| \
                             serde::Error::expected(\"array\", \"{name}::{vn}\", \
                             payload))?; if s.len() != {n} {{ return \
                             Err(serde::Error::custom(\"wrong tuple arity for \
                             {name}::{vn}\".to_string())); }} Ok({name}::{vn}({})) }}",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: serde::field(fm, \"{f}\", \"{name}::{vn}\")?,"))
                            .collect();
                        data_arms.push(format!(
                            "\"{tag}\" => {{ let fm = payload.as_map().ok_or_else(|| \
                             serde::Error::expected(\"object\", \"{name}::{vn}\", \
                             payload))?; Ok({name}::{vn} {{ {} }}) }}",
                            inits.join(" ")
                        ));
                    }
                }
            }
            format!(
                "if let Some(s) = v.as_str() {{ return match s {{ {} other => \
                 Err(serde::Error::custom(format!(\"unknown variant `{{other}}` of \
                 {name}\"))) }}; }} \
                 if let Some(m) = v.as_map() {{ if m.len() == 1 {{ \
                 let (tag, payload) = &m[0]; let _ = payload; \
                 return match tag.as_str() {{ {} other => \
                 Err(serde::Error::custom(format!(\"unknown variant `{{other}}` of \
                 {name}\"))) }}; }} }} \
                 Err(serde::Error::expected(\"variant of {name}\", \"{name}\", v))",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] {header}{{ fn from_value(v: &serde::Value) -> \
         Result<Self, serde::Error> {{ {body} }} }}",
        header = impl_header(item, "serde::Deserialize"),
    )
}
