//! Offline stand-in for the `serde` crate.
//!
//! Instead of upstream's visitor-based data model, this stub routes all
//! (de)serialisation through a self-describing [`Value`] tree: types
//! implement [`Serialize`] by producing a `Value` and [`Deserialize`] by
//! consuming one. The derive macros in `serde_derive` generate exactly
//! those impls, and `serde_json` renders/parses the tree. This covers
//! every use in the `jetsim` workspace (derives + `serde_json` entry
//! points); hand-written upstream-style impls are *not* supported.

// API-subset stub of the real crate; keep lints quiet so the
// workspace lint gate (-D warnings) tracks first-party code only.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, isomorphic to a JSON document.
///
/// Map entries preserve insertion order so serialised output is
/// deterministic and field order matches declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (non-negative JSON number without fraction).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the string content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the entries, if this is a `Map`.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a map entry by key.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name for the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// A (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while deserialising Y"-style error.
    pub fn expected(what: &str, while_deserialising: &str, got: &Value) -> Self {
        Error::custom(format!(
            "expected {what} while deserialising {while_deserialising}, got {}",
            got.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a data tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

fn int_from_value(v: &Value) -> Option<i128> {
    match v {
        Value::U64(u) => Some(i128::from(*u)),
        Value::I64(i) => Some(i128::from(*i)),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i128),
        _ => None,
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = int_from_value(v)
                    .ok_or_else(|| Error::expected("integer", stringify!($t), v))?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            other => Err(Error::expected("number", "f64", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::expected("array", "Vec", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| Error::expected("array", "tuple", v))?;
                if seq.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, got {}",
                        $len,
                        seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Derive support helpers (used by serde_derive-generated code)
// ---------------------------------------------------------------------

/// Extracts and deserialises the field `name` from the map entries `m`.
///
/// A missing field is deserialised from `Null`, so `Option` fields
/// default to `None` (matching upstream's `missing_field` behaviour)
/// while all other types report the missing field.
///
/// # Errors
///
/// Returns [`Error`] when the field is missing (for non-optional types)
/// or has the wrong shape.
pub fn field<T: Deserialize>(m: &[(String, Value)], name: &str, ty: &str) -> Result<T, Error> {
    match m.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}` in {ty}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn numeric_coercion_is_liberal() {
        // An integral F64 deserialises into integer types and vice versa.
        assert_eq!(u64::from_value(&Value::F64(4.0)).unwrap(), 4);
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, "x".to_string(), 2.5f64);
        let back: (u32, String, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn missing_option_field_defaults_to_none() {
        let m: Vec<(String, Value)> = vec![];
        let v: Option<u32> = field(&m, "gone", "T").unwrap();
        assert_eq!(v, None);
        let e = field::<u32>(&m, "gone", "T").unwrap_err();
        assert!(e.to_string().contains("missing field `gone`"));
    }
}
