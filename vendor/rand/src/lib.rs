//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface `jetsim` uses: [`rngs::SmallRng`]
//! seeded from a `u64`, [`Rng::gen`] for `u64`/`u32`/`f64`/`bool`, and
//! [`Rng::gen_range`] over half-open float ranges and inclusive/half-open
//! integer ranges. The generator is xoshiro256++ with SplitMix64 seed
//! expansion — the same algorithm upstream `SmallRng` uses on 64-bit
//! targets, though output sequences are not guaranteed to match upstream
//! bit-for-bit. All determinism guarantees in this workspace are
//! *self*-consistency (same seed ⇒ same sequence), which this preserves.

// API-subset stub of the real crate; keep lints quiet so the
// workspace lint gate (-D warnings) tracks first-party code only.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (`rand::distributions::Standard` equivalent).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can produce a uniform sample of `T`
/// (`rand::distributions::uniform::SampleRange` equivalent).
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly within the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start
                .max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

/// Lemire-style unbiased bounded integer sampling on `[0, bound)`.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the zone that divides evenly by `bound`.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

/// The user-facing sampling API (`rand::Rng` equivalent).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding API (`rand::SeedableRng` equivalent, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a 64-bit seed into full generator state,
/// exactly as upstream `rand` does for `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Non-cryptographic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from one seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v), "{v}");
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(10u64..=15);
            assert!((10..=15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0usize..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = SmallRng::seed_from_u64(11);
        // Must not overflow the span computation.
        let v: u64 = rng.gen_range(0u64..=u64::MAX);
        let _ = v;
    }
}
