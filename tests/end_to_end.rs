//! Cross-crate pipeline tests: model zoo → engine builder → simulator →
//! profilers → analysis, including failure injection.

use std::sync::Arc;

use jetsim::prelude::*;
use jetsim_profile::chrome_trace;
use jetsim_sim::{GpuSharing, SimError};
use jetsim_trt::{BuildError, EngineBuilder};

#[test]
fn full_pipeline_produces_consistent_views() {
    let platform = Platform::orin_nano();
    let profile = DualPhaseProfiler::new(&platform)
        .deployment(&Deployment::homogeneous(
            &zoo::yolov8n(),
            Precision::Int8,
            2,
            2,
        ))
        .unwrap()
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(900))
        .run()
        .unwrap();

    // Phase-1 report agrees with its own trace.
    let recomputed = profile.phase1_trace.total_throughput();
    assert!((profile.soc.throughput - recomputed).abs() < 1e-9);

    // Phase-2 kernel events cover both processes and sum to a sensible
    // busy time.
    assert!(profile
        .phase2_trace
        .kernel_events
        .iter()
        .any(|e| e.pid == 0));
    assert!(profile
        .phase2_trace
        .kernel_events
        .iter()
        .any(|e| e.pid == 1));
    let busy: f64 = profile
        .phase2_trace
        .kernel_events
        .iter()
        .map(|e| e.duration().as_secs_f64())
        .sum();
    assert!(busy <= profile.phase2_trace.measured.as_secs_f64() * 1.02);

    // Analysis runs and produces evidence.
    let report = profile.analyze();
    assert!(!report.evidence.is_empty());

    // The chrome trace serialises every phase-2 kernel.
    let json = chrome_trace::to_chrome_trace(&profile.phase2_trace);
    assert_eq!(
        json.matches("\"ph\":\"X\"").count(),
        profile.phase2_trace.kernel_events.len()
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        DualPhaseProfiler::new(&Platform::jetson_nano())
            .deployment(&Deployment::homogeneous(
                &zoo::resnet50(),
                Precision::Fp16,
                1,
                2,
            ))
            .unwrap()
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(600))
            .seed(42)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.soc.throughput, b.soc.throughput);
    assert_eq!(a.soc.mean_power_w, b.soc.mean_power_w);
    assert_eq!(a.kernel.kernel_executions, b.kernel.kernel_executions);
    assert_eq!(
        a.kernel.cdfs.sm_active.mean(),
        b.kernel.cdfs.sm_active.mean()
    );
}

#[test]
fn failure_injection_bad_batch() {
    let platform = Platform::orin_nano();
    let err = platform
        .build_engine(&zoo::resnet50(), Precision::Fp16, 0)
        .unwrap_err();
    assert_eq!(err, BuildError::ZeroBatch);
    let err = platform
        .build_engine(&zoo::resnet50(), Precision::Fp16, 100_000)
        .unwrap_err();
    assert!(matches!(err, BuildError::BatchTooLarge { .. }));
}

#[test]
fn failure_injection_oom_reports_sizes() {
    let err = SimConfig::builder(Platform::jetson_nano().device().clone())
        .add_model_processes(&zoo::fcn_resnet50(), Precision::Fp32, 8, 6)
        .unwrap()
        .build()
        .unwrap_err();
    let SimError::OutOfMemory {
        required_bytes,
        usable_bytes,
    } = err
    else {
        panic!("expected OOM, got {err:?}");
    };
    assert!(required_bytes > usable_bytes);
    assert!(usable_bytes > 1 << 30, "the Nano still has >1 GiB usable");
}

#[test]
fn failure_injection_empty_config() {
    let err = SimConfig::builder(Platform::orin_nano().device().clone())
        .build()
        .unwrap_err();
    assert_eq!(err, SimError::NoProcesses);
}

#[test]
fn heterogeneous_multi_tenant_mix_runs() {
    // The paper's multi-tenancy context: different models sharing one GPU.
    let platform = Platform::orin_nano();
    let config = SimConfig::builder(platform.device().clone())
        .add_model(&zoo::resnet50(), Precision::Int8, 1)
        .unwrap()
        .add_model(&zoo::yolov8n(), Precision::Int8, 1)
        .unwrap()
        .add_model(&zoo::mobilenet_v2(), Precision::Int8, 1)
        .unwrap()
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(900))
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    assert_eq!(trace.processes.len(), 3);
    for p in &trace.processes {
        assert!(p.completed_ecs > 0, "{} starved", p.name);
    }
    // The light model must complete more ECs than the heavy ones.
    let ecs = |name: &str| {
        trace
            .processes
            .iter()
            .find(|p| p.engine_name.contains(name))
            .map(|p| p.completed_ecs)
            .unwrap()
    };
    assert!(ecs("mobilenet") > ecs("yolov8n"));
}

#[test]
fn mps_ablation_beats_time_multiplexing_when_gpu_bound() {
    let platform = Platform::orin_nano();
    let engine = Arc::new(
        EngineBuilder::new(platform.device())
            .precision(Precision::Fp16)
            .build(&zoo::fcn_resnet50())
            .unwrap(),
    );
    let run = |sharing| {
        let config = SimConfig::builder(platform.device().clone())
            .add_engines(&engine, 2)
            .gpu_sharing(sharing)
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_millis(1200))
            .build()
            .unwrap();
        Simulation::new(config).unwrap().run().total_throughput()
    };
    let tm = run(GpuSharing::TimeMultiplexed);
    let mps = run(GpuSharing::SpatialMps {
        overlap_efficiency: 0.3,
    });
    assert!(mps > tm, "mps {mps} vs time-mux {tm}");
}

#[test]
fn extended_zoo_builds_and_runs_everywhere() {
    for model in zoo::extended() {
        for platform in Platform::paper_platforms() {
            let engine = platform
                .build_engine(&model, Precision::Fp16, 1)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", model.name(), platform.name()));
            assert!(engine.kernel_count() > 0);
            let config = SimConfig::builder(platform.device().clone())
                .add_engine(engine)
                .warmup(SimDuration::from_millis(100))
                .measure(SimDuration::from_millis(400))
                .build();
            // Some heavy models may legitimately not fit one process? No —
            // single processes always fit on both boards.
            let trace = Simulation::new(config.unwrap()).unwrap().run();
            assert!(trace.gpu_utilization() > 0.0, "{}", model.name());
        }
    }
}

#[test]
fn sweep_and_profiler_agree_on_throughput() {
    let platform = Platform::orin_nano();
    let cells = SweepSpec::new()
        .precisions([Precision::Int8])
        .batches([1])
        .process_counts([1])
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(1000))
        .run(&platform, &zoo::resnet50());
    let sweep_tput = cells[0].outcome.throughput().unwrap();
    let profiler_tput = DualPhaseProfiler::new(&platform)
        .deployment(&Deployment::homogeneous(
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        ))
        .unwrap()
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(1000))
        .run_phase1()
        .unwrap()
        .0
        .throughput;
    let ratio = sweep_tput / profiler_tput;
    assert!(
        (0.85..1.15).contains(&ratio),
        "{sweep_tput} vs {profiler_tput}"
    );
}
