//! Integration tests: the paper's boxed observations, asserted across
//! the whole stack (model zoo → engine builder → simulator → profilers →
//! analysis).

use jetsim::observations;
use jetsim::prelude::*;

fn fast_spec() -> SweepSpec {
    SweepSpec::new()
        .warmup(SimDuration::from_millis(150))
        .measure(SimDuration::from_millis(700))
}

#[test]
fn obs_611_int8_optimal_on_orin() {
    let cells = fast_spec()
        .precisions(Precision::ALL)
        .run(&Platform::orin_nano(), &zoo::resnet50());
    let check = observations::optimal_precision(&cells, Precision::Int8);
    assert!(check.holds, "{check}");
}

#[test]
fn obs_611_fp16_optimal_on_nano() {
    for model in [zoo::resnet50(), zoo::yolov8n()] {
        let cells = fast_spec()
            .precisions(Precision::ALL)
            .run(&Platform::jetson_nano(), &model);
        let check = observations::optimal_precision(&cells, Precision::Fp16);
        assert!(check.holds, "{}: {check}", model.name());
    }
}

#[test]
fn obs_611_memory_grows_with_precision_on_orin() {
    for model in zoo::all() {
        let cells = fast_spec()
            .precisions(Precision::ALL)
            .run(&Platform::orin_nano(), &model);
        let check = observations::memory_grows_with_precision(&cells);
        assert!(check.holds, "{}: {check}", model.name());
    }
}

#[test]
fn obs_612_supported_format_cheapest_per_image_on_nano() {
    let cells = fast_spec()
        .precisions(Precision::ALL)
        .run(&Platform::jetson_nano(), &zoo::resnet50());
    let check = observations::supported_format_cheapest_per_image(&cells);
    assert!(check.holds, "{check}");
}

#[test]
fn obs_612_fp32_power_drops_below_tf32_on_orin() {
    for model in zoo::all() {
        let cells = SweepSpec::new()
            .precisions([Precision::Tf32, Precision::Fp32])
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(1500))
            .run(&Platform::orin_nano(), &model);
        let check = observations::fp32_power_drops(&cells);
        assert!(check.holds, "{}: {check}", model.name());
    }
}

#[test]
fn obs_621_tp_scaling_for_every_model_on_orin() {
    for model in zoo::all() {
        let cells = fast_spec()
            .precisions([Precision::Int8])
            .batches([1, 16])
            .process_counts([1, 8])
            .run(&Platform::orin_nano(), &model);
        let check = observations::tp_scaling(&cells, Precision::Int8);
        assert!(check.holds, "{}: {check}", model.name());
    }
}

#[test]
fn obs_622_power_capped_on_both_devices() {
    let orin_cells = fast_spec()
        .precisions(Precision::ALL)
        .batches([1, 16])
        .process_counts([1, 4])
        .run(&Platform::orin_nano(), &zoo::fcn_resnet50());
    let check = observations::power_capped(&orin_cells, 7.0);
    assert!(check.holds, "{check}");

    let nano_cells = fast_spec()
        .precisions([Precision::Fp16, Precision::Fp32])
        .batches([1, 8])
        .process_counts([1, 2])
        .run(&Platform::jetson_nano(), &zoo::resnet50());
    let check = observations::power_capped(&nano_cells, 5.0);
    assert!(check.holds, "{check}");
}

#[test]
fn obs_7_ec_stability_threshold_on_orin() {
    let cells = fast_spec()
        .precisions([Precision::Int8])
        .process_counts([1, 2, 4, 8])
        .run(&Platform::orin_nano(), &zoo::resnet50());
    let check = observations::ec_stability(&cells, Precision::Int8, 3);
    assert!(check.holds, "{check}");
}

#[test]
fn obs_7_nano_ec_doubles_past_half_the_cores() {
    // Paper §7: on the Jetson Nano, EC duration roughly doubles once the
    // process count exceeds half the CPU cores (2 of 4).
    let cells = fast_spec()
        .precisions([Precision::Fp16])
        .process_counts([2, 4])
        .measure(SimDuration::from_millis(1500))
        .run(&Platform::jetson_nano(), &zoo::resnet50());
    let ec = |p: u32| {
        cells
            .iter()
            .find(|c| c.processes == p)
            .and_then(|c| c.outcome.metrics())
            .map(|m| m.mean_ec_ms)
            .expect("cell ran")
    };
    let ratio = ec(4) / ec(2);
    assert!(
        (1.6..3.5).contains(&ratio),
        "EC should ~double: p2 {:.1} ms → p4 {:.1} ms",
        ec(2),
        ec(4)
    );
}

#[test]
fn obs_7_batch_stabilizes_ec() {
    let cells = fast_spec()
        .precisions([Precision::Int8])
        .batches([1, 4, 16])
        .run(&Platform::orin_nano(), &zoo::resnet50());
    let check = observations::batch_stabilizes_ec(&cells, Precision::Int8);
    assert!(check.holds, "{check}");
}

#[test]
fn obs_613_issue_slots_stall_on_every_model() {
    for model in zoo::all() {
        let profile = DualPhaseProfiler::new(&Platform::orin_nano())
            .deployment(&Deployment::homogeneous(&model, Precision::Fp16, 1, 1))
            .unwrap()
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(700))
            .run()
            .unwrap();
        let check = observations::issue_slots_stall(&profile.kernel);
        assert!(check.holds, "{}: {check}", model.name());
    }
}

#[test]
fn obs_614_tc_activity_does_not_imply_throughput() {
    let run = |model: &ModelGraph, precision| {
        DualPhaseProfiler::new(&Platform::orin_nano())
            .deployment(&Deployment::homogeneous(model, precision, 1, 1))
            .unwrap()
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(700))
            .run()
            .unwrap()
    };
    let fcn = run(&zoo::fcn_resnet50(), Precision::Fp16);
    let yolo = run(&zoo::yolov8n(), Precision::Int8);
    let check = observations::tc_not_throughput(
        (fcn.kernel.cdfs.tc.mean(), fcn.soc.throughput),
        (yolo.kernel.cdfs.tc.mean(), yolo.soc.throughput),
    );
    assert!(check.holds, "{check}");
}
