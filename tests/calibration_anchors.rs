//! Integration tests pinning the simulated platform to the paper's
//! reported numbers (see EXPERIMENTS.md for the full ledger).
//!
//! These are *shape* anchors: tolerances are generous because the
//! substrate is a simulator, but the winners, the rough factors and the
//! crossovers must match the publication.

use jetsim::prelude::*;

fn phase1(
    platform: &Platform,
    model: &ModelGraph,
    precision: Precision,
    batch: u32,
    procs: u32,
) -> JetsonStatsReport {
    DualPhaseProfiler::new(platform)
        .deployment(&Deployment::homogeneous(model, precision, batch, procs))
        .expect("engine builds")
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(1500))
        .run_phase1()
        .expect("fits in memory")
        .0
}

#[test]
fn anchor_fcn_fp16_orin_throughput() {
    // Paper §6.1.2: FCN_ResNet50 fp16 ≈ 18.57 img/s on the Orin Nano.
    let t = phase1(
        &Platform::orin_nano(),
        &zoo::fcn_resnet50(),
        Precision::Fp16,
        1,
        1,
    )
    .throughput;
    assert!((13.0..25.0).contains(&t), "throughput = {t}");
}

#[test]
fn anchor_fcn_tf32_orin_throughput() {
    // Paper §6.1.2: FCN_ResNet50 tf32 ≈ 6.86 img/s on the Orin Nano.
    let t = phase1(
        &Platform::orin_nano(),
        &zoo::fcn_resnet50(),
        Precision::Tf32,
        1,
        1,
    )
    .throughput;
    assert!((4.5..9.5).contains(&t), "throughput = {t}");
}

#[test]
fn anchor_resnet_int8_speedup_over_fp32_orin() {
    // Paper §6.1.1: 9.75×. The simulator lands in the same regime.
    let int8 = phase1(
        &Platform::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    )
    .throughput;
    let fp32 = phase1(
        &Platform::orin_nano(),
        &zoo::resnet50(),
        Precision::Fp32,
        1,
        1,
    )
    .throughput;
    let ratio = int8 / fp32;
    assert!((5.0..13.0).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn anchor_fcn_int8_speedup_over_fp32_orin() {
    // Paper §6.1.1: 12× — the largest speedup of the three models.
    let int8 = phase1(
        &Platform::orin_nano(),
        &zoo::fcn_resnet50(),
        Precision::Int8,
        1,
        1,
    )
    .throughput;
    let fp32 = phase1(
        &Platform::orin_nano(),
        &zoo::fcn_resnet50(),
        Precision::Fp32,
        1,
        1,
    )
    .throughput;
    let ratio = int8 / fp32;
    assert!((7.0..16.0).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn anchor_yolo_int8_speedup_smallest_of_the_three() {
    // Paper §6.1.1: YoloV8n's int8 speedup (~3×) is far below the
    // ResNet-family models because its skinny layers stay wide.
    let speedup = |model: &ModelGraph| {
        let int8 = phase1(&Platform::orin_nano(), model, Precision::Int8, 1, 1).throughput;
        let fp32 = phase1(&Platform::orin_nano(), model, Precision::Fp32, 1, 1).throughput;
        int8 / fp32
    };
    let yolo = speedup(&zoo::yolov8n());
    let resnet = speedup(&zoo::resnet50());
    let fcn = speedup(&zoo::fcn_resnet50());
    assert!((2.0..7.0).contains(&yolo), "yolo ratio = {yolo}");
    assert!(
        yolo < resnet && yolo < fcn,
        "yolo {yolo} vs resnet {resnet} / fcn {fcn}"
    );
}

#[test]
fn anchor_yolo_int8_orin_tp_range() {
    // Paper §6.2.1: T/P ≈ 210 img/s at batch 1, rising toward ≈320 at
    // batch 16, collapsing to ≈10 at 8 processes.
    let b1 = phase1(
        &Platform::orin_nano(),
        &zoo::yolov8n(),
        Precision::Int8,
        1,
        1,
    )
    .throughput_per_process;
    let b16 = phase1(
        &Platform::orin_nano(),
        &zoo::yolov8n(),
        Precision::Int8,
        16,
        1,
    )
    .throughput_per_process;
    let p8 = phase1(
        &Platform::orin_nano(),
        &zoo::yolov8n(),
        Precision::Int8,
        1,
        8,
    )
    .throughput_per_process;
    assert!((150.0..320.0).contains(&b1), "b1 T/P = {b1}");
    assert!(b16 > b1 * 1.1, "batch must help: {b16} vs {b1}");
    assert!((5.0..30.0).contains(&p8), "p8 T/P = {p8}");
}

#[test]
fn anchor_yolo_fp16_nano_throughput() {
    // Paper §6.1.1: ≈20 img/s at batch 1, ≈22 at batch 8.
    let b1 = phase1(
        &Platform::jetson_nano(),
        &zoo::yolov8n(),
        Precision::Fp16,
        1,
        1,
    )
    .throughput;
    let b8 = phase1(
        &Platform::jetson_nano(),
        &zoo::yolov8n(),
        Precision::Fp16,
        8,
        1,
    )
    .throughput;
    assert!((15.0..30.0).contains(&b1), "b1 = {b1}");
    assert!(b8 > b1, "batch 8 must edge ahead: {b8} vs {b1}");
    assert!(b8 < b1 * 1.6, "but only modestly: {b8} vs {b1}");
}

#[test]
fn anchor_nano_resnet_power_per_image() {
    // Paper §6.1.2: ≈0.23 J int8(→fp32), ≈0.125 J fp16, ≈0.32 J tf32.
    let fp16 = phase1(
        &Platform::jetson_nano(),
        &zoo::resnet50(),
        Precision::Fp16,
        1,
        1,
    )
    .power_per_image;
    let int8 = phase1(
        &Platform::jetson_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    )
    .power_per_image;
    assert!((0.09..0.18).contains(&fp16), "fp16 J/img = {fp16}");
    assert!((0.18..0.40).contains(&int8), "int8 J/img = {int8}");
    assert!(fp16 < int8 / 1.5, "fp16 about half the energy per image");
}

#[test]
fn anchor_resnet_fp16_orin_memory_below_3_percent() {
    // Paper §1: ResNet50 fp16 shows >98% GPU utilisation with <3% memory.
    let report = phase1(
        &Platform::orin_nano(),
        &zoo::resnet50(),
        Precision::Fp16,
        1,
        1,
    );
    assert!(report.gpu_utilization_percent > 90.0, "{report}");
    assert!(report.gpu_memory_percent < 3.0, "{report}");
}

#[test]
fn anchor_fp32_memory_ratio_over_int8() {
    // Paper §6.1.1: fp32 engines take ~2× the GPU memory of int8 for the
    // ResNet-family models but only ~1.25× for YoloV8n.
    let orin = Platform::orin_nano();
    let ratio = |model: &ModelGraph| {
        let ctx = orin.device().memory.cuda_context_bytes;
        let int8 = orin.build_engine(model, Precision::Int8, 1).unwrap();
        let fp32 = orin.build_engine(model, Precision::Fp32, 1).unwrap();
        fp32.gpu_memory_bytes(ctx) as f64 / int8.gpu_memory_bytes(ctx) as f64
    };
    let resnet = ratio(&zoo::resnet50());
    let fcn = ratio(&zoo::fcn_resnet50());
    let yolo = ratio(&zoo::yolov8n());
    assert!((1.5..2.6).contains(&resnet), "resnet ratio = {resnet}");
    assert!((1.5..2.8).contains(&fcn), "fcn ratio = {fcn}");
    assert!((1.05..1.5).contains(&yolo), "yolo ratio = {yolo}");
    assert!(yolo < resnet && yolo < fcn);
}

#[test]
fn anchor_sixteen_yolo_processes_exceed_35_percent_memory() {
    // Paper §6.2.1: 16 concurrent YoloV8n processes push GPU memory past
    // 35% while one process at batch 8 stays below 10%.
    let orin = Platform::orin_nano();
    let one = SimConfig::builder(orin.device().clone())
        .add_model_processes(&zoo::yolov8n(), Precision::Int8, 8, 1)
        .unwrap()
        .build()
        .unwrap();
    let sixteen = SimConfig::builder(orin.device().clone())
        .add_model_processes(&zoo::yolov8n(), Precision::Int8, 16, 16)
        .unwrap()
        .build()
        .unwrap();
    let pct = |c: &SimConfig| c.device.memory.gpu_percent(c.gpu_memory_bytes());
    assert!(pct(&one) < 10.0, "one process: {:.1}%", pct(&one));
    assert!(
        pct(&sixteen) > 35.0,
        "sixteen processes: {:.1}%",
        pct(&sixteen)
    );
}

#[test]
fn anchor_nsight_intrusion_near_half() {
    // Paper §4: the Nsight phase costs ~50% of throughput.
    let profile = DualPhaseProfiler::new(&Platform::orin_nano())
        .deployment(&Deployment::homogeneous(
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        ))
        .unwrap()
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(1000))
        .run()
        .unwrap();
    assert!(
        (0.3..0.65).contains(&profile.intrusion),
        "intrusion = {}",
        profile.intrusion
    );
}

#[test]
fn anchor_kernel_launch_in_paper_band() {
    // Paper §7: individual kernel launches take ~20–100 µs; the per-EC
    // launch total grows with the process count.
    let orin = Platform::orin_nano();
    let per_launch_us = |procs: u32| {
        let trace = DualPhaseProfiler::new(&orin)
            .deployment(&Deployment::homogeneous(
                &zoo::resnet50(),
                Precision::Int8,
                1,
                procs,
            ))
            .unwrap()
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_millis(800))
            .run_phase1()
            .unwrap()
            .1;
        let engine_kernels = 57.0;
        trace.processes[0].mean_launch_time.as_micros_f64() / engine_kernels
    };
    let p1 = per_launch_us(1);
    let p8 = per_launch_us(8);
    assert!((15.0..70.0).contains(&p1), "p1 per-launch = {p1} us");
    assert!((40.0..160.0).contains(&p8), "p8 per-launch = {p8} us");
    assert!(p8 > p1 * 1.5, "launches stretch under contention");
}

#[test]
fn anchor_blocking_interval_one_to_two_ms() {
    // Paper §7 observation 1: individual blocking intervals b_l are
    // typically 1–2 ms once oversubscribed.
    let trace = DualPhaseProfiler::new(&Platform::orin_nano())
        .deployment(&Deployment::homogeneous(
            &zoo::resnet50(),
            Precision::Int8,
            1,
            8,
        ))
        .unwrap()
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(800))
        .run_phase1()
        .unwrap()
        .1;
    // Blocking per EC divided by the number of blocking events must land
    // in the 1–2 ms band; estimate events from totals.
    let p = &trace.processes[0];
    assert!(
        p.mean_blocking_time > SimDuration::from_millis(10),
        "{:?}",
        p.mean_blocking_time
    );
}
