//! Online serving: open-loop arrivals, dynamic batching and SLO math on
//! an Orin Nano.
//!
//! The paper profiles concurrency under *saturated* (closed-loop)
//! senders; real deployments face open-loop request streams where
//! latency is dominated by queueing, not kernel time. This example puts
//! a two-instance ResNet50 tenant and a YOLOv8n tenant behind Poisson
//! traffic, compares admission policies under a burst, and finishes
//! with a capacity search: the highest load the deployment can carry
//! while keeping 95% of requests inside a 50 ms SLO.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use jetsim_des::{ArrivalProcess, SimDuration};
use jetsim_lab::prelude::*;
use jetsim_serve::{AdmissionPolicy, ServeSpec, ServeTenant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::orin_nano();

    // 1. Steady state: two tenants, comfortable load.
    println!("steady state: poisson traffic well under capacity\n");
    let report = ServeSpec::new(platform.clone())
        .tenant(ServeTenant::parse(
            "resnet50:int8:1:2",
            ArrivalProcess::poisson(150.0),
        )?)
        .tenant(ServeTenant::parse(
            "yolov8n:int8:1",
            ArrivalProcess::poisson(40.0),
        )?)
        .duration(SimDuration::from_secs(4))
        .slo(SimDuration::from_millis(50))
        .run()?;
    println!("{report}");

    // 2. Overload: a bursty MMPP stream at twice the sustainable rate.
    // Reject bounces excess at the door; Shed drops the stalest queued
    // request instead, keeping what it serves fresh; Degrade swaps in a
    // cheaper engine variant (here fp16 -> int8) while the queue is deep.
    println!("\noverload: bursty traffic, one policy at a time\n");
    let burst = || {
        ArrivalProcess::mmpp(
            200.0,
            900.0,
            SimDuration::from_millis(400),
            SimDuration::from_millis(100),
        )
    };
    for admission in [
        AdmissionPolicy::Reject,
        AdmissionPolicy::Shed,
        AdmissionPolicy::Degrade,
    ] {
        let tenant = ServeTenant::parse("resnet50:fp16:1:2", burst())?
            .queue_cap(32)
            .admission(admission);
        let report = ServeSpec::new(platform.clone())
            .tenant(tenant)
            .duration(SimDuration::from_secs(4))
            .slo(SimDuration::from_millis(50))
            .run()?;
        let g = &report.groups[0];
        println!(
            "{admission:?}: goodput {:.1}/s  p99 {:.1} ms  slo {:.1}%  \
             rejected {}  shed {}  degraded batches {}",
            g.goodput_qps,
            g.p99_ms,
            g.slo_attainment * 100.0,
            g.rejected,
            g.shed,
            g.degraded_batches,
        );
    }

    // 3. Capacity: how much Poisson load fits inside the SLO?
    println!("\ncapacity search: max qps at 95% SLO attainment\n");
    let estimate = ServeSpec::new(platform)
        .tenant(ServeTenant::parse(
            "resnet50:int8:1:2",
            ArrivalProcess::poisson(100.0),
        )?)
        .duration(SimDuration::from_secs(3))
        .slo(SimDuration::from_millis(50))
        .find_max_qps(0.95, 5)?;
    for probe in &estimate.probes {
        println!(
            "  probe {:7.1} qps -> {:5.1}% {}",
            probe.qps,
            probe.slo_attainment * 100.0,
            if probe.feasible { "ok" } else { "over" },
        );
    }
    println!("\nmax sustainable load: {:.1} qps", estimate.max_qps);
    Ok(())
}
