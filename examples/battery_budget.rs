//! Battery budgeting: how long does a drone's 40 Wh pack run each
//! inference configuration?
//!
//! The paper frames power as a first-class edge metric (§5.1, §6.1.2);
//! this example turns its per-configuration power measurements into the
//! operational number a deployment actually cares about — endurance —
//! and shows that the most *energy-efficient* configuration (fp16 on the
//! Jetson Nano, int8 on the Orin Nano) is not always the fastest one.
//!
//! ```sh
//! cargo run --release --example battery_budget
//! ```

use jetsim_lab::prelude::*;

const PACK_WH: f64 = 40.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("40 Wh pack, ResNet50 classification at batch 4, one process\n");
    println!("| device | precision | img/s | power W | J/image | endurance h | images/charge |");
    println!("|---|---|---|---|---|---|---|");
    for platform in Platform::paper_platforms() {
        for precision in Precision::ALL {
            let (report, trace) = DualPhaseProfiler::new(&platform)
                .deployment(&Deployment::homogeneous(&zoo::resnet50(), precision, 4, 1))?
                .measure(SimDuration::from_secs(2))
                .run_phase1()?;
            let hours = trace.battery_life_hours(PACK_WH).unwrap_or(0.0);
            let images = report.throughput * hours * 3600.0;
            println!(
                "| {} | {} | {:.1} | {:.2} | {:.3} | {:.1} | {:.1}M |",
                platform.name(),
                precision,
                report.throughput,
                report.mean_power_w,
                report.power_per_image,
                hours,
                images / 1e6,
            );
        }
    }
    println!(
        "\nthe native reduced precision maximises images per charge on both \
         boards — the paper's §6.1.2 takeaway, restated as endurance."
    );
    Ok(())
}
