//! Resilience: the paper's §6.2.1 reboot as a *simulated outcome*.
//!
//! Deploying 4 × FCN_ResNet50 on the Jetson Nano exhausts unified
//! memory; on the real board the deployment thrashes, the watchdog
//! fires, and the device reboots mid-experiment. The simulator's
//! default (`OomPolicy::Strict`) refuses such deployments up front,
//! which is the right behaviour for paper-faithful figures — but it
//! erases the failure mode itself.
//!
//! This example runs the same deployment three ways:
//!
//! 1. **Strict admission** — the run is rejected exactly where the
//!    paper's board rebooted;
//! 2. **OOM-killer semantics** — the overcommit is admitted and the
//!    kernel's OOM killer culls the largest process until the rest fit,
//!    so the experiment degrades instead of dying;
//! 3. **A supervised sweep** — the sweep runner retries the OOM cell at
//!    degraded parameters and records the degradation chain.
//!
//! ```sh
//! cargo run --release --example resilience
//! ```

use jetsim::{CellOutcome, SupervisorPolicy, SweepSpec};
use jetsim_lab::prelude::*;
use jetsim_sim::{FaultKind, FaultPlan, SimError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::jetson_nano();
    let model = zoo::fcn_resnet50();
    println!(
        "deployment: 4 x {} (fp16) on {}\n",
        model.name(),
        platform.name()
    );

    // --- 1. Strict admission: the paper-faithful refusal. -------------
    let engine = platform.build_engine(&model, Precision::Fp16, 1)?;
    let strict = SimConfig::builder(platform.device().clone())
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_secs(4))
        .add_engines(&engine, 4)
        .build();
    match strict {
        Err(e @ SimError::OutOfMemory { .. }) => {
            println!("[strict]  rejected: {e}");
            println!("[strict]  (the paper's board rebooted here — §6.2.1)\n");
        }
        Err(e) => return Err(e.into()),
        Ok(_) => println!("[strict]  unexpectedly admitted?!\n"),
    }

    // --- 2. OOM-killer semantics: the failure mode, simulated. --------
    let config = SimConfig::builder(platform.device().clone())
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_secs(4))
        .faults(FaultPlan::kill_largest_on_oom())
        .add_engines(&engine, 4)
        .build()?;
    let trace = Simulation::new(config)?.run();
    for event in &trace.fault_events {
        if let FaultKind::ProcessKilled {
            pid,
            name,
            freed_bytes,
        } = &event.kind
        {
            println!(
                "[killer]  t={:.1} ms: OOM killer sacrifices {name} (pid {pid}), freeing {:.0} MiB",
                event.time.as_micros_f64() / 1e3,
                *freed_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }
    println!(
        "[killer]  {} of {} processes killed; survivors deliver {:.2} img/s\n",
        trace.killed_processes(),
        trace.processes.len(),
        trace.surviving_throughput()
    );

    // --- 3. Supervised sweep: retry-with-degradation. -----------------
    let spec = SweepSpec::new()
        .precisions([Precision::Fp16])
        .batches([1])
        .process_counts([1, 2, 4])
        .warmup(SimDuration::from_millis(300))
        // FCN ECs take ~2 s under 3-way sharing on the Nano; give the
        // degraded survivors a window long enough to finish a few.
        .measure(SimDuration::from_secs(8));
    let policy = SupervisorPolicy::new().max_retries(3);
    for cell in spec.run_supervised(&platform, &model, &policy) {
        match &cell.outcome {
            CellOutcome::Degraded {
                attempts,
                final_processes,
                metrics,
                ..
            } => println!(
                "[sweep]   p{} degraded -> p{} ({}), {:.2} img/s",
                cell.processes,
                final_processes,
                attempts.join("; "),
                metrics.throughput
            ),
            _ => println!("[sweep]   {cell}"),
        }
    }
    Ok(())
}
