//! Multi-tenant edge box: heterogeneous models sharing one Jetson.
//!
//! The paper studies homogeneous concurrency (N copies of one model);
//! real edge deployments mix tenants — a detector, a classifier and a
//! segmenter sharing the GPU. This example profiles such a mix on the
//! Orin Nano, shows who wins and who starves under kernel-granularity
//! time multiplexing, and prints each tenant's tail latency.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use jetsim_lab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::orin_nano();
    let tenants: [(&str, ModelGraph, Precision, u32); 3] = [
        ("gate-camera detector", zoo::yolov8n(), Precision::Int8, 1),
        ("shelf classifier", zoo::resnet50(), Precision::Int8, 4),
        ("floor segmenter", zoo::fcn_resnet50(), Precision::Fp16, 1),
    ];

    let mut builder = SimConfig::builder(platform.device().clone())
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_secs(3));
    for (_, model, precision, batch) in &tenants {
        let engine = platform.build_engine(model, *precision, *batch)?;
        builder = builder.add_engine(engine);
    }
    let config = builder.build()?;
    println!(
        "deploying {} tenants on {} ({:.1}% GPU memory)\n",
        tenants.len(),
        platform.name(),
        platform
            .device()
            .memory
            .gpu_percent(config.gpu_memory_bytes())
    );

    let trace = Simulation::new(config)?.run();
    println!("| tenant | engine | img/s | EC p50 | EC p95 | EC p99 | blocking/EC |");
    println!("|---|---|---|---|---|---|---|");
    for (stats, (label, ..)) in trace.processes.iter().zip(&tenants) {
        println!(
            "| {label} | {} | {:.1} | {} | {} | {} | {} |",
            stats.engine_name,
            stats.throughput,
            stats.p50_ec_time,
            stats.p95_ec_time,
            stats.p99_ec_time,
            stats.mean_blocking_time,
        );
    }
    println!(
        "\nGPU {:.0}% busy at {:.2} W; aggregate {:.1} img/s",
        trace.gpu_utilization() * 100.0,
        trace.mean_power(),
        trace.total_throughput()
    );
    println!(
        "the segmenter's long kernels stretch everyone's tail latency — \
         kernel-granularity time multiplexing has no isolation (paper §2)."
    );
    Ok(())
}
