//! Multi-tenant edge box: heterogeneous models sharing one Jetson.
//!
//! The paper studies homogeneous concurrency (N copies of one model);
//! real edge deployments mix tenants — a detector and a classifier
//! sharing the GPU. This example builds a first-class [`Deployment`]
//! (two ResNet50 int8 classifiers + one YOLOv8n fp16 detector), runs it
//! through the same dual-phase profiler the homogeneous experiments
//! use, and prints each tenant's share of the box plus the supervised
//! sweep view of the same deployment.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use jetsim_lab::deployment::Tenant;
use jetsim_lab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::orin_nano();
    let deployment = Deployment::new()
        .tenant(Tenant::new(zoo::resnet50(), Precision::Int8, 1).count(2))
        .tenant(Tenant::new(zoo::yolov8n(), Precision::Fp16, 4));
    println!(
        "deploying {} tenants ({} processes) on {}: {}\n",
        deployment.len(),
        deployment.total_processes(),
        platform.name(),
        deployment.label(),
    );

    // Phase 1 + phase 2 through the exact pipeline the homogeneous
    // experiments use — a mixed deployment is not a special case.
    let profile = DualPhaseProfiler::new(&platform)
        .deployment(&deployment)?
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_secs(2))
        .run()?;

    println!("| tenant | procs | img/s | T/P | EC mean | EC p99 |");
    println!("|---|---|---|---|---|---|");
    for t in &profile.tenants {
        println!(
            "| {} | {} | {:.1} | {:.1} | {:.2} ms | {:.2} ms |",
            t.label, t.processes, t.throughput, t.throughput_per_process, t.mean_ec_ms, t.p99_ec_ms,
        );
    }
    println!(
        "\nSoC view: {:.1} img/s aggregate at {:.2} W, GPU {:.0}% busy, mem {:.1}%",
        profile.soc.throughput,
        profile.soc.mean_power_w,
        profile.soc.gpu_utilization_percent,
        profile.soc.gpu_memory_percent,
    );
    println!("bottleneck: {}", profile.analyze());

    // The supervised sweep consumes the same Deployment value: one cell,
    // degradation and fault isolation included.
    let cell = SweepSpec::new()
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_secs(1))
        .run_deployment(&platform, &deployment);
    println!("\nsweep cell: {cell}");
    if let Some(metrics) = cell.outcome.metrics() {
        for t in &metrics.tenants {
            println!("  {t}");
        }
    }
    println!(
        "\nthe detector's longer kernels stretch the classifiers' tails — \
         kernel-granularity time multiplexing has no isolation (paper §2)."
    );
    Ok(())
}
