//! Open-loop camera pipeline: latency under offered load instead of
//! saturated throughput.
//!
//! The paper's `trtexec` methodology measures the throughput *ceiling*
//! (a new batch the instant the previous one finishes). Deployed edge
//! systems are open-loop: a camera delivers frames at a fixed rate, and
//! what matters is the end-to-end latency distribution — especially once
//! the offered rate approaches the ceiling the paper's figures predict.
//!
//! This example sweeps a 0–120 fps camera against YoloV8n int8 on the
//! Orin Nano alongside a competing FCN segmentation tenant, showing the
//! classic hockey-stick: flat latency far from saturation, exploding
//! queueing delay beyond it.
//!
//! ```sh
//! cargo run --release --example camera_pipeline
//! ```

use jetsim_lab::jetsim_sim::ArrivalModel;
use jetsim_lab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::orin_nano();
    let detector = platform.build_engine(&zoo::yolov8n(), Precision::Int8, 1)?;
    let segmenter = platform.build_engine(&zoo::fcn_resnet50(), Precision::Fp16, 1)?;

    println!("camera → YoloV8n int8 b1, sharing the GPU with one FCN fp16 tenant\n");
    println!("| camera fps | served img/s | EC p50 | EC p99 | queue delay (mean) | GPU busy |");
    println!("|---|---|---|---|---|---|");
    for fps in [15.0, 30.0, 60.0, 90.0, 120.0] {
        let config = SimConfig::builder(platform.device().clone())
            .add_engine_with_arrivals(detector.clone(), ArrivalModel::Periodic { fps })
            .add_engine(segmenter.clone())
            .warmup(SimDuration::from_millis(400))
            .measure(SimDuration::from_secs(3))
            .build()?;
        let trace = Simulation::new(config)?.run();
        let cam = &trace.processes[0];
        println!(
            "| {fps:.0} | {:.1} | {} | {} | {} | {:.0}% |",
            cam.throughput,
            cam.p50_ec_time,
            cam.p99_ec_time,
            cam.mean_queue_delay,
            trace.gpu_utilization() * 100.0,
        );
    }
    println!(
        "\nonce the offered rate exceeds what the shared GPU can serve, queueing \
         delay dominates — size deployments from the paper-style sweeps *before* \
         pointing cameras at them."
    );
    Ok(())
}
