//! Edge-vs-cloud offloading: the decision the paper's introduction and
//! conclusion frame the whole study around, run end to end on the fleet
//! layer.
//!
//! Two Orin Nano sites serve a bursty yolov8n stream; an A40 cloud tier
//! sits behind extra round-trip time. The `locality` router never
//! leaves the edge; the `offload` router escalates to the cloud when a
//! site's estimated wait puts the deadline at risk. Under a burst that
//! saturates both edges, escalation should buy back deadline hits —
//! this example runs both policies on the identical request timeline
//! and asserts that it does.
//!
//! ```sh
//! cargo run --release --example edge_cloud_offload
//! ```

use jetsim_lab::jetsim_fleet::{FleetReport, FleetSpec, RouterPolicy};
use jetsim_lab::jetsim_serve::ScenarioSpec;

/// Two edge sites, one bursty tenant: calm traffic both sites absorb,
/// bursts at roughly 1.5x their combined capacity. The 32 KB frames
/// over the default 100 Mbps link plus a 10 ms cloud RTT keep the
/// detour comfortably inside the 100 ms deadline.
fn scenario() -> ScenarioSpec {
    "seed = 42
     duration = \"1500ms\"
     warmup = \"300ms\"
     slo = \"100ms\"

     [[tenants]]
     spec = \"yolov8n:int8:1:1\"
     arrival = \"mmpp:200:700:300:150\"
    "
    .parse()
    .expect("example scenario parses")
}

fn fleet(router: RouterPolicy, cloud: bool) -> FleetReport {
    FleetSpec::new(scenario())
        .sites(2)
        .cloud(cloud)
        .router(router)
        .network("req_kb=32,cloud_rtt=10ms".parse().expect("network parses"))
        .run()
        .expect("fleet runs")
}

fn main() {
    let pinned = fleet(RouterPolicy::Locality, false);
    let offload = fleet(RouterPolicy::Offload, true);

    println!("| policy | p99 ms | goodput qps | deadline hit | offloaded |");
    println!("|---|---|---|---|---|");
    for r in [&pinned, &offload] {
        println!(
            "| {} | {:.2} | {:.1} | {:.3} | {:.3} |",
            r.router, r.p99_ms, r.goodput_qps, r.slo_attainment, r.offload_fraction
        );
    }

    // Both runs draw the identical aggregate timeline (same seed), so
    // the gap is purely the routing policy.
    assert_eq!(pinned.requests, offload.requests, "same request timeline");
    assert!(
        pinned.offload_fraction == 0.0,
        "locality never leaves the edge"
    );
    assert!(
        offload.offload_fraction > 0.0,
        "bursts past edge capacity must trigger cloud escalation"
    );
    assert!(
        offload.slo_attainment > pinned.slo_attainment,
        "offloading must improve the deadline-hit rate under burst: \
         edge-only {:.3} vs edge+cloud {:.3}",
        pinned.slo_attainment,
        offload.slo_attainment
    );

    println!(
        "\n→ under a {:.0} qps burst two Orin Nanos cannot hold the {:.0} ms deadline \
         alone ({:.1}% of requests hit it); escalating {:.1}% of traffic to the A40 \
         lifts deadline attainment to {:.1}% (paper §1, §8).",
        700.0,
        offload.slo_ms,
        pinned.slo_attainment * 100.0,
        offload.offload_fraction * 100.0,
        offload.slo_attainment * 100.0,
    );
}
