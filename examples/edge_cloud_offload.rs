//! Edge-vs-cloud offloading: the decision the paper's introduction and
//! conclusion frame the whole study around.
//!
//! A cloud A40 pushes 1000+ YoloV8n fp16 images/s, but every offloaded
//! frame pays network transmission and round-trip costs. This example
//! profiles both sides on the simulator and finds the network bandwidth
//! at which keeping inference on the Jetson Orin Nano wins.
//!
//! ```sh
//! cargo run --release --example edge_cloud_offload
//! ```

use jetsim_lab::prelude::*;

/// Effective cloud throughput once frames traverse the network: the
/// pipeline is limited by the slower of upload and inference.
fn offloaded_throughput(cloud_img_s: f64, uplink_mbps: f64, image_kb: f64) -> f64 {
    let upload_img_s = uplink_mbps * 1e6 / 8.0 / (image_kb * 1000.0);
    cloud_img_s.min(upload_img_s)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 640×640 JPEG frame is roughly 120 KB on the wire.
    const IMAGE_KB: f64 = 120.0;

    let measure = SimDuration::from_millis(1200);
    let edge = DualPhaseProfiler::new(&Platform::orin_nano())
        .deployment(&Deployment::homogeneous(
            &zoo::yolov8n(),
            Precision::Int8,
            4,
            1,
        ))?
        .measure(measure)
        .run_phase1()?
        .0;
    let cloud = DualPhaseProfiler::new(&Platform::cloud_a40())
        .deployment(&Deployment::homogeneous(
            &zoo::yolov8n(),
            Precision::Fp16,
            16,
            1,
        ))?
        .measure(measure)
        .run_phase1()?
        .0;

    println!(
        "edge  (Orin Nano, yolov8n int8 b4):  {:.0} img/s @ {:.1} W",
        edge.throughput, edge.mean_power_w
    );
    println!(
        "cloud (A40, yolov8n fp16 b16):       {:.0} img/s (pre-network)\n",
        cloud.throughput
    );
    assert!(
        cloud.throughput > 1000.0,
        "paper §1: the A40 exceeds 1000 img/s"
    );

    println!("| uplink Mbps | offloaded img/s | edge img/s | winner |");
    println!("|---|---|---|---|");
    let mut crossover: Option<f64> = None;
    for uplink in [10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0] {
        let offloaded = offloaded_throughput(cloud.throughput, uplink, IMAGE_KB);
        let winner = if offloaded > edge.throughput {
            "cloud"
        } else {
            "edge"
        };
        if winner == "cloud" && crossover.is_none() {
            crossover = Some(uplink);
        }
        println!(
            "| {uplink:.0} | {offloaded:.0} | {:.0} | {winner} |",
            edge.throughput
        );
    }

    match crossover {
        Some(mbps) => println!(
            "\n→ below ~{mbps:.0} Mbps of uplink, keep inference at the edge; above it, \
             offloading to the A40 pays off (and a hybrid split balances both, paper §8)."
        ),
        None => println!("\n→ at these uplinks the edge always wins; do not offload."),
    }
    Ok(())
}
