//! Capacity planning: how many concurrent detection streams can one edge
//! box serve?
//!
//! The paper's motivation (§1, §8): instead of trial-and-error against
//! QoS requirements, use offline analysis to pick the number of
//! concurrent processes and the batch size. This example finds, for
//! YoloV8n int8 on a Jetson Orin Nano, the largest process count whose
//! per-process throughput still meets a frames-per-second target — and
//! shows the unified-memory wall that reboots a Jetson Nano when
//! over-deployed (§6.2.1).
//!
//! ```sh
//! cargo run --release --example capacity_planner
//! ```

use jetsim_lab::prelude::*;

const QOS_FPS_PER_STREAM: f64 = 25.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::orin_nano();
    println!(
        "QoS target: ≥{QOS_FPS_PER_STREAM} img/s per stream, YoloV8n int8 on {}\n",
        platform.name()
    );

    let cells = SweepSpec::new()
        .precisions([Precision::Int8])
        .batches([1, 4])
        .process_counts([1, 2, 3, 4, 6, 8])
        .measure(SimDuration::from_millis(1200))
        .run(&platform, &zoo::yolov8n());

    println!("| batch | streams | T/P img/s | meets QoS | power W | mem % |");
    println!("|---|---|---|---|---|---|");
    let mut best: Option<(u32, u32, f64)> = None;
    for cell in &cells {
        match cell.outcome.metrics() {
            Some(m) => {
                let ok = m.throughput_per_process >= QOS_FPS_PER_STREAM;
                println!(
                    "| {} | {} | {:.1} | {} | {:.2} | {:.1} |",
                    cell.batch,
                    cell.processes,
                    m.throughput_per_process,
                    if ok { "yes" } else { "no" },
                    m.mean_power_w,
                    m.gpu_memory_percent
                );
                if ok && best.map(|(_, p, _)| cell.processes > p).unwrap_or(true) {
                    best = Some((cell.batch, cell.processes, m.throughput_per_process));
                }
            }
            None => println!("| {} | {} | OOM | - | - | - |", cell.batch, cell.processes),
        }
    }

    match best {
        Some((batch, procs, tp)) => println!(
            "\n→ deploy {procs} streams at batch {batch}: {tp:.1} img/s each. Offload the rest \
             to the cloud or add another accelerator (paper §8)."
        ),
        None => println!("\n→ no configuration meets the QoS; offload everything."),
    }

    // The over-deployment wall the paper hit on the Jetson Nano.
    println!("\nover-deployment check (FCN_ResNet50 fp16 on Jetson Nano):");
    let nano = Platform::jetson_nano();
    for procs in [1u32, 2, 3, 4] {
        let result = DualPhaseProfiler::new(&nano)
            .deployment(&Deployment::homogeneous(
                &zoo::fcn_resnet50(),
                Precision::Fp16,
                1,
                procs,
            ))?
            // FCN ECs take ~700 ms each on the Nano; give slow
            // configurations enough window to complete a few.
            .measure(SimDuration::from_secs(4))
            .run_phase1();
        match result {
            Ok((report, _)) => println!(
                "  {procs} process(es): {:.1} img/s total",
                report.throughput
            ),
            Err(e) => println!("  {procs} process(es): {e}"),
        }
    }
    Ok(())
}
