//! Request-level resilience under injected faults: the chaos demo.
//!
//! A two-replica ResNet-50 deployment on the Jetson Nano serves an open
//! Poisson stream while a fault plan drops a memory spike big enough
//! that the OOM killer culls *both* replicas mid-run (plus a DVFS
//! throttle lock for flavour). The chaos harness evaluates three policy
//! bundles against byte-identical traffic and faults:
//!
//! 1. **none** — the pre-resilience behaviour: killed replicas stay
//!    dead, their in-flight requests are lost, goodput collapses;
//! 2. **deadline+retry** — requests fail fast and retry, but with no
//!    replica to land on the retries mostly die too;
//! 3. **full** — deadline + retry + breaker + replica recovery: the
//!    replicas restart (cost charged through the engine cache) and the
//!    group claws its goodput back.
//!
//! The run asserts the tentpole acceptance criterion — ≥ 2× goodput
//! retained with recovery+retry vs. resilience disabled under the same
//! fault seed — and prints the [`ResilienceReport`] as deterministic
//! JSON (CI diffs two same-seed runs byte for byte).
//!
//! ```sh
//! cargo run --release --example resilience_serving
//! ```

use jetsim::platform::Platform;
use jetsim_des::{ArrivalProcess, SimDuration, SimTime};
use jetsim_serve::{
    chaos_sweep_with_plan, FaultPlan, OomPolicy, ResiliencePolicies, RetryPolicy, ServeSpec,
    ServeTenant,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::jetson_nano();
    let slo = SimDuration::from_millis(250);
    let base = ServeSpec::new(platform)
        .tenant(
            ServeTenant::parse("resnet50:fp16:1:2", ArrivalProcess::poisson(12.0))?.queue_cap(32),
        )
        .slo(slo)
        .warmup(SimDuration::from_millis(300))
        .duration(SimDuration::from_secs(2));

    // A seeded lock plus one spike sized to the Nano's whole RAM: the
    // OOM killer *will* fire, deterministically, 600 ms in.
    let fault_seed: u64 = 0x00C0_FFEE;
    let plan = FaultPlan::seeded(fault_seed, base.horizon(), 0, 1)
        .memory_spike(
            SimTime::from_nanos(600_000_000),
            SimDuration::from_millis(150),
            4 << 30,
        )
        .oom_policy(OomPolicy::KillLargest);

    let policies = [
        ("none", ResiliencePolicies::none()),
        (
            "deadline+retry",
            ResiliencePolicies::none()
                .deadline(SimDuration::from_millis(1_000))
                .retry(RetryPolicy::new(3, SimDuration::from_millis(125))),
        ),
        ("full", ResiliencePolicies::standard(slo)),
    ];

    let report = chaos_sweep_with_plan(&base, &policies, plan, fault_seed)?;
    eprint!("{report}");

    let none = &report.cells[0];
    let full = &report.cells[2];
    eprintln!(
        "\ngoodput retained: none {:.1}% vs full {:.1}% ({:.1}x)",
        none.goodput_retained * 100.0,
        full.goodput_retained * 100.0,
        full.goodput_retained / none.goodput_retained.max(1e-9),
    );
    assert!(
        full.goodput_retained >= 2.0 * none.goodput_retained,
        "recovery+retry must retain >= 2x the goodput of no resilience \
         (got full {:.3} vs none {:.3})",
        full.goodput_retained,
        none.goodput_retained,
    );
    assert!(
        full.replica_restarts > 0,
        "the full bundle must actually recover replicas"
    );

    // The machine-readable report goes to stdout alone, so CI can diff
    // two same-seed runs byte for byte.
    println!("{}", serde_json::to_string_pretty(&report)?);
    Ok(())
}
