//! Quickstart: profile one vision workload the way the paper does.
//!
//! Runs the dual-phase methodology (lightweight `trtexec`+`jetson-stats`
//! pass, then an Nsight-style kernel-level pass) for ResNet50 int8 on a
//! simulated Jetson Orin Nano, prints both tiers of metrics and the
//! bottleneck diagnosis.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jetsim_lab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::orin_nano();
    println!("platform: {platform}\n");

    let profile = DualPhaseProfiler::new(&platform)
        .deployment(&Deployment::homogeneous(
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        ))?
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_secs(2))
        .run()?;

    println!("== phase 1: trtexec + jetson-stats (no intrusion) ==");
    println!("{}\n", profile.soc);

    println!("== phase 2: Nsight-style kernel tracing ==");
    println!(
        "(intrusion cost: {:.0}% of throughput, as in the paper)",
        profile.intrusion * 100.0
    );
    println!("{}\n", profile.kernel);

    println!("== SM-active CDF (figure 5 style) ==");
    for (value, fraction) in profile.kernel.cdfs.sm_active.curve(11) {
        let bar = "#".repeat((value * 40.0) as usize);
        println!(
            "  p{:>3.0}  {:>5.1}%  {bar}",
            fraction * 100.0,
            value * 100.0
        );
    }

    println!("\n== diagnosis ==");
    println!("{}", profile.analyze());
    Ok(())
}
