//! Precision advisor: pick the right numeric format per device.
//!
//! Reproduces the paper's §6.1 finding as a decision tool: int8 engines
//! win on the Orin Nano, while on the Jetson Nano — whose Maxwell GPU has
//! no int8/tf32 paths, so those engines silently fall back to fp32 —
//! fp16 is both the fastest and the most energy-efficient choice.
//!
//! ```sh
//! cargo run --release --example precision_advisor -- resnet50
//! ```

use jetsim_lab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model_name = std::env::args().nth(1).unwrap_or_else(|| "resnet50".into());
    let model = zoo::by_name(&model_name).ok_or_else(|| {
        format!("unknown model `{model_name}`; try resnet50, fcn_resnet50, yolov8n")
    })?;
    println!(
        "advising precision for {} ({})\n",
        model.name(),
        model.stats()
    );

    for platform in Platform::paper_platforms() {
        println!("== {} ==", platform.name());
        println!("| precision | native? | throughput | J/image | engine MB | GPU mem % |");
        println!("|---|---|---|---|---|---|");
        let cells = SweepSpec::new()
            .precisions(Precision::ALL)
            .measure(SimDuration::from_millis(1200))
            .run(&platform, &model);
        let mut best: Option<(Precision, f64)> = None;
        for cell in &cells {
            let engine = platform.build_engine(&model, cell.precision, 1)?;
            let native = platform
                .device()
                .precision_support
                .is_native(cell.precision);
            if let Some(m) = cell.outcome.metrics() {
                println!(
                    "| {} | {} | {:.1} img/s | {:.3} | {:.1} | {:.2} |",
                    cell.precision,
                    if native { "yes" } else { "no (fp32 fallback)" },
                    m.throughput,
                    m.power_per_image,
                    engine.engine_bytes() as f64 / 1e6,
                    m.gpu_memory_percent
                );
                if best.map(|(_, t)| m.throughput > t).unwrap_or(true) {
                    best = Some((cell.precision, m.throughput));
                }
            }
        }
        if let Some((precision, throughput)) = best {
            println!(
                "→ build {} engines here ({throughput:.1} img/s)\n",
                precision
            );
        }
    }
    Ok(())
}
