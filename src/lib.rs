//! `jetsim-lab` — workspace umbrella crate.
//!
//! This crate exists so the repository root can host runnable
//! [examples](https://github.com/jetsim/jetsim/tree/main/examples) and
//! cross-crate integration tests. It re-exports the public API of every
//! workspace crate; downstream users should depend on [`jetsim`] directly.
//!
//! # Examples
//!
//! ```
//! use jetsim_lab::prelude::*;
//!
//! let platform = Platform::orin_nano();
//! assert_eq!(platform.name(), "Jetson Orin Nano");
//! ```

pub use jetsim;
pub use jetsim::deployment;
pub use jetsim_des;
pub use jetsim_device;
pub use jetsim_dnn;
pub use jetsim_fleet;
pub use jetsim_profile;
pub use jetsim_serve;
pub use jetsim_sim;
pub use jetsim_trt;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use jetsim::prelude::*;
}
