//! Ablation studies: turn one mechanism off at a time and measure what
//! it was buying (or costing).
//!
//! These go beyond the paper's figures but directly probe the design
//! choices its analysis hinges on: the DVFS governor, TensorRT layer
//! fusion, the missing MPS, and the GPU timeslice.

use std::sync::Arc;

use jetsim::prelude::*;
use jetsim::report::Table;
use jetsim_des::SimDuration;
use jetsim_sim::{CpuModel, GpuSharing};
use jetsim_trt::EngineBuilder;

use crate::FigureResult;

fn windows() -> (SimDuration, SimDuration) {
    if std::env::var_os("JETSIM_FAST").is_some() {
        (SimDuration::from_millis(100), SimDuration::from_millis(400))
    } else {
        (
            SimDuration::from_millis(300),
            SimDuration::from_millis(1500),
        )
    }
}

fn run_config(config: SimConfig) -> RunTrace {
    Simulation::new(config).expect("valid config").run()
}

/// DVFS on vs off: without the governor, fp32 workloads blow through the
/// module power budget; with it, they trade clocks for compliance
/// (paper §6.1.2).
pub fn ablation_dvfs() -> FigureResult {
    let (warmup, measure) = windows();
    let mut table = Table::new([
        "model",
        "precision",
        "dvfs",
        "throughput",
        "power_w",
        "freq_mhz",
        "over_budget",
    ]);
    for (model, precision) in [
        (zoo::resnet50(), Precision::Fp32),
        (zoo::fcn_resnet50(), Precision::Fp32),
        (zoo::fcn_resnet50(), Precision::Fp16),
    ] {
        for enabled in [true, false] {
            let mut device = Platform::orin_nano().device().clone();
            device.dvfs.enabled = enabled;
            let budget = device.power.budget_w;
            let config = SimConfig::builder(device)
                .add_model(&model, precision, 4)
                .expect("builds")
                .warmup(warmup)
                .measure(measure)
                .build()
                .expect("fits");
            let trace = run_config(config);
            table.row([
                model.name().to_string(),
                precision.to_string(),
                if enabled { "on" } else { "off" }.to_string(),
                format!("{:.1}", trace.total_throughput()),
                format!("{:.2}", trace.mean_power()),
                trace.final_freq_mhz.to_string(),
                if trace.mean_power() > budget {
                    "YES"
                } else {
                    "no"
                }
                .to_string(),
            ]);
        }
    }
    FigureResult {
        id: "ablation_dvfs",
        title: "DVFS governor on/off (Jetson Orin Nano)",
        tables: vec![("dvfs".to_string(), table)],
    }
}

/// Layer fusion on vs off: unfused engines triple the kernel count and
/// go launch-bound at small batches — quantifying why TensorRT fuses.
pub fn ablation_fusion() -> FigureResult {
    let (warmup, measure) = windows();
    let platform = Platform::orin_nano();
    let mut table = Table::new([
        "model",
        "fusion",
        "kernels",
        "throughput_b1",
        "throughput_b8",
    ]);
    for model in zoo::all() {
        for fused in [true, false] {
            let mut row = vec![
                model.name().to_string(),
                if fused { "on" } else { "off" }.to_string(),
            ];
            let mut kernels = 0;
            let mut tputs = Vec::new();
            for batch in [1u32, 8] {
                let engine = Arc::new(
                    EngineBuilder::new(platform.device())
                        .precision(Precision::Int8)
                        .batch(batch)
                        .fusion(fused)
                        .build(&model)
                        .expect("builds"),
                );
                kernels = engine.kernel_count();
                let config = SimConfig::builder(platform.device().clone())
                    .add_engine(engine)
                    .warmup(warmup)
                    .measure(measure)
                    .build()
                    .expect("fits");
                tputs.push(format!("{:.1}", run_config(config).total_throughput()));
            }
            row.push(kernels.to_string());
            row.extend(tputs);
            table.row(row);
        }
    }
    FigureResult {
        id: "ablation_fusion",
        title: "TensorRT-style layer fusion on/off (Orin Nano, int8)",
        tables: vec![("fusion".to_string(), table)],
    }
}

/// Time multiplexing vs hypothetical MPS: what Jetson loses by lacking
/// spatial sharing (paper §2).
pub fn ablation_mps() -> FigureResult {
    let (warmup, measure) = windows();
    let platform = Platform::orin_nano();
    let mut table = Table::new([
        "model",
        "processes",
        "sharing",
        "throughput_total",
        "throughput_per_process",
    ]);
    for model in [zoo::resnet50(), zoo::yolov8n()] {
        for procs in [2u32, 4, 8] {
            for (label, sharing) in [
                ("time-mux", GpuSharing::TimeMultiplexed),
                (
                    "mps",
                    GpuSharing::SpatialMps {
                        overlap_efficiency: 0.3,
                    },
                ),
            ] {
                let config = SimConfig::builder(platform.device().clone())
                    .add_model_processes(&model, Precision::Int8, 1, procs)
                    .expect("builds")
                    .gpu_sharing(sharing)
                    .warmup(warmup)
                    .measure(measure)
                    .build()
                    .expect("fits");
                let trace = run_config(config);
                table.row([
                    model.name().to_string(),
                    procs.to_string(),
                    label.to_string(),
                    format!("{:.1}", trace.total_throughput()),
                    format!("{:.1}", trace.throughput_per_process()),
                ]);
            }
        }
    }
    FigureResult {
        id: "ablation_mps",
        title: "Kernel time multiplexing vs hypothetical MPS (Orin Nano, int8)",
        tables: vec![("mps".to_string(), table)],
    }
}

/// GPU timeslice sweep: longer slices amortise context switches but
/// starve other processes' latency.
pub fn ablation_timeslice() -> FigureResult {
    let (warmup, measure) = windows();
    let mut table = Table::new(["timeslice_ms", "throughput_total", "p95_ec_ms", "p99_ec_ms"]);
    for slice_ms in [1u64, 2, 4, 8, 16] {
        let mut device = Platform::orin_nano().device().clone();
        device.gpu.timeslice = SimDuration::from_millis(slice_ms);
        let config = SimConfig::builder(device)
            .add_model_processes(&zoo::resnet50(), Precision::Int8, 1, 2)
            .expect("builds")
            .warmup(warmup)
            .measure(measure)
            .build()
            .expect("fits");
        let trace = run_config(config);
        let p95 = trace.processes[0].p95_ec_time.as_millis_f64();
        let p99 = trace.processes[0].p99_ec_time.as_millis_f64();
        table.row([
            slice_ms.to_string(),
            format!("{:.1}", trace.total_throughput()),
            format!("{p95:.2}"),
            format!("{p99:.2}"),
        ]);
    }
    FigureResult {
        id: "ablation_timeslice",
        title: "GPU timeslice sweep (2 × ResNet50 int8, Orin Nano)",
        tables: vec![("timeslice".to_string(), table)],
    }
}

/// Stochastic vs explicit run-queue CPU contention: the calibrated model
/// against the mechanistic one (spin-wait + quantum time-sharing). Both
/// must show the §7 collapse past the heavy cores.
pub fn ablation_cpu_model() -> FigureResult {
    let (warmup, measure) = windows();
    let platform = Platform::orin_nano();
    let mut table = Table::new([
        "processes",
        "cpu_model",
        "throughput_per_process",
        "ec_ms",
        "blocking_ms",
    ]);
    for procs in [1u32, 2, 4, 8] {
        for (label, model) in [
            ("stochastic", CpuModel::Stochastic),
            ("run-queue", CpuModel::RunQueue),
        ] {
            let config = SimConfig::builder(platform.device().clone())
                .add_model_processes(&zoo::resnet50(), Precision::Int8, 1, procs)
                .expect("builds")
                .cpu_model(model)
                .warmup(warmup)
                .measure(measure)
                .build()
                .expect("fits");
            let trace = run_config(config);
            table.row([
                procs.to_string(),
                label.to_string(),
                format!("{:.1}", trace.throughput_per_process()),
                format!("{:.2}", trace.mean_ec_time().as_millis_f64()),
                format!(
                    "{:.2}",
                    trace.processes[0].mean_blocking_time.as_millis_f64()
                ),
            ]);
        }
    }
    FigureResult {
        id: "ablation_cpu_model",
        title: "Calibrated stochastic vs explicit run-queue CPU contention (ResNet50 int8, Orin)",
        tables: vec![("cpu_model".to_string(), table)],
    }
}

/// Every ablation harness with its CLI name — the `repro` binary's
/// ablation registry (figures have their own in
/// [`crate::figures::registry`]).
pub fn registry() -> Vec<(&'static str, crate::Harness)> {
    vec![
        ("ablation_dvfs", ablation_dvfs as fn() -> FigureResult),
        ("ablation_fusion", ablation_fusion),
        ("ablation_mps", ablation_mps),
        ("ablation_timeslice", ablation_timeslice),
        ("ablation_cpu_model", ablation_cpu_model),
    ]
}

/// All ablations.
pub fn all() -> Vec<FigureResult> {
    registry()
        .into_iter()
        .map(|(_, harness)| harness())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_off_overshoots_budget() {
        std::env::set_var("JETSIM_FAST", "1");
        let fig = ablation_dvfs();
        let md = fig.tables[0].1.to_markdown();
        assert!(
            md.contains("YES"),
            "some dvfs-off row must exceed budget:\n{md}"
        );
        // Every dvfs-on row complies.
        for line in md.lines().filter(|l| l.contains("| on |")) {
            assert!(line.contains("| no |"), "{line}");
        }
    }

    #[test]
    fn mps_rows_present_for_both_disciplines() {
        std::env::set_var("JETSIM_FAST", "1");
        let fig = ablation_mps();
        let md = fig.tables[0].1.to_markdown();
        assert!(md.contains("time-mux") && md.contains("mps"));
    }
}
