//! Figure-regeneration harnesses for the ISPASS 2025 Jetson paper.
//!
//! Every table and figure of the paper's evaluation has a function in
//! [`figures`] that reruns the underlying experiment on the simulated
//! platforms and prints the same rows/series the paper reports. The
//! `repro` binary is the front door (`repro --list`, `repro fig06_concurrent_orin`);
//! `repro_all` runs the lot in parallel and writes `results/*.csv` plus
//! a summary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod figures;

use std::path::PathBuf;

use jetsim::report::Table;

/// Where harness binaries drop their CSV output.
pub fn results_dir() -> PathBuf {
    std::env::var_os("JETSIM_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// A named harness entry: the constructor for one table/figure.
pub type Harness = fn() -> FigureResult;

/// One regenerated table/figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Identifier, e.g. `fig06`.
    pub id: &'static str,
    /// Human title matching the paper's caption.
    pub title: &'static str,
    /// Named tables (a figure may have several panels).
    pub tables: Vec<(String, Table)>,
}

impl FigureResult {
    /// Prints the figure to stdout in markdown.
    pub fn print(&self) {
        println!("## {} — {}\n", self.id, self.title);
        for (name, table) in &self.tables {
            println!("### {name}\n\n{table}");
        }
    }

    /// Saves every panel as `results/<id>_<panel>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self) -> std::io::Result<()> {
        for (name, table) in &self.tables {
            let slug: String = name
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            table.save_csv(results_dir().join(format!("{}_{slug}.csv", self.id)))?;
        }
        Ok(())
    }
}
