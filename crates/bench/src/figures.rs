//! One function per paper table/figure.
//!
//! Set `JETSIM_FAST=1` to shrink the measurement windows (used by the
//! Criterion benches and smoke tests); the default windows match the
//! paper's long-run methodology scaled to simulation time.

use std::sync::OnceLock;

use jetsim::observations;
use jetsim::prelude::*;
use jetsim::report::fmt_num;
use jetsim::report::Table;
use jetsim_des::ArrivalProcess;
use jetsim_profile::metrics;
use jetsim_serve::{
    AutoscaleSpec, FaultPlan, OomPolicy, RecoverySpec, ResiliencePolicies, ServeSpec, ServeTenant,
};
use jetsim_sim::GpuPolicy;

use crate::FigureResult;

fn windows() -> (SimDuration, SimDuration) {
    if std::env::var_os("JETSIM_FAST").is_some() {
        (SimDuration::from_millis(100), SimDuration::from_millis(400))
    } else {
        (
            SimDuration::from_millis(300),
            SimDuration::from_millis(1500),
        )
    }
}

fn spec() -> SweepSpec {
    let (warmup, measure) = windows();
    SweepSpec::new().warmup(warmup).measure(measure)
}

fn paper_models() -> Vec<ModelGraph> {
    zoo::all()
}

/// Orin Nano int8 concurrency grid (figures 6, 8 and the concurrent
/// halves of 10/11 share it), computed once.
fn orin_int8_grid() -> &'static Vec<(String, Vec<SweepCell>)> {
    static GRID: OnceLock<Vec<(String, Vec<SweepCell>)>> = OnceLock::new();
    GRID.get_or_init(|| {
        let platform = Platform::orin_nano();
        paper_models()
            .iter()
            .map(|m| {
                let procs: Vec<u32> = if m.name() == "yolov8n" {
                    vec![1, 2, 4, 8, 16]
                } else {
                    vec![1, 2, 4, 8]
                };
                let cells = spec()
                    .precisions([Precision::Int8])
                    .batches([1, 2, 4, 8, 16])
                    .process_counts(procs)
                    .run(&platform, m);
                (m.name().to_string(), cells)
            })
            .collect()
    })
}

/// Jetson Nano fp16 concurrency grid (figures 7 and 9).
fn nano_fp16_grid() -> &'static Vec<(String, Vec<SweepCell>)> {
    static GRID: OnceLock<Vec<(String, Vec<SweepCell>)>> = OnceLock::new();
    GRID.get_or_init(|| {
        let platform = Platform::jetson_nano();
        paper_models()
            .iter()
            .map(|m| {
                let cells = spec()
                    .precisions([Precision::Fp16])
                    .batches([1, 2, 4, 8])
                    .process_counts([1, 2, 4, 8])
                    .run(&platform, m);
                (m.name().to_string(), cells)
            })
            .collect()
    })
}

/// Per-device precision sweep at batch 1, one process (figures 3 and 4).
fn precision_grid(platform: &Platform) -> Vec<(String, Vec<SweepCell>)> {
    paper_models()
        .iter()
        .map(|m| {
            let cells = spec()
                .precisions(Precision::ALL)
                .batches([1])
                .process_counts([1])
                .run(platform, m);
            (m.name().to_string(), cells)
        })
        .collect()
}

fn outcome_cell(cell: &SweepCell, f: fn(&CellMetrics) -> f64) -> String {
    match cell.outcome.metrics() {
        Some(m) => fmt_num(f(m)),
        None => "OOM".to_string(),
    }
}

/// The throughput column, through `CellOutcome::throughput`; cells that
/// failed for any reason render as "OOM".
fn throughput_cell(cell: &SweepCell) -> String {
    cell.outcome
        .throughput()
        .map(fmt_num)
        .unwrap_or_else(|| "OOM".to_string())
}

// ---------------------------------------------------------------- tables

/// Table 1 — the evaluated edge GPUs.
pub fn table1() -> FigureResult {
    let mut table = Table::new(["Metric", "Jetson Orin Nano", "Jetson Nano"]);
    let orin = Platform::orin_nano();
    let nano = Platform::jetson_nano();
    let (o, n) = (orin.device(), nano.device());
    table.row(["CPU", &o.cpu.name, &n.cpu.name]);
    table.row([
        "GPU".to_string(),
        format!("{}-core {}", o.gpu.cuda_cores(), o.gpu.generation),
        format!("{}-core {}", n.gpu.cuda_cores(), n.gpu.generation),
    ]);
    table.row([
        "Tensor Cores".to_string(),
        o.gpu.tensor_cores.to_string(),
        "-".to_string(),
    ]);
    table.row([
        "Unified Memory".to_string(),
        format!("{}GB", o.memory.total_bytes >> 30),
        format!("{}GB", n.memory.total_bytes >> 30),
    ]);
    table.row([
        "Power".to_string(),
        format!("{:.0}W budget", o.power.budget_w),
        format!("{:.0}W budget", n.power.budget_w),
    ]);
    FigureResult {
        id: "table1",
        title: "NVIDIA Jetson GPUs",
        tables: vec![("devices".to_string(), table)],
    }
}

/// Table 2 — the collected metrics at each level.
pub fn table2() -> FigureResult {
    let mut table = Table::new(["Metric", "Level", "Description", "Unit", "Tool"]);
    for m in metrics::registry() {
        table.row([
            m.name.to_string(),
            m.level.to_string(),
            m.description.to_string(),
            m.unit.to_string(),
            m.tool.to_string(),
        ]);
    }
    FigureResult {
        id: "table2",
        title: "Different levels of collected metrics",
        tables: vec![("metrics".to_string(), table)],
    }
}

// --------------------------------------------------------------- figures

/// Figure 1 — GPU memory usage and throughput vs batch size for the
/// ResNet50 fp16 model on the Jetson Orin Nano.
pub fn fig01_batch_sweep() -> FigureResult {
    let cells = spec()
        .precisions([Precision::Fp16])
        .batches([1, 2, 4, 8, 16])
        .process_counts([1])
        .run(&Platform::orin_nano(), &zoo::resnet50());
    let mut table = Table::new(["batch", "gpu_memory_%", "throughput_img_s", "gpu_util_%"]);
    for cell in &cells {
        table.row([
            cell.batch.to_string(),
            outcome_cell(cell, |m| m.gpu_memory_percent),
            throughput_cell(cell),
            outcome_cell(cell, |m| m.gpu_utilization_percent),
        ]);
    }
    FigureResult {
        id: "fig01",
        title: "GPU memory usage and throughput vs batch size (ResNet50 fp16, Orin Nano)",
        tables: vec![("resnet50_fp16_orin".to_string(), table)],
    }
}

/// Figure 3 — GPU memory usage & throughput vs precision for the three
/// vision workloads on both devices.
pub fn fig03_precision() -> FigureResult {
    let mut tables = Vec::new();
    for platform in Platform::paper_platforms() {
        let mut table = Table::new(["model", "precision", "gpu_memory_%", "throughput_img_s"]);
        for (model, cells) in precision_grid(&platform) {
            for cell in &cells {
                table.row([
                    model.clone(),
                    cell.precision.to_string(),
                    outcome_cell(cell, |m| m.gpu_memory_percent),
                    throughput_cell(cell),
                ]);
            }
        }
        tables.push((platform.name().to_string(), table));
    }
    FigureResult {
        id: "fig03",
        title: "GPU memory usage & throughput vs precision (batch 1, single process)",
        tables,
    }
}

/// Figure 4 — power consumption vs precision on both devices.
pub fn fig04_power_precision() -> FigureResult {
    let mut tables = Vec::new();
    for platform in Platform::paper_platforms() {
        let mut table = Table::new([
            "model",
            "precision",
            "power_w",
            "power_per_image_j",
            "gpu_freq_mhz",
        ]);
        for (model, cells) in precision_grid(&platform) {
            for cell in &cells {
                table.row([
                    model.clone(),
                    cell.precision.to_string(),
                    outcome_cell(cell, |m| m.mean_power_w),
                    cell.outcome
                        .metrics()
                        .map(|m| format!("{:.3}", m.power_per_image))
                        .unwrap_or_else(|| "OOM".to_string()),
                    outcome_cell(cell, |m| f64::from(m.final_gpu_freq_mhz)),
                ]);
            }
        }
        tables.push((platform.name().to_string(), table));
    }
    FigureResult {
        id: "fig04",
        title: "Power consumption vs precision",
        tables,
    }
}

fn cdf_row(label: &str, cdf: &jetsim_profile::Cdf) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.1}", cdf.mean() * 100.0),
        format!("{:.1}", cdf.quantile(0.25) * 100.0),
        format!("{:.1}", cdf.quantile(0.5) * 100.0),
        format!("{:.1}", cdf.quantile(0.75) * 100.0),
        format!("{:.1}", cdf.quantile(0.95) * 100.0),
        format!("{:.1}", cdf.fraction_at_least(0.95) * 100.0),
    ]
}

fn util_headers() -> [&'static str; 7] {
    [
        "workload",
        "mean_%",
        "p25_%",
        "p50_%",
        "p75_%",
        "p95_%",
        "time_at_100_%",
    ]
}

/// Plot-ready CDF curves: one row per (workload, quantile) with the
/// value of each utilisation metric, 21 points per curve.
fn curve_table(entries: &[(String, jetsim_profile::UtilizationCdfs)]) -> Table {
    let mut table = Table::new([
        "workload",
        "cdf_fraction",
        "sm_active_%",
        "issue_slot_%",
        "tc_%",
    ]);
    for (label, cdfs) in entries {
        let sm = cdfs.sm_active.curve(21);
        let issue = cdfs.issue_slot.curve(21);
        let tc = cdfs.tc.curve(21);
        for i in 0..21 {
            table.row([
                label.clone(),
                format!("{:.2}", sm[i].1),
                format!("{:.1}", sm[i].0 * 100.0),
                format!("{:.1}", issue[i].0 * 100.0),
                format!("{:.1}", tc[i].0 * 100.0),
            ]);
        }
    }
    table
}

fn nsight_profile(
    platform: &Platform,
    model: &ModelGraph,
    precision: Precision,
    procs: u32,
) -> Option<NsightReport> {
    let (warmup, measure) = windows();
    DualPhaseProfiler::new(platform)
        .deployment(&Deployment::homogeneous(model, precision, 1, procs))
        .ok()?
        .warmup(warmup)
        .measure(measure)
        .run()
        .ok()
        .map(|p| p.kernel)
}

/// Figure 5 — SM-active, issue-slot and tensor-core utilisation CDFs vs
/// precision (Jetson Orin Nano, batch 1, single process).
pub fn fig05_util_cdf_precision() -> FigureResult {
    let platform = Platform::orin_nano();
    let mut sm = Table::new(util_headers());
    let mut issue = Table::new(util_headers());
    let mut tc = Table::new(util_headers());
    let mut curves = Vec::new();
    for model in paper_models() {
        for precision in Precision::ALL {
            let Some(report) = nsight_profile(&platform, &model, precision, 1) else {
                continue;
            };
            let label = format!("{} {}", model.name(), precision);
            sm.row(cdf_row(&label, &report.cdfs.sm_active));
            issue.row(cdf_row(&label, &report.cdfs.issue_slot));
            tc.row(cdf_row(&label, &report.cdfs.tc));
            curves.push((label, report.cdfs));
        }
    }
    FigureResult {
        id: "fig05",
        title: "SM active / issue-slot / TC utilisation vs precision (Orin Nano)",
        tables: vec![
            ("sm_active".to_string(), sm),
            ("issue_slot".to_string(), issue),
            ("tc_utilization".to_string(), tc),
            ("curves".to_string(), curve_table(&curves)),
        ],
    }
}

fn concurrent_tables(
    grid: &[(String, Vec<SweepCell>)],
    headers: [&'static str; 4],
    f: [fn(&CellMetrics) -> f64; 2],
) -> Vec<(String, Table)> {
    grid.iter()
        .map(|(model, cells)| {
            let mut table = Table::new(headers);
            for cell in cells {
                table.row([
                    cell.batch.to_string(),
                    cell.processes.to_string(),
                    outcome_cell(cell, f[0]),
                    outcome_cell(cell, f[1]),
                ]);
            }
            (model.clone(), table)
        })
        .collect()
}

/// Figure 6 — GPU memory usage and T/P for int8 models under concurrency
/// (Jetson Orin Nano).
pub fn fig06_concurrent_orin() -> FigureResult {
    FigureResult {
        id: "fig06",
        title: "GPU memory % and throughput/process, int8, Jetson Orin Nano",
        tables: concurrent_tables(
            orin_int8_grid(),
            [
                "batch",
                "processes",
                "gpu_memory_%",
                "throughput_per_process",
            ],
            [|m| m.gpu_memory_percent, |m| m.throughput_per_process],
        ),
    }
}

/// Figure 7 — GPU memory usage and T/P for fp16 models under concurrency
/// (Jetson Nano).
pub fn fig07_concurrent_nano() -> FigureResult {
    FigureResult {
        id: "fig07",
        title: "GPU memory % and throughput/process, fp16, Jetson Nano",
        tables: concurrent_tables(
            nano_fp16_grid(),
            [
                "batch",
                "processes",
                "gpu_memory_%",
                "throughput_per_process",
            ],
            [|m| m.gpu_memory_percent, |m| m.throughput_per_process],
        ),
    }
}

/// Figure 8 — power consumption for int8 models under concurrency
/// (Jetson Orin Nano).
pub fn fig08_power_orin() -> FigureResult {
    FigureResult {
        id: "fig08",
        title: "Power consumption, int8, Jetson Orin Nano",
        tables: concurrent_tables(
            orin_int8_grid(),
            ["batch", "processes", "power_w", "gpu_freq_mhz"],
            [|m| m.mean_power_w, |m| f64::from(m.final_gpu_freq_mhz)],
        ),
    }
}

/// Figure 9 — power consumption for fp16 models under concurrency
/// (Jetson Nano).
pub fn fig09_power_nano() -> FigureResult {
    FigureResult {
        id: "fig09",
        title: "Power consumption, fp16, Jetson Nano",
        tables: concurrent_tables(
            nano_fp16_grid(),
            ["batch", "processes", "power_w", "gpu_freq_mhz"],
            [|m| m.mean_power_w, |m| f64::from(m.final_gpu_freq_mhz)],
        ),
    }
}

/// Figure 10 — utilisation CDFs vs number of concurrent processes
/// (Jetson Orin Nano, int8, batch 1).
pub fn fig10_util_cdf_concurrent() -> FigureResult {
    let platform = Platform::orin_nano();
    let mut sm = Table::new(util_headers());
    let mut issue = Table::new(util_headers());
    let mut tc = Table::new(util_headers());
    let mut curves = Vec::new();
    for model in paper_models() {
        for procs in [1u32, 2, 4, 8] {
            let Some(report) = nsight_profile(&platform, &model, Precision::Int8, procs) else {
                continue;
            };
            let label = format!("{} p{}", model.name(), procs);
            sm.row(cdf_row(&label, &report.cdfs.sm_active));
            issue.row(cdf_row(&label, &report.cdfs.issue_slot));
            tc.row(cdf_row(&label, &report.cdfs.tc));
            curves.push((label, report.cdfs));
        }
    }
    FigureResult {
        id: "fig10",
        title: "SM active / issue-slot / TC utilisation vs concurrent processes (Orin Nano)",
        tables: vec![
            ("sm_active".to_string(), sm),
            ("issue_slot".to_string(), issue),
            ("tc_utilization".to_string(), tc),
            ("curves".to_string(), curve_table(&curves)),
        ],
    }
}

fn events_tables(
    platform: &Platform,
    model: &ModelGraph,
    precision: Precision,
    batches: &[u32],
    procs: &[u32],
) -> Vec<(String, Table)> {
    let headers = ["x", "ec_ms", "launch_ms", "sync_ms", "blocking_ms"];
    let batch_cells = spec()
        .precisions([precision])
        .batches(batches.to_vec())
        .process_counts([1])
        .run(platform, model);
    let mut by_batch = Table::new(headers);
    for cell in &batch_cells {
        by_batch.row([
            format!("b{}", cell.batch),
            outcome_cell(cell, |m| m.mean_ec_ms),
            outcome_cell(cell, |m| m.mean_launch_ms),
            outcome_cell(cell, |m| m.mean_sync_ms),
            outcome_cell(cell, |m| m.mean_blocking_ms),
        ]);
    }
    let proc_cells = spec()
        .precisions([precision])
        .batches([1])
        .process_counts(procs.to_vec())
        .run(platform, model);
    let mut by_procs = Table::new(headers);
    for cell in &proc_cells {
        by_procs.row([
            format!("p{}", cell.processes),
            outcome_cell(cell, |m| m.mean_ec_ms),
            outcome_cell(cell, |m| m.mean_launch_ms),
            outcome_cell(cell, |m| m.mean_sync_ms),
            outcome_cell(cell, |m| m.mean_blocking_ms),
        ]);
    }
    vec![
        ("vs_batch".to_string(), by_batch),
        ("vs_processes".to_string(), by_procs),
    ]
}

/// Figure 11 — GPU and CPU event breakdown for ResNet50 int8 on the
/// Jetson Orin Nano, vs batch size (left) and process count (right).
pub fn fig11_events_orin() -> FigureResult {
    FigureResult {
        id: "fig11",
        title: "GPU/CPU events, ResNet50 int8, Jetson Orin Nano",
        tables: events_tables(
            &Platform::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            &[1, 2, 4, 8, 16],
            &[1, 2, 4, 8],
        ),
    }
}

/// Figure 12 — the same breakdown for ResNet50 fp16 on the Jetson Nano.
pub fn fig12_events_nano() -> FigureResult {
    FigureResult {
        id: "fig12",
        title: "GPU/CPU events, ResNet50 fp16, Jetson Nano",
        tables: events_tables(
            &Platform::jetson_nano(),
            &zoo::resnet50(),
            Precision::Fp16,
            &[1, 2, 4, 8],
            &[1, 2, 4],
        ),
    }
}

/// The abstract's headline: near-100 % GPU utilisation coexisting with
/// 15–30 % SM/TC utilisation.
pub fn headline_gap() -> FigureResult {
    let (warmup, measure) = windows();
    let mut table = Table::new([
        "workload",
        "gpu_util_%",
        "sm_active_mean_%",
        "issue_slot_mean_%",
        "tc_mean_%",
    ]);
    for (model, precision) in [
        (zoo::resnet50(), Precision::Fp16),
        (zoo::resnet50(), Precision::Int8),
        (zoo::yolov8n(), Precision::Int8),
    ] {
        let profile = DualPhaseProfiler::new(&Platform::orin_nano())
            .deployment(&Deployment::homogeneous(&model, precision, 1, 1))
            .expect("engine builds")
            .warmup(warmup)
            .measure(measure)
            .run()
            .expect("fits in memory");
        table.row([
            format!("{} {}", model.name(), precision),
            format!("{:.1}", profile.soc.gpu_utilization_percent),
            format!("{:.1}", profile.kernel.cdfs.sm_active.mean() * 100.0),
            format!("{:.1}", profile.kernel.cdfs.issue_slot.mean() * 100.0),
            format!("{:.1}", profile.kernel.cdfs.tc.mean() * 100.0),
        ]);
    }
    FigureResult {
        id: "headline",
        title: "High GPU utilisation vs low SM/TC utilisation (abstract)",
        tables: vec![("gap".to_string(), table)],
    }
}

/// Checks the paper's boxed observations against the simulated platform
/// and reports PASS/FAIL per claim.
pub fn observation_checks() -> (FigureResult, usize, usize) {
    let (warmup, measure) = windows();
    let orin = Platform::orin_nano();
    let nano = Platform::jetson_nano();
    let mut checks: Vec<observations::Check> = Vec::new();

    // §6.1.1 / §6.1.2 — precision sweeps at b1 p1.
    let orin_resnet = spec()
        .precisions(Precision::ALL)
        .run(&orin, &zoo::resnet50());
    let nano_resnet = spec()
        .precisions(Precision::ALL)
        .run(&nano, &zoo::resnet50());
    checks.push(observations::optimal_precision(
        &orin_resnet,
        Precision::Int8,
    ));
    checks.push(observations::optimal_precision(
        &nano_resnet,
        Precision::Fp16,
    ));
    checks.push(observations::memory_grows_with_precision(&orin_resnet));
    checks.push(observations::supported_format_cheapest_per_image(
        &nano_resnet,
    ));
    checks.push(observations::fp32_power_drops(&orin_resnet));

    // §6.1.3 / §6.1.4 — kernel-level behaviour.
    if let Some(report) = nsight_profile(&orin, &zoo::resnet50(), Precision::Fp16, 1) {
        checks.push(observations::issue_slots_stall(&report));
    }
    let fcn = DualPhaseProfiler::new(&orin)
        .deployment(&Deployment::homogeneous(
            &zoo::fcn_resnet50(),
            Precision::Fp16,
            1,
            1,
        ))
        .expect("builds")
        .warmup(warmup)
        .measure(measure)
        .run()
        .expect("fits");
    let resnet_int8 = DualPhaseProfiler::new(&orin)
        .deployment(&Deployment::homogeneous(
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        ))
        .expect("builds")
        .warmup(warmup)
        .measure(measure)
        .run()
        .expect("fits");
    checks.push(observations::tc_not_throughput(
        (fcn.kernel.cdfs.tc.mean(), fcn.soc.throughput),
        (
            resnet_int8.kernel.cdfs.tc.mean(),
            resnet_int8.soc.throughput,
        ),
    ));

    // §6.2 / §7 — concurrency grids.
    let grid = orin_int8_grid();
    for (model, cells) in grid {
        if model == "yolov8n" {
            checks.push(observations::tp_scaling(cells, Precision::Int8));
        }
        if model == "resnet50" {
            checks.push(observations::power_capped(
                cells,
                orin.device().power.budget_w,
            ));
            checks.push(observations::ec_stability(
                cells,
                Precision::Int8,
                orin.device().cpu.heavy_cores,
            ));
            checks.push(observations::batch_stabilizes_ec(cells, Precision::Int8));
        }
    }

    let mut table = Table::new(["id", "claim", "verdict", "evidence"]);
    let mut passed = 0;
    for check in &checks {
        if check.holds {
            passed += 1;
        }
        table.row([
            check.id.to_string(),
            check.claim.to_string(),
            if check.holds { "PASS" } else { "FAIL" }.to_string(),
            check.evidence.clone(),
        ]);
    }
    let total = checks.len();
    (
        FigureResult {
            id: "observations",
            title: "The paper's boxed observations, checked",
            tables: vec![("checks".to_string(), table)],
        },
        passed,
        total,
    )
}

/// Jain fairness index over per-group goodput: `(Σx)² / (n·Σx²)`.
/// 1.0 is perfectly even; `1/n` is one group taking everything.
fn jain(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sq)
}

/// The low-priority side of one mixed-criticality deployment, built for
/// a given offered rate (the high-priority tenant is fixed).
fn policy_lo_tenants(deployment: &str, lo_rate: f64) -> Vec<ServeTenant> {
    match deployment {
        "resnet50-hi+fcn" => vec![ServeTenant::new(
            Tenant::new(zoo::fcn_resnet50(), Precision::Fp16, 1),
            ArrivalProcess::poisson(lo_rate),
        )],
        "resnet50-hi+2xyolo" => vec![ServeTenant::new(
            Tenant::new(zoo::yolov8n(), Precision::Fp16, 1).count(2),
            ArrivalProcess::poisson(lo_rate),
        )],
        other => unreachable!("unknown policy deployment {other}"),
    }
}

/// One cell of the policy comparison: the full serving report for a
/// mixed-criticality deployment under `policy` at `rate` req/s total
/// offered load (25 % high-priority, 75 % background).
fn policy_cell(deployment: &str, rate: f64, policy: GpuPolicy) -> jetsim_serve::ServeReport {
    let (warmup, measure) = windows();
    let hi = ServeTenant::new(
        Tenant::new(zoo::resnet50(), Precision::Int8, 1)
            .priority(5)
            .sm_share(2.0),
        ArrivalProcess::poisson(rate * 0.25),
    );
    let mut spec = ServeSpec::new(Platform::orin_nano())
        .warmup(warmup)
        .duration(measure)
        .gpu_policy(policy)
        .tenant(hi);
    for tenant in policy_lo_tenants(deployment, rate * 0.75) {
        spec = spec.tenant(tenant);
    }
    spec.run().expect("policy cell builds and fits")
}

/// GPU scheduling policy comparison (new analysis, not in the paper):
/// every `--gpu-policy` against two mixed-criticality deployments at a
/// light and a saturating offered load on the Orin Nano. The
/// high-priority tenant is always `resnet50 int8 b1` at priority 5 /
/// SM share 2.0; the same seed replays the same request timeline under
/// every policy, so rows differ only by scheduling.
pub fn policy_comparison() -> FigureResult {
    let mut table = Table::new([
        "deployment",
        "offered_rps",
        "policy",
        "hi_p99_ms",
        "hi_goodput_qps",
        "lo_p99_ms",
        "total_goodput_qps",
        "fairness",
    ]);
    for deployment in ["resnet50-hi+fcn", "resnet50-hi+2xyolo"] {
        for rate in [40.0, 120.0] {
            for name in ["rr", "fifo", "priority", "mps"] {
                let policy: GpuPolicy = name.parse().expect("known policy");
                let report = policy_cell(deployment, rate, policy);
                let hi = &report.groups[0];
                let goodputs: Vec<f64> = report.groups.iter().map(|g| g.goodput_qps).collect();
                let lo_p99 = report.groups[1..]
                    .iter()
                    .map(|g| g.p99_ms)
                    .fold(0.0_f64, f64::max);
                table.row([
                    deployment.to_string(),
                    format!("{rate:.0}"),
                    name.to_string(),
                    format!("{:.2}", hi.p99_ms),
                    format!("{:.1}", hi.goodput_qps),
                    format!("{lo_p99:.2}"),
                    format!("{:.1}", goodputs.iter().sum::<f64>()),
                    format!("{:.3}", jain(&goodputs)),
                ]);
            }
        }
    }
    FigureResult {
        id: "policy_comparison",
        title: "GPU scheduling policies under mixed-criticality serving",
        tables: vec![("policies".to_string(), table)],
    }
}

/// One provisioning policy of the autoscale comparison: a mobilenet_v2
/// fp16 b1 group (launch-bound, so replicas genuinely add capacity —
/// ~210 qps each up to 3; beyond that time-slice thrash wins) with
/// `replicas` slots under bursty MMPP traffic. `None` = static;
/// `Some(floor)` arms the autoscaler between `floor` and `replicas`.
fn autoscale_cell(
    autoscale: Option<u32>,
    replicas: u32,
    faults: bool,
) -> (jetsim_serve::ServeReport, f64) {
    let (warmup, measure) = windows();
    let mut tenant = ServeTenant::new(
        Tenant::new(zoo::mobilenet_v2(), Precision::Fp16, 1).count(replicas),
        ArrivalProcess::mmpp(
            50.0,
            700.0,
            SimDuration::from_millis(350),
            SimDuration::from_millis(200),
        ),
    )
    .queue_cap(512);
    if let Some(floor) = autoscale {
        tenant = tenant.autoscale(
            AutoscaleSpec::new(floor)
                .target_queue_per_replica(2.0)
                .keep_alive(SimDuration::from_millis(150))
                .evaluate_every(SimDuration::from_millis(10)),
        );
    }
    let mut spec = ServeSpec::new(Platform::orin_nano())
        .warmup(warmup)
        .duration(measure)
        .slo(SimDuration::from_millis(50))
        .tenant(tenant);
    if faults {
        // Seeded spikes (128-768 MB) never threaten an 8 GB board
        // hosting mobilenet engines; an explicit 7 GiB squeeze
        // mid-window forces the OOM killer for real.
        let spike_at = SimTime::from_nanos((warmup + measure.mul_f64(0.3)).as_nanos());
        spec = spec
            .resilience(ResiliencePolicies::none().recovery(RecoverySpec::auto(2)))
            .faults(
                FaultPlan::new()
                    .memory_spike(spike_at, measure.mul_f64(0.15), 7 << 30)
                    .oom_policy(OomPolicy::KillLargest),
            );
    }
    let report = spec.run().expect("autoscale cell builds and fits");
    // Static groups hold every replica up for the whole window; the
    // autoscaled group's integral comes from its scaling telemetry.
    let replica_seconds = if autoscale.is_some() {
        report.groups[0].replica_seconds
    } else {
        replicas as f64 * measure.as_secs_f64()
    };
    (report, replica_seconds)
}

/// Serverless autoscaling comparison (new analysis, not in the paper):
/// the same bursty MMPP request timeline served by a static minimal
/// deployment, a static maximal one, and the autoscaler — first on a
/// healthy board, then through an OOM storm with replica recovery
/// armed. The capacity table runs the bracketing search on the static
/// floor vs the autoscaled group.
pub fn autoscale_comparison() -> FigureResult {
    let mut table = Table::new([
        "scenario",
        "policy",
        "goodput_qps",
        "p99_ms",
        "slo_att",
        "replica_s",
        "cold",
        "warm",
        "reaps",
        "cold_tax_ms",
    ]);
    for (scenario, faults) in [("mmpp-burst", false), ("oom-storm", true)] {
        for (policy, autoscale, replicas) in [
            ("static-min", None, 1),
            ("static-max", None, 3),
            ("autoscale 1..3", Some(1), 3),
            ("scale-to-zero", Some(0), 3),
        ] {
            let (report, replica_seconds) = autoscale_cell(autoscale, replicas, faults);
            let g = &report.groups[0];
            table.row([
                scenario.to_string(),
                policy.to_string(),
                format!("{:.1}", g.goodput_qps),
                format!("{:.2}", g.p99_ms),
                format!("{:.3}", g.slo_attainment),
                format!("{replica_seconds:.2}"),
                format!("{}", g.cold_starts),
                format!("{}", g.warm_starts),
                format!("{}", g.reaps),
                format!("{:.2}", g.cold_start_tax_ms),
            ]);
        }
    }

    let (warmup, measure) = windows();
    let mut capacity = Table::new(["policy", "max_qps", "probes"]);
    for (policy, autoscale, replicas) in
        [("static-min", None, 1u32), ("autoscale 1..3", Some(1), 3)]
    {
        let mut tenant = ServeTenant::new(
            Tenant::new(zoo::mobilenet_v2(), Precision::Fp16, 1).count(replicas),
            ArrivalProcess::poisson(150.0),
        )
        .queue_cap(512);
        if let Some(floor) = autoscale {
            tenant = tenant.autoscale(
                AutoscaleSpec::new(floor)
                    .target_queue_per_replica(2.0)
                    .keep_alive(SimDuration::from_millis(150))
                    .evaluate_every(SimDuration::from_millis(10)),
            );
        }
        let spec = ServeSpec::new(Platform::orin_nano())
            .warmup(warmup)
            .duration(measure)
            .slo(SimDuration::from_millis(50))
            .tenant(tenant);
        let estimate = spec.find_max_qps(0.9, 4).expect("capacity search runs");
        capacity.row([
            policy.to_string(),
            format!("{:.1}", estimate.max_qps),
            format!("{}", estimate.probes.len()),
        ]);
    }

    FigureResult {
        id: "autoscale_comparison",
        title: "Serverless autoscaling vs static provisioning under bursts",
        tables: vec![
            ("provisioning".to_string(), table),
            ("capacity".to_string(), capacity),
        ],
    }
}

/// One cell of the fleet comparison: the shared MMPP aggregate stream
/// routed over 4 edge sites (plus an optional cloud tier) by `policy`.
/// A resnet50 int8 site saturates near 400 qps, so the 2400 qps burst
/// runs the edge at ~1.5x aggregate capacity — real pressure for the
/// routers to react to (under light load every policy collapses to
/// "serve at home"). The 32 KB uplink and 10 ms cloud RTT keep the
/// cloud detour comfortably inside the 100 ms SLO, which is what makes
/// escalation worth taking.
fn fleet_cell(policy: jetsim_fleet::RouterPolicy, cloud: bool) -> jetsim_fleet::FleetReport {
    let (warmup, measure) = windows();
    let scenario: jetsim_serve::ScenarioSpec = format!(
        "seed = 7\n\
         duration = \"{}ms\"\n\
         warmup = \"{}ms\"\n\
         slo = \"100ms\"\n\
         [[tenants]]\n\
         spec = \"resnet50:int8:1:1\"\n\
         arrival = \"mmpp:600:2400:300:150\"\n",
        measure.as_nanos() / 1_000_000,
        warmup.as_nanos() / 1_000_000,
    )
    .parse()
    .expect("fleet scenario parses");
    jetsim_fleet::FleetSpec::new(scenario)
        .sites(4)
        .cloud(cloud)
        .router(policy)
        .network(
            "req_kb=32,cloud_rtt=10ms"
                .parse()
                .expect("fleet figure network parses"),
        )
        .run()
        .expect("fleet cell runs")
}

/// Fleet routing comparison (new analysis, not in the paper): the same
/// bursty aggregate stream pushed through every routing policy, first
/// over an edge-only fleet, then with a cloud tier reachable behind
/// extra RTT. Offload-aware policies trade network latency for queue
/// time during bursts; home-pinned ones eat the queues.
pub fn fleet_comparison() -> FigureResult {
    let mut table = Table::new([
        "deployment",
        "router",
        "p99_ms",
        "goodput_qps",
        "slo_att",
        "offload",
        "non_home",
        "net_ms",
        "xsite_mb",
    ]);
    for (deployment, cloud) in [("edge-only", false), ("edge+cloud", true)] {
        for policy in jetsim_fleet::RouterPolicy::all() {
            let r = fleet_cell(policy, cloud);
            table.row([
                deployment.to_string(),
                r.router.clone(),
                format!("{:.2}", r.p99_ms),
                format!("{:.1}", r.goodput_qps),
                format!("{:.3}", r.slo_attainment),
                format!("{:.3}", r.offload_fraction),
                format!("{:.3}", r.non_home_fraction),
                format!("{:.3}", r.mean_network_ms),
                format!("{:.2}", r.cross_site_traffic_mb),
            ]);
        }
    }
    FigureResult {
        id: "fleet_comparison",
        title: "Fleet routing policies under bursts, edge-only vs edge+cloud",
        tables: vec![("routers".to_string(), table)],
    }
}

/// Every figure/table harness with its CLI name, in paper order — the
/// registry behind the `repro` binary (ablations have their own in
/// [`crate::ablations::registry`]).
pub fn registry() -> Vec<(&'static str, crate::Harness)> {
    vec![
        ("table1", table1 as fn() -> FigureResult),
        ("table2", table2),
        ("fig01_batch_sweep", fig01_batch_sweep),
        ("fig03_precision", fig03_precision),
        ("fig04_power_precision", fig04_power_precision),
        ("fig05_util_cdf_precision", fig05_util_cdf_precision),
        ("fig06_concurrent_orin", fig06_concurrent_orin),
        ("fig07_concurrent_nano", fig07_concurrent_nano),
        ("fig08_power_orin", fig08_power_orin),
        ("fig09_power_nano", fig09_power_nano),
        ("fig10_util_cdf_concurrent", fig10_util_cdf_concurrent),
        ("fig11_events_orin", fig11_events_orin),
        ("fig12_events_nano", fig12_events_nano),
        ("headline_gap", headline_gap),
        ("policy_comparison", policy_comparison),
        ("autoscale_comparison", autoscale_comparison),
        ("fleet_comparison", fleet_comparison),
    ]
}

/// Every harness, as plain function pointers in paper order.
fn harnesses() -> Vec<fn() -> FigureResult> {
    registry().into_iter().map(|(_, harness)| harness).collect()
}

/// Every figure and table, in paper order.
pub fn all() -> Vec<FigureResult> {
    harnesses().into_iter().map(|harness| harness()).collect()
}

/// Every figure and table, computed in parallel across worker threads
/// but returned in paper order.
///
/// The harnesses are independent: the shared concurrency grids
/// (`orin_int8_grid`, `nano_fp16_grid`) sit behind `OnceLock`s so
/// concurrent harnesses block on one computation instead of repeating
/// it, and every engine build is served by the process-wide engine
/// cache, so e.g. figures 6, 8 and 11 compile each `(model, int8,
/// batch)` engine exactly once between them.
pub fn all_parallel() -> Vec<FigureResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let harnesses = harnesses();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(harnesses.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<FigureResult>> = Vec::new();
    slots.resize_with(harnesses.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, FigureResult)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&harness) = harnesses.get(index) else {
                            break;
                        };
                        done.push((index, harness()));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("figure worker panicked") {
                slots[index] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every harness ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() {
        std::env::set_var("JETSIM_FAST", "1");
    }

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.tables[0].1.to_markdown().contains("Tensor Cores"));
        let t2 = table2();
        assert_eq!(t2.tables[0].1.len(), 10);
    }

    #[test]
    fn fig01_rows_cover_batches() {
        fast();
        let fig = fig01_batch_sweep();
        assert_eq!(fig.tables[0].1.len(), 5);
    }

    #[test]
    fn headline_gap_runs() {
        fast();
        let fig = headline_gap();
        assert_eq!(fig.tables[0].1.len(), 3);
    }

    #[test]
    fn policy_comparison_covers_grid() {
        fast();
        let fig = policy_comparison();
        // 2 deployments × 2 rates × 4 policies.
        assert_eq!(fig.tables[0].1.len(), 16);
    }

    #[test]
    fn priority_policy_improves_hi_tenant_p99() {
        fast();
        // Under contention, preemptive priority must cut the
        // high-priority tenant's tail latency relative to fair
        // round-robin in at least one swept cell (the PR's acceptance
        // criterion).
        let mut wins = 0;
        for deployment in ["resnet50-hi+fcn", "resnet50-hi+2xyolo"] {
            for rate in [40.0, 120.0] {
                let rr = policy_cell(deployment, rate, GpuPolicy::TimesliceRR);
                let pr = policy_cell(deployment, rate, "priority".parse().unwrap());
                if pr.groups[0].p99_ms < rr.groups[0].p99_ms {
                    wins += 1;
                }
            }
        }
        assert!(wins >= 1, "priority never beat rr on hi-tenant p99");
    }

    #[test]
    fn jain_index_bounds() {
        assert!((jain(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        assert!((jain(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
    }
}
