//! Regenerates the paper's fig04_power_precision on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::fig04_power_precision();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
