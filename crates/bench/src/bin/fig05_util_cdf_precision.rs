//! Regenerates the paper's fig05_util_cdf_precision on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::fig05_util_cdf_precision();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
