//! `repro` — one front door for every table, figure and ablation.
//!
//! Replaces the fleet of thin `fig*`/`table*`/`ablation_*` binaries:
//!
//! ```sh
//! repro --list                # what can be regenerated
//! repro fig06_concurrent_orin # one harness, printed + results/*.csv
//! repro table1 ablation_dvfs  # several, in the order given
//! repro --all                 # everything, like repro_all
//! ```
//!
//! `repro_all` remains the parallel everything-at-once entry point that
//! also writes `results/summary.md`.

use std::process::ExitCode;

use jetsim_bench::Harness;

fn registry() -> Vec<(&'static str, Harness)> {
    let mut harnesses = jetsim_bench::figures::registry();
    harnesses.extend(jetsim_bench::ablations::registry());
    harnesses
}

fn usage(registry: &[(&'static str, Harness)]) -> String {
    let mut out = String::from(
        "usage: repro [--list | --all | <harness>...]\n\
         regenerates the paper's tables/figures/ablations; CSVs land in results/\n\
         harnesses:\n",
    );
    for (name, _) in registry {
        out.push_str("  ");
        out.push_str(name);
        out.push('\n');
    }
    out
}

fn main() -> ExitCode {
    let registry = registry();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprint!("{}", usage(&registry));
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--list") {
        for (name, _) in &registry {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let selected: Vec<Harness> = if args.iter().any(|a| a == "--all") {
        registry.iter().map(|&(_, harness)| harness).collect()
    } else {
        let mut selected = Vec::with_capacity(args.len());
        for arg in &args {
            match registry.iter().find(|(name, _)| name == arg) {
                Some(&(_, harness)) => selected.push(harness),
                None => {
                    eprintln!("unknown harness `{arg}`\n{}", usage(&registry));
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };
    for harness in selected {
        let fig = harness();
        fig.print();
        if let Err(e) = fig.save_csv() {
            eprintln!("warning: could not save CSV: {e}");
        }
    }
    ExitCode::SUCCESS
}
