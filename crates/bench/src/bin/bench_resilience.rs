//! Emits `BENCH_resilience.json`: what each resilience policy bundle
//! buys under injected faults — goodput retained, deadline-hit rate,
//! recovery time and retry amplification — across two chaos scenarios
//! (an OOM storm that kills replicas, and a DVFS throttle storm that
//! only slows them down).
//!
//! ```sh
//! cargo run --release -p jetsim-bench --bin bench_resilience            # emit
//! cargo run --release -p jetsim-bench --bin bench_resilience -- --check # gate
//! ```
//!
//! Unlike `bench_des`, every gated number here is *simulated*: the chaos
//! harness is bit-deterministic per seed and host-independent, so
//! `--check` compares the committed baseline (near-)exactly — any drift
//! means the resilience machinery changed behaviour, not that the host
//! got slower. Wall-clock time is recorded for context and never gated,
//! and the windows are fixed (no `JETSIM_FAST` shrink) for the same
//! reason.

use std::time::Instant;

use jetsim::platform::Platform;
use jetsim_des::{ArrivalProcess, SimDuration, SimTime};
use jetsim_serve::{
    chaos_sweep_with_plan, FaultPlan, HedgePolicy, OomPolicy, ResiliencePolicies, ResilienceReport,
    RetryPolicy, ServeSpec, ServeTenant,
};

/// Absolute slack for float comparisons in `--check`: wide enough to
/// absorb the shortest-roundtrip JSON formatting, far below any real
/// behaviour change.
const FLOAT_TOLERANCE: f64 = 1e-9;

const FAULT_SEED: u64 = 0x0DD5_EED5;

/// OOM storm: a two-replica fp16 ResNet-50 deployment on the Jetson
/// Nano, hit by a memory spike sized to the whole board — the OOM
/// killer fires deterministically 600 ms in and takes both replicas.
fn oom_storm() -> Result<ResilienceReport, Box<dyn std::error::Error>> {
    let slo = SimDuration::from_millis(250);
    let base = ServeSpec::new(Platform::jetson_nano())
        .tenant(
            ServeTenant::parse("resnet50:fp16:1:2", ArrivalProcess::poisson(12.0))?.queue_cap(32),
        )
        .slo(slo)
        .warmup(SimDuration::from_millis(300))
        .duration(SimDuration::from_secs(2));
    let plan = FaultPlan::seeded(FAULT_SEED, base.horizon(), 0, 1)
        .memory_spike(
            SimTime::from_nanos(600_000_000),
            SimDuration::from_millis(150),
            4 << 30,
        )
        .oom_policy(OomPolicy::KillLargest);
    let policies = [
        ("none", ResiliencePolicies::none()),
        (
            "deadline+retry",
            ResiliencePolicies::none()
                .deadline(SimDuration::from_millis(1_000))
                .retry(RetryPolicy::new(3, SimDuration::from_millis(125))),
        ),
        (
            "hedged",
            ResiliencePolicies::none()
                .deadline(SimDuration::from_millis(1_000))
                .retry(RetryPolicy::new(3, SimDuration::from_millis(125)))
                .hedge(HedgePolicy::fixed(SimDuration::from_millis(40))),
        ),
        ("full", ResiliencePolicies::standard(slo)),
    ];
    Ok(chaos_sweep_with_plan(&base, &policies, plan, FAULT_SEED)?)
}

/// DVFS storm: two int8 ResNet-50 replicas on the Orin Nano at a brisk
/// 200 qps, under seeded throttle locks only — nothing dies, but the
/// clock floor stretches latencies past the SLO and the breaker and
/// retry paths earn (or waste) their keep.
fn dvfs_storm() -> Result<ResilienceReport, Box<dyn std::error::Error>> {
    let slo = SimDuration::from_millis(50);
    let base = ServeSpec::new(Platform::orin_nano())
        .tenant(
            ServeTenant::parse("resnet50:int8:1:2", ArrivalProcess::poisson(200.0))?.queue_cap(64),
        )
        .slo(slo)
        .warmup(SimDuration::from_millis(300))
        .duration(SimDuration::from_secs(2));
    let plan =
        FaultPlan::seeded(FAULT_SEED, base.horizon(), 0, 4).oom_policy(OomPolicy::KillLargest);
    let policies = [
        ("none", ResiliencePolicies::none()),
        (
            "deadline+retry",
            ResiliencePolicies::none()
                .deadline(SimDuration::from_millis(200))
                .retry(RetryPolicy::new(3, SimDuration::from_millis(25))),
        ),
        ("full", ResiliencePolicies::standard(slo)),
    ];
    Ok(chaos_sweep_with_plan(&base, &policies, plan, FAULT_SEED)?)
}

/// Recursively compares two JSON values: exact for integers, bools and
/// strings, `FLOAT_TOLERANCE` slack for floats. Records one line per
/// mismatch.
fn diff_value(
    path: &str,
    base: &serde_json::Value,
    fresh: &serde_json::Value,
    out: &mut Vec<String>,
) {
    use serde_json::Value;
    let as_f64 = |v: &Value| -> Option<f64> {
        match v {
            Value::F64(f) => Some(*f),
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    };
    match (base, fresh) {
        (Value::Map(b), Value::Map(f)) => {
            for (key, bv) in b {
                match f.iter().find(|(k, _)| k == key) {
                    Some((_, fv)) => diff_value(&format!("{path}.{key}"), bv, fv, out),
                    None => out.push(format!("{path}.{key}: missing from fresh run")),
                }
            }
            for (key, _) in f {
                if !b.iter().any(|(k, _)| k == key) {
                    out.push(format!("{path}.{key}: not in baseline (regenerate?)"));
                }
            }
        }
        (Value::Seq(b), Value::Seq(f)) => {
            if b.len() != f.len() {
                out.push(format!("{path}: length {} vs {}", b.len(), f.len()));
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                diff_value(&format!("{path}[{i}]"), bv, fv, out);
            }
        }
        _ => {
            // Numbers tolerate formatting slack; everything else is exact.
            if let (Some(b), Some(f)) = (as_f64(base), as_f64(fresh)) {
                if (b - f).abs() > FLOAT_TOLERANCE {
                    out.push(format!("{path}: baseline {b} vs fresh {f}"));
                }
            } else if base != fresh {
                out.push(format!("{path}: baseline {base:?} vs fresh {fresh:?}"));
            }
        }
    }
}

fn check(scenarios: &[(&str, &ResilienceReport)]) -> std::io::Result<()> {
    let text = std::fs::read_to_string("BENCH_resilience.json").map_err(|e| {
        std::io::Error::other(format!(
            "--check needs a committed BENCH_resilience.json baseline: {e}"
        ))
    })?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut failures = Vec::new();
    for (name, report) in scenarios {
        let fresh = serde_json::to_value(*report);
        match baseline
            .get_field("scenarios")
            .and_then(|s| s.get_field(name))
        {
            Some(base) => diff_value(name, base, &fresh, &mut failures),
            None => failures.push(format!("{name}: missing from committed baseline")),
        }
    }
    if failures.is_empty() {
        println!(
            "bench_resilience check passed ({} scenarios byte-equivalent)",
            scenarios.len()
        );
        return Ok(());
    }
    for f in &failures {
        eprintln!("MISMATCH  {f}");
    }
    eprintln!(
        "\nthe chaos metrics diverged from the committed BENCH_resilience.json \
         baseline; the resilience machinery changed behaviour (these numbers \
         are simulated — host speed cannot move them). If the change is \
         intended, regenerate with `cargo run --release -p jetsim-bench \
         --bin bench_resilience`."
    );
    std::process::exit(1);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checking = std::env::args().any(|a| a == "--check");
    let start = Instant::now();
    let oom = oom_storm()?;
    let dvfs = dvfs_storm()?;
    let wall_s = start.elapsed().as_secs_f64();

    if checking {
        check(&[("oom_storm", &oom), ("dvfs_storm", &dvfs)])?;
        return Ok(());
    }

    eprintln!("oom_storm\n{oom}");
    eprintln!("dvfs_storm\n{dvfs}");
    let json = serde_json::json!({
        "bench": "resilience",
        "note": "all metrics are simulated and bit-deterministic per fault seed; --check compares them (near-)exactly — wall_s is context, never gated",
        "fault_seed": FAULT_SEED,
        "wall_s": wall_s,
        "scenarios": {
            "oom_storm": oom,
            "dvfs_storm": dvfs,
        },
    });
    let text = serde_json::to_string_pretty(&json).expect("serializable");
    std::fs::write("BENCH_resilience.json", &text)?;
    println!("{text}");
    println!("\nwritten to BENCH_resilience.json");
    Ok(())
}
