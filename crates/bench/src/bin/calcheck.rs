//! Quick calibration sanity check (development tool).
use jetsim_device::presets;
use jetsim_dnn::{zoo, Precision};
use jetsim_trt::EngineBuilder;

fn main() {
    for device in [presets::orin_nano(), presets::jetson_nano()] {
        println!("== {} ==", device.name);
        for model in zoo::all() {
            for p in Precision::ALL {
                let e = EngineBuilder::new(&device)
                    .precision(p)
                    .build(&model)
                    .unwrap();
                let top = device.gpu.freq.top();
                let tput = e.ideal_throughput(&device.gpu, top);
                let e16 = EngineBuilder::new(&device)
                    .precision(p)
                    .batch(16)
                    .build(&model)
                    .unwrap();
                let t16 = e16.ideal_throughput(&device.gpu, top);
                let mem = device
                    .memory
                    .gpu_percent(e.gpu_memory_bytes(device.memory.cuda_context_bytes));
                println!("{:14} {:4}  b1 {:8.1} img/s  b16 {:8.1} img/s  mem {:5.2}%  kernels {}  frac {:.2}",
                    model.name(), p.to_string(), tput, t16, mem, e.kernel_count(),
                    e.requested_precision_flop_fraction());
            }
        }
    }
}
