//! Regenerates the paper's fig07_concurrent_nano on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::fig07_concurrent_nano();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
