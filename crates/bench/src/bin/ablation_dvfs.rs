//! Ablation: see `jetsim_bench::ablations::ablation_dvfs`.
fn main() {
    let fig = jetsim_bench::ablations::ablation_dvfs();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
