//! Regenerates the paper's table1 on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::table1();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
