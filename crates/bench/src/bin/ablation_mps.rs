//! Ablation: see `jetsim_bench::ablations::ablation_mps`.
fn main() {
    let fig = jetsim_bench::ablations::ablation_mps();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
