//! Checks the paper's boxed observations against the simulated platform.
use std::process::ExitCode;

fn main() -> ExitCode {
    let (fig, passed, total) = jetsim_bench::figures::observation_checks();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
    println!("\n{passed}/{total} observations hold");
    if passed == total {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
