//! Replays a run's jetson-stats samples as a jtop-style table, plus the
//! Nsight hot-kernel ranking — the two screens the paper's methodology
//! lives in.
use jetsim::prelude::*;
use jetsim_profile::NsightReport;

fn main() {
    let platform = Platform::orin_nano();
    let config = SimConfig::builder(platform.device().clone())
        .add_model(&zoo::resnet50(), Precision::Int8, 4)
        .expect("engine builds")
        .add_model(&zoo::yolov8n(), Precision::Int8, 1)
        .expect("engine builds")
        .warmup(SimDuration::from_millis(400))
        .measure(SimDuration::from_secs(3))
        .sample_period(SimDuration::from_millis(250))
        .build()
        .expect("fits");
    let trace = Simulation::new(config).expect("valid").run();

    println!(
        "jtop replay — {} ({} processes)\n",
        trace.device_name,
        trace.processes.len()
    );
    println!("|   t(s) | GPU % | freq MHz | power W | CPU cores busy | mem % |");
    println!("|---|---|---|---|---|---|");
    for s in &trace.power_samples {
        println!(
            "| {:6.2} | {:5.1} | {:8} | {:7.2} | {:14.2} | {:5.1} |",
            s.time.as_secs_f64(),
            s.gpu_utilization * 100.0,
            s.gpu_freq_mhz,
            s.watts,
            s.cpu_busy_cores,
            trace.gpu_memory_percent,
        );
    }

    println!("\nhot kernels (by cumulative GPU time):");
    println!("| pid | kernel | runs | total ms | mean us | share |");
    println!("|---|---|---|---|---|---|");
    for k in NsightReport::hot_kernels(&trace, 10) {
        println!(
            "| p{} | {} | {} | {:8.2} | {:7.1} | {:4.1}% |",
            k.pid,
            k.name,
            k.count,
            k.total_us / 1000.0,
            k.mean_us,
            k.share * 100.0
        );
    }
}
