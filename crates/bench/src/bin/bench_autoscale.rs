//! Emits `BENCH_autoscale.json`: what the serverless autoscaling layer
//! buys (and costs) under bursty traffic — goodput and tail latency vs
//! static provisioning, replica-seconds actually held up, cold/warm
//! start counts and the cold-start tax — plus the capacity search with
//! and without the autoscaler.
//!
//! ```sh
//! cargo run --release -p jetsim-bench --bin bench_autoscale            # emit
//! cargo run --release -p jetsim-bench --bin bench_autoscale -- --check # gate
//! ```
//!
//! Like `bench_resilience`, every gated number is *simulated*: the DES
//! is bit-deterministic per seed and host-independent, so `--check`
//! compares the committed baseline (near-)exactly — drift means the
//! autoscaling machinery changed behaviour, not that the host got
//! slower. The windows are fixed (no `JETSIM_FAST` shrink) for the same
//! reason; wall-clock time is recorded for context and never gated.

use std::time::Instant;

use jetsim::platform::Platform;
use jetsim::prelude::*;
use jetsim_des::ArrivalProcess;
use jetsim_serve::{
    AutoscaleSpec, FaultPlan, OomPolicy, RecoverySpec, ResiliencePolicies, ServeSpec, ServeTenant,
};

/// Absolute slack for float comparisons in `--check`: wide enough to
/// absorb the shortest-roundtrip JSON formatting, far below any real
/// behaviour change.
const FLOAT_TOLERANCE: f64 = 1e-9;

const WARMUP_MS: u64 = 300;
const MEASURE_MS: u64 = 3_000;

/// The provisioning policies under comparison. `None` = static at
/// `replicas`; `Some(floor)` autoscales between `floor` and `replicas`.
const POLICIES: [(&str, Option<u32>, u32); 4] = [
    ("static_min", None, 1),
    ("static_max", None, 3),
    ("autoscale", Some(1), 3),
    ("scale_to_zero", Some(0), 3),
];

/// One mobilenet_v2 fp16 b1 tenant (launch-bound: replicas genuinely
/// add capacity, ~210 qps each up to 3) under calm/burst MMPP traffic.
fn tenant(autoscale: Option<u32>, replicas: u32) -> ServeTenant {
    let mut tenant = ServeTenant::new(
        Tenant::new(zoo::mobilenet_v2(), Precision::Fp16, 1).count(replicas),
        ArrivalProcess::mmpp(
            50.0,
            700.0,
            SimDuration::from_millis(350),
            SimDuration::from_millis(200),
        ),
    )
    .queue_cap(512);
    if let Some(floor) = autoscale {
        tenant = tenant.autoscale(
            AutoscaleSpec::new(floor)
                .target_queue_per_replica(2.0)
                .keep_alive(SimDuration::from_millis(150))
                .evaluate_every(SimDuration::from_millis(10)),
        );
    }
    tenant
}

fn base_spec(autoscale: Option<u32>, replicas: u32, faults: bool) -> ServeSpec {
    let warmup = SimDuration::from_millis(WARMUP_MS);
    let measure = SimDuration::from_millis(MEASURE_MS);
    let mut spec = ServeSpec::new(Platform::orin_nano())
        .warmup(warmup)
        .duration(measure)
        .slo(SimDuration::from_millis(50))
        .tenant(tenant(autoscale, replicas));
    if faults {
        // Randomly seeded spikes (128-768 MB) never threaten an 8 GB
        // board hosting mobilenet engines, so the storm is explicit: a
        // 7 GiB squeeze mid-burst that forces the OOM killer while the
        // autoscaler is holding extra replicas up.
        let spike_at = SimTime::from_nanos((warmup + measure.mul_f64(0.3)).as_nanos());
        spec = spec
            .resilience(ResiliencePolicies::none().recovery(RecoverySpec::auto(2)))
            .faults(
                FaultPlan::new()
                    .memory_spike(spike_at, measure.mul_f64(0.15), 7 << 30)
                    .oom_policy(OomPolicy::KillLargest),
            );
    }
    spec
}

/// One policy cell as the pinned metric map.
fn cell(autoscale: Option<u32>, replicas: u32, faults: bool) -> serde_json::Value {
    let report = base_spec(autoscale, replicas, faults)
        .run()
        .expect("cell builds and fits");
    let g = &report.groups[0];
    let replica_seconds = if autoscale.is_some() {
        g.replica_seconds
    } else {
        replicas as f64 * MEASURE_MS as f64 / 1e3
    };
    serde_json::json!({
        "goodput_qps": g.goodput_qps,
        "p99_ms": g.p99_ms,
        "slo_attainment": g.slo_attainment,
        "replica_seconds": replica_seconds,
        "cold_starts": g.cold_starts as u64,
        "warm_starts": g.warm_starts as u64,
        "reaps": g.reaps as u64,
        "scale_to_zero_parks": g.scale_to_zero_parks as u64,
        "cold_start_tax_ms": g.cold_start_tax_ms,
    })
}

fn scenario(faults: bool) -> serde_json::Value {
    let mut entries = Vec::new();
    for (name, autoscale, replicas) in POLICIES {
        entries.push((name.to_string(), cell(autoscale, replicas, faults)));
    }
    let v = serde_json::Value::Map(entries);
    if !faults {
        // The headline claims this bench exists to pin: autoscaling
        // beats the static floor by >= 1.5x goodput while holding
        // fewer replica-seconds than the static ceiling.
        let f = |policy: &str, field: &str| -> f64 {
            match v.get_field(policy).and_then(|p| p.get_field(field)) {
                Some(serde_json::Value::F64(x)) => *x,
                Some(serde_json::Value::U64(x)) => *x as f64,
                _ => panic!("missing {policy}.{field}"),
            }
        };
        assert!(
            f("autoscale", "goodput_qps") >= 1.5 * f("static_min", "goodput_qps"),
            "autoscaling must beat the static floor by >= 1.5x goodput"
        );
        assert!(
            f("autoscale", "replica_seconds") < f("static_max", "replica_seconds"),
            "autoscaling must hold fewer replica-seconds than the static ceiling"
        );
        assert!(
            f("scale_to_zero", "cold_start_tax_ms") > 0.0
                && f("scale_to_zero", "p99_ms") > f("static_max", "p99_ms"),
            "scale-to-zero pays a visible cold-start tax in the tail"
        );
    }
    v
}

fn capacity() -> serde_json::Value {
    let mut entries = Vec::new();
    for (name, autoscale, replicas) in [("static_min", None, 1u32), ("autoscale", Some(1), 3)] {
        let warmup = SimDuration::from_millis(WARMUP_MS);
        let measure = SimDuration::from_millis(MEASURE_MS);
        let spec = ServeSpec::new(Platform::orin_nano())
            .warmup(warmup)
            .duration(measure)
            .slo(SimDuration::from_millis(50))
            .tenant({
                let mut t = tenant(autoscale, replicas);
                t.arrivals = ArrivalProcess::poisson(150.0);
                t
            });
        let estimate = spec.find_max_qps(0.9, 4).expect("capacity search runs");
        entries.push((
            name.to_string(),
            serde_json::json!({
                "max_qps": estimate.max_qps,
                "probes": estimate.probes.len() as u64,
            }),
        ));
    }
    serde_json::Value::Map(entries)
}

/// Recursively compares two JSON values: exact for integers, bools and
/// strings, `FLOAT_TOLERANCE` slack for floats. Records one line per
/// mismatch.
fn diff_value(
    path: &str,
    base: &serde_json::Value,
    fresh: &serde_json::Value,
    out: &mut Vec<String>,
) {
    use serde_json::Value;
    let as_f64 = |v: &Value| -> Option<f64> {
        match v {
            Value::F64(f) => Some(*f),
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    };
    match (base, fresh) {
        (Value::Map(b), Value::Map(f)) => {
            for (key, bv) in b {
                match f.iter().find(|(k, _)| k == key) {
                    Some((_, fv)) => diff_value(&format!("{path}.{key}"), bv, fv, out),
                    None => out.push(format!("{path}.{key}: missing from fresh run")),
                }
            }
            for (key, _) in f {
                if !b.iter().any(|(k, _)| k == key) {
                    out.push(format!("{path}.{key}: not in baseline (regenerate?)"));
                }
            }
        }
        (Value::Seq(b), Value::Seq(f)) => {
            if b.len() != f.len() {
                out.push(format!("{path}: length {} vs {}", b.len(), f.len()));
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                diff_value(&format!("{path}[{i}]"), bv, fv, out);
            }
        }
        _ => {
            if let (Some(b), Some(f)) = (as_f64(base), as_f64(fresh)) {
                if (b - f).abs() > FLOAT_TOLERANCE {
                    out.push(format!("{path}: baseline {b} vs fresh {f}"));
                }
            } else if base != fresh {
                out.push(format!("{path}: baseline {base:?} vs fresh {fresh:?}"));
            }
        }
    }
}

fn check(scenarios: &[(&str, &serde_json::Value)]) -> std::io::Result<()> {
    let text = std::fs::read_to_string("BENCH_autoscale.json").map_err(|e| {
        std::io::Error::other(format!(
            "--check needs a committed BENCH_autoscale.json baseline: {e}"
        ))
    })?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut failures = Vec::new();
    for (name, fresh) in scenarios {
        match baseline
            .get_field("scenarios")
            .and_then(|s| s.get_field(name))
        {
            Some(base) => diff_value(name, base, fresh, &mut failures),
            None => failures.push(format!("{name}: missing from committed baseline")),
        }
    }
    if failures.is_empty() {
        println!(
            "bench_autoscale check passed ({} scenarios byte-equivalent)",
            scenarios.len()
        );
        return Ok(());
    }
    for f in &failures {
        eprintln!("MISMATCH  {f}");
    }
    eprintln!(
        "\nthe autoscaling metrics diverged from the committed BENCH_autoscale.json \
         baseline; the autoscaler or the serving DES changed behaviour (these \
         numbers are simulated — host speed cannot move them). If the change is \
         intended, regenerate with `cargo run --release -p jetsim-bench \
         --bin bench_autoscale`."
    );
    std::process::exit(1);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checking = std::env::args().any(|a| a == "--check");
    let start = Instant::now();
    let burst = scenario(false);
    let storm = scenario(true);
    let cap = capacity();
    let wall_s = start.elapsed().as_secs_f64();

    if checking {
        check(&[
            ("mmpp_burst", &burst),
            ("oom_storm", &storm),
            ("capacity", &cap),
        ])?;
        return Ok(());
    }

    let json = serde_json::json!({
        "bench": "autoscale",
        "note": "all metrics are simulated and bit-deterministic per seed; --check compares them (near-)exactly — wall_s is context, never gated",
        "warmup_ms": WARMUP_MS,
        "measure_ms": MEASURE_MS,
        "wall_s": wall_s,
        "scenarios": {
            "mmpp_burst": burst,
            "oom_storm": storm,
            "capacity": cap,
        },
    });
    let text = serde_json::to_string_pretty(&json).expect("serializable");
    std::fs::write("BENCH_autoscale.json", &text)?;
    println!("{text}");
    println!("\nwritten to BENCH_autoscale.json");
    Ok(())
}
