//! Quantitative validation: re-measures every number the paper reports
//! and prints paper vs simulator with a PASS/FAIL band check — the
//! executable version of EXPERIMENTS.md's ledger.
//!
//! Exits non-zero if any anchor leaves its band.

use std::process::ExitCode;

use jetsim::prelude::*;
use jetsim::report::Table;

struct Anchor {
    id: &'static str,
    description: &'static str,
    paper: f64,
    lo: f64,
    hi: f64,
    measured: f64,
}

fn phase1(
    platform: &Platform,
    model: &ModelGraph,
    precision: Precision,
    batch: u32,
    procs: u32,
) -> JetsonStatsReport {
    DualPhaseProfiler::new(platform)
        .deployment(&Deployment::homogeneous(model, precision, batch, procs))
        .expect("engine builds")
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(1500))
        .run_phase1()
        .expect("fits in memory")
        .0
}

fn main() -> ExitCode {
    let orin = Platform::orin_nano();
    let nano = Platform::jetson_nano();
    let resnet = zoo::resnet50();
    let fcn = zoo::fcn_resnet50();
    let yolo = zoo::yolov8n();

    let t = |platform: &Platform, model: &ModelGraph, p, b, n| {
        phase1(platform, model, p, b, n).throughput
    };

    let mut anchors = vec![Anchor {
        id: "fcn-fp16-orin",
        description: "FCN_ResNet50 fp16 throughput, Orin (img/s)",
        paper: 18.57,
        lo: 13.0,
        hi: 25.0,
        measured: t(&orin, &fcn, Precision::Fp16, 1, 1),
    }];
    anchors.push(Anchor {
        id: "fcn-tf32-orin",
        description: "FCN_ResNet50 tf32 throughput, Orin (img/s)",
        paper: 6.86,
        lo: 4.5,
        hi: 9.5,
        measured: t(&orin, &fcn, Precision::Tf32, 1, 1),
    });
    anchors.push(Anchor {
        id: "resnet-int8-speedup",
        description: "ResNet50 int8/fp32 speedup, Orin (×)",
        paper: 9.75,
        lo: 5.0,
        hi: 13.0,
        measured: t(&orin, &resnet, Precision::Int8, 1, 1)
            / t(&orin, &resnet, Precision::Fp32, 1, 1),
    });
    anchors.push(Anchor {
        id: "fcn-int8-speedup",
        description: "FCN int8/fp32 speedup, Orin (×)",
        paper: 12.0,
        lo: 7.0,
        hi: 16.0,
        measured: t(&orin, &fcn, Precision::Int8, 1, 1) / t(&orin, &fcn, Precision::Fp32, 1, 1),
    });
    anchors.push(Anchor {
        id: "yolo-int8-speedup",
        description: "YoloV8n int8/fp32 speedup, Orin (×)",
        paper: 3.0,
        lo: 2.0,
        hi: 7.0,
        measured: t(&orin, &yolo, Precision::Int8, 1, 1) / t(&orin, &yolo, Precision::Fp32, 1, 1),
    });
    anchors.push(Anchor {
        id: "yolo-tp-b1",
        description: "YoloV8n int8 T/P at b1 p1, Orin (img/s)",
        paper: 210.0,
        lo: 150.0,
        hi: 320.0,
        measured: t(&orin, &yolo, Precision::Int8, 1, 1),
    });
    anchors.push(Anchor {
        id: "yolo-tp-p8",
        description: "YoloV8n int8 T/P at b1 p8, Orin (img/s)",
        paper: 10.0,
        lo: 5.0,
        hi: 30.0,
        measured: phase1(&orin, &yolo, Precision::Int8, 1, 8).throughput_per_process,
    });
    anchors.push(Anchor {
        id: "yolo-nano-fp16",
        description: "YoloV8n fp16 throughput, Nano (img/s)",
        paper: 20.0,
        lo: 15.0,
        hi: 30.0,
        measured: t(&nano, &yolo, Precision::Fp16, 1, 1),
    });
    anchors.push(Anchor {
        id: "nano-fp16-j-per-img",
        description: "ResNet50 fp16 energy/image, Nano (J)",
        paper: 0.125,
        lo: 0.09,
        hi: 0.18,
        measured: phase1(&nano, &resnet, Precision::Fp16, 1, 1).power_per_image,
    });
    anchors.push(Anchor {
        id: "fcn-fp16-power",
        description: "FCN fp16 power, Orin (W)",
        paper: 5.83,
        lo: 5.2,
        hi: 6.4,
        measured: phase1(&orin, &fcn, Precision::Fp16, 1, 1).mean_power_w,
    });
    anchors.push(Anchor {
        id: "fcn-tf32-power",
        description: "FCN tf32 power, Orin (W)",
        paper: 6.39,
        lo: 5.8,
        hi: 7.0,
        measured: phase1(&orin, &fcn, Precision::Tf32, 1, 1).mean_power_w,
    });

    let mut table = Table::new(["anchor", "paper", "measured", "band", "verdict"]);
    let mut failures = 0;
    for a in &anchors {
        let pass = (a.lo..=a.hi).contains(&a.measured);
        if !pass {
            failures += 1;
        }
        table.row([
            format!("{} — {}", a.id, a.description),
            format!("{:.2}", a.paper),
            format!("{:.2}", a.measured),
            format!("[{:.1}, {:.1}]", a.lo, a.hi),
            if pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "{}/{} anchors inside their bands",
        anchors.len() - failures,
        anchors.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
