//! Runs every table/figure harness and writes results/ + a summary.
use std::fmt::Write as _;

fn main() -> std::io::Result<()> {
    let mut summary = String::from("# jetsim — regenerated tables and figures\n\n");
    for fig in jetsim_bench::figures::all() {
        fig.print();
        fig.save_csv()?;
        writeln!(summary, "## {} — {}\n", fig.id, fig.title).unwrap();
        for (name, table) in &fig.tables {
            writeln!(summary, "### {name}\n\n{table}").unwrap();
        }
    }
    let (obs, passed, total) = jetsim_bench::figures::observation_checks();
    obs.print();
    obs.save_csv()?;
    writeln!(summary, "## observations — {passed}/{total} hold\n").unwrap();
    for (_, table) in &obs.tables {
        writeln!(summary, "{table}").unwrap();
    }
    std::fs::create_dir_all(jetsim_bench::results_dir())?;
    std::fs::write(jetsim_bench::results_dir().join("summary.md"), summary)?;
    println!(
        "\nresults written to {}",
        jetsim_bench::results_dir().display()
    );
    Ok(())
}
