//! Runs every table/figure harness (in parallel, sharing the
//! process-wide engine cache) and writes results/ + a summary.
use std::fmt::Write as _;

fn main() -> std::io::Result<()> {
    let wall = std::time::Instant::now();
    let mut summary = String::from("# jetsim — regenerated tables and figures\n\n");
    for fig in jetsim_bench::figures::all_parallel() {
        fig.print();
        fig.save_csv()?;
        writeln!(summary, "## {} — {}\n", fig.id, fig.title).unwrap();
        for (name, table) in &fig.tables {
            writeln!(summary, "### {name}\n\n{table}").unwrap();
        }
    }
    let (obs, passed, total) = jetsim_bench::figures::observation_checks();
    obs.print();
    obs.save_csv()?;
    writeln!(summary, "## observations — {passed}/{total} hold\n").unwrap();
    for (_, table) in &obs.tables {
        writeln!(summary, "{table}").unwrap();
    }
    std::fs::create_dir_all(jetsim_bench::results_dir())?;
    std::fs::write(jetsim_bench::results_dir().join("summary.md"), summary)?;
    let cache = jetsim_trt::EngineCache::global().stats();
    println!(
        "\nresults written to {} in {:.1}s (engine cache: {} built, {} hits, {:.0}% hit rate)",
        jetsim_bench::results_dir().display(),
        wall.elapsed().as_secs_f64(),
        cache.misses,
        cache.hits,
        cache.hit_rate() * 100.0,
    );
    Ok(())
}
