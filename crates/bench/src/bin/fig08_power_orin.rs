//! Regenerates the paper's fig08_power_orin on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::fig08_power_orin();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
