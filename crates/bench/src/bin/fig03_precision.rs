//! Regenerates the paper's fig03_precision on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::fig03_precision();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
