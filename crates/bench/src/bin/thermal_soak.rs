//! Thermal soak study: a ten-minute FCN_ResNet50 fp32 deployment in a
//! hot enclosure (60 °C ambient).
//!
//! The paper's short sweeps only ever hit the *power* limit; sustained
//! deployments also hit the *thermal* one. With the module's ~3-minute
//! thermal time constant, the junction creeps toward the 95 °C ceiling
//! and the governor starts throttling for temperature even though power
//! is within budget.
use jetsim::prelude::*;

fn main() {
    let mut device = Platform::orin_nano().device().clone();
    device.thermal.ambient_c = 60.0;
    let config = SimConfig::builder(device)
        .add_model(&zoo::fcn_resnet50(), Precision::Fp32, 4)
        .expect("engine builds")
        .warmup(SimDuration::from_secs(2))
        .measure(SimDuration::from_secs(600))
        .sample_period(SimDuration::from_secs(20))
        .record_kernel_events(false)
        .build()
        .expect("fits");
    let trace = Simulation::new(config).expect("valid").run();

    println!("thermal soak — FCN_ResNet50 fp32, 60 °C enclosure, 10 min\n");
    println!("|  t (s) | temp °C | power W | freq MHz | GPU % |");
    println!("|---|---|---|---|---|");
    for s in trace.power_samples.iter().step_by(2) {
        println!(
            "| {:6.0} | {:7.1} | {:7.2} | {:8} | {:5.1} |",
            s.time.as_secs_f64(),
            s.temp_c,
            s.watts,
            s.gpu_freq_mhz,
            s.gpu_utilization * 100.0
        );
    }
    let peak = trace
        .power_samples
        .iter()
        .map(|s| s.temp_c)
        .fold(0.0, f64::max);
    let throttled = trace.power_samples.iter().any(|s| s.gpu_freq_mhz < 510);
    println!(
        "\npeak junction {peak:.1} °C; deep thermal throttle engaged: {throttled}; \
         sustained throughput {:.1} img/s",
        trace.total_throughput()
    );
}
