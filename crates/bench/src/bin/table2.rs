//! Regenerates the paper's table2 on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::table2();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
