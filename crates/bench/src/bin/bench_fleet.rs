//! Emits `BENCH_fleet.json`: fleet-scale simulation throughput — how
//! many full device sims per second the fleet layer sustains at 1, 8,
//! 64 and 256 sites — plus the deterministic per-cell traffic accounting
//! the `--check` gate pins.
//!
//! ```sh
//! cargo run --release -p jetsim-bench --bin bench_fleet            # emit
//! cargo run --release -p jetsim-bench --bin bench_fleet -- --check # gate
//! ```
//!
//! Two kinds of numbers live here, gated differently:
//!
//! * **simulated** (requests, served, SLO attainment, sim events) —
//!   bit-deterministic per seed and host-independent; `--check`
//!   compares them (near-)exactly. Windows are fixed (no `JETSIM_FAST`
//!   shrink) so the baseline means the same thing everywhere.
//! * **measured** (wall seconds, sites/s, aggregate events/s) — host
//!   dependent; `--check` allows a 30% regression below baseline.
//!
//! The fleet's scaling claim — parallel site sims buy ≥ 4x aggregate
//! events/s at 8 sites vs 1 — is asserted whenever the host has 8+
//! cores; per-site offered load is constant, so the 8-site cell does
//! 8x the work.

use std::time::Instant;

use jetsim_fleet::{FleetSpec, NetworkModel, RouterPolicy};
use jetsim_serve::ScenarioSpec;

/// Absolute slack for simulated-value float comparisons in `--check`.
const FLOAT_TOLERANCE: f64 = 1e-9;
/// Fraction of baseline throughput a cell may lose before `--check`
/// fails.
const REGRESSION_TOLERANCE: f64 = 0.30;
/// Required aggregate events/s speedup at 8 sites vs 1 on 8+ cores.
const SPEEDUP_FLOOR: f64 = 4.0;

const SITE_COUNTS: [u32; 4] = [1, 8, 64, 256];
/// Offered load per edge site, requests/s — the aggregate stream rate
/// scales with the fleet so every site does the same work.
const PER_SITE_QPS: f64 = 250.0;
const WARMUP_MS: u64 = 150;
const MEASURE_MS: u64 = 1_000;

fn scenario(sites: u32) -> ScenarioSpec {
    format!(
        "seed = 77\n\
         duration = \"{MEASURE_MS}ms\"\n\
         warmup = \"{WARMUP_MS}ms\"\n\
         slo = \"50ms\"\n\
         [[tenants]]\n\
         spec = \"resnet50:int8:1:1\"\n\
         arrival = \"poisson:{}\"\n",
        PER_SITE_QPS * f64::from(sites)
    )
    .parse()
    .expect("bench scenario parses")
}

struct Cell {
    sites: u32,
    requests: usize,
    served: usize,
    slo_attainment: f64,
    sim_events: u64,
    wall_s: f64,
}

impl Cell {
    fn events_per_s(&self) -> f64 {
        self.sim_events as f64 / self.wall_s.max(1e-9)
    }

    fn sites_per_s(&self) -> f64 {
        f64::from(self.sites) / self.wall_s.max(1e-9)
    }
}

/// Times one fleet run end to end: route, build (sequential), simulate
/// (parallel), aggregate. Best of two — the first run warms the engine
/// cache and allocator.
fn time_cell(sites: u32) -> Cell {
    let spec = FleetSpec::new(scenario(sites))
        .sites(sites)
        .router(RouterPolicy::RoundRobin)
        .network(NetworkModel::default());
    let mut best: Option<Cell> = None;
    for _ in 0..2 {
        let start = Instant::now();
        let report = spec.run().expect("bench fleet runs");
        let wall_s = start.elapsed().as_secs_f64();
        let cell = Cell {
            sites,
            requests: report.requests,
            served: report.served,
            slo_attainment: report.slo_attainment,
            sim_events: report.sim_events_total,
            wall_s,
        };
        if best
            .as_ref()
            .is_none_or(|b| cell.events_per_s() > b.events_per_s())
        {
            best = Some(cell);
        }
    }
    best.expect("two runs")
}

fn cell_json(c: &Cell) -> serde_json::Value {
    serde_json::json!({
        "sites": u64::from(c.sites),
        "requests": c.requests as u64,
        "served": c.served as u64,
        "slo_attainment": c.slo_attainment,
        "sim_events": c.sim_events,
        "wall_s": c.wall_s,
        "sites_per_s": c.sites_per_s(),
        "events_per_s": c.events_per_s(),
    })
}

/// Simulated fields `--check` compares (near-)exactly; everything else
/// in the cell is measured and gets regression tolerance instead.
const SIMULATED_FIELDS: [&str; 4] = ["requests", "served", "slo_attainment", "sim_events"];

fn get_f64(v: &serde_json::Value, field: &str) -> Option<f64> {
    match v.get_field(field) {
        Some(serde_json::Value::F64(x)) => Some(*x),
        Some(serde_json::Value::U64(x)) => Some(*x as f64),
        Some(serde_json::Value::I64(x)) => Some(*x as f64),
        _ => None,
    }
}

fn assert_speedup(cells: &[Cell]) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 8 {
        println!("speedup gate skipped: {cores} core(s) < 8");
        return;
    }
    let rate = |sites: u32| {
        cells
            .iter()
            .find(|c| c.sites == sites)
            .map(Cell::events_per_s)
            .expect("cell present")
    };
    let speedup = rate(8) / rate(1);
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "parallel fleet must reach >= {SPEEDUP_FLOOR}x aggregate events/s at 8 sites vs 1 \
         on {cores} cores; got {speedup:.2}x"
    );
    println!("speedup gate passed: {speedup:.2}x at 8 sites on {cores} cores");
}

fn check(cells: &[Cell]) -> std::io::Result<()> {
    let text = std::fs::read_to_string("BENCH_fleet.json").map_err(|e| {
        std::io::Error::other(format!(
            "--check needs a committed BENCH_fleet.json baseline: {e}"
        ))
    })?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut failures = Vec::new();
    for cell in cells {
        let name = format!("sites_{}", cell.sites);
        let Some(base) = baseline.get_field("cells").and_then(|c| c.get_field(&name)) else {
            failures.push(format!("{name}: missing from committed baseline"));
            continue;
        };
        let fresh = cell_json(cell);
        for field in SIMULATED_FIELDS {
            match (get_f64(base, field), get_f64(&fresh, field)) {
                (Some(b), Some(f)) if (b - f).abs() <= FLOAT_TOLERANCE => {}
                (b, f) => failures.push(format!(
                    "{name}.{field}: baseline {b:?} vs fresh {f:?} (simulated value \
                     diverged — the fleet layer changed behaviour)"
                )),
            }
        }
        if let Some(base_rate) = get_f64(base, "events_per_s") {
            let fresh_rate = cell.events_per_s();
            if fresh_rate < base_rate * (1.0 - REGRESSION_TOLERANCE) {
                failures.push(format!(
                    "{name}.events_per_s: {fresh_rate:.0} is more than {:.0}% below \
                     baseline {base_rate:.0}",
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
        }
    }
    if failures.is_empty() {
        println!("bench_fleet check passed ({} cells)", cells.len());
        return Ok(());
    }
    for f in &failures {
        eprintln!("MISMATCH  {f}");
    }
    eprintln!(
        "\nfleet metrics diverged from the committed BENCH_fleet.json baseline. \
         Simulated fields are bit-deterministic — a mismatch means the fleet \
         routing/network/aggregation changed behaviour. If intended, regenerate \
         with `cargo run --release -p jetsim-bench --bin bench_fleet`."
    );
    std::process::exit(1);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checking = std::env::args().any(|a| a == "--check");
    let start = Instant::now();
    let cells: Vec<Cell> = SITE_COUNTS.iter().map(|&s| time_cell(s)).collect();
    let wall_total_s = start.elapsed().as_secs_f64();
    assert_speedup(&cells);

    if checking {
        return Ok(check(&cells)?);
    }

    let mut cell_map = Vec::new();
    for c in &cells {
        cell_map.push((format!("sites_{}", c.sites), cell_json(c)));
    }
    let json = serde_json::json!({
        "bench": "fleet",
        "note": "requests/served/slo_attainment/sim_events are simulated and bit-deterministic per seed (windows fixed, no JETSIM_FAST shrink); wall_s/sites_per_s/events_per_s are host-dependent and gated at 30% regression",
        "per_site_qps": PER_SITE_QPS,
        "warmup_ms": WARMUP_MS,
        "measure_ms": MEASURE_MS,
        "router": "round_robin",
        "wall_total_s": wall_total_s,
        "cells": serde_json::Value::Map(cell_map),
    });
    let text = serde_json::to_string_pretty(&json).expect("serializable");
    std::fs::write("BENCH_fleet.json", &text)?;
    println!("{text}");
    Ok(())
}
