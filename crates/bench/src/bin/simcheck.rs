//! Simulation-level calibration check (development tool).
use jetsim_des::SimDuration;
use jetsim_device::presets;
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::{SimConfig, Simulation};

fn run(dev: jetsim_device::DeviceSpec, m: &jetsim_dnn::ModelGraph, p: Precision, b: u32, n: u32) {
    let cfg = SimConfig::builder(dev)
        .add_model_processes(m, p, b, n)
        .unwrap()
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(1500))
        .build();
    match cfg {
        Ok(cfg) => {
            let t = Simulation::new(cfg).unwrap().run();
            println!("{:13} {:4} b{:<2} p{:<2}  T/P {:7.1}  total {:7.1}  mem {:5.1}%  P {:4.2}W  util {:4.2}  f {}MHz  EC {:.2}ms blk {:.2}ms lau {:.2}ms syn {:.2}ms",
                m.name(), p.to_string(), b, n,
                t.throughput_per_process(), t.total_throughput(), t.gpu_memory_percent,
                t.mean_power(), t.gpu_utilization(), t.final_freq_mhz,
                t.mean_ec_time().as_millis_f64(),
                t.processes[0].mean_blocking_time.as_millis_f64(),
                t.processes[0].mean_launch_time.as_millis_f64(),
                t.processes[0].mean_sync_time.as_millis_f64());
        }
        Err(e) => println!(
            "{:13} {:4} b{:<2} p{:<2}  {e}",
            m.name(),
            p.to_string(),
            b,
            n
        ),
    }
}

fn main() {
    let orin = presets::orin_nano;
    let nano = presets::jetson_nano;
    println!("-- Orin precision sweep (b1 p1) --");
    for m in zoo::all() {
        for p in Precision::ALL {
            run(orin(), &m, p, 1, 1);
        }
    }
    println!("-- Orin yolo int8 concurrency --");
    for b in [1u32, 16] {
        for n in [1u32, 2, 4, 8] {
            run(orin(), &zoo::yolov8n(), Precision::Int8, b, n);
        }
    }
    println!("-- Orin resnet int8 batch sweep p1 --");
    for b in [1u32, 2, 4, 8, 16] {
        run(orin(), &zoo::resnet50(), Precision::Int8, b, 1);
    }
    println!("-- Nano fp16 sweeps --");
    for m in zoo::all() {
        run(nano(), &m, Precision::Fp16, 1, 1);
    }
    for b in [1u32, 8] {
        run(nano(), &zoo::yolov8n(), Precision::Fp16, b, 1);
    }
    for n in [1u32, 2, 4] {
        run(nano(), &zoo::resnet50(), Precision::Fp16, 1, n);
    }
    println!("-- Nano precision (resnet, power/img) --");
    for p in Precision::ALL {
        run(nano(), &zoo::resnet50(), p, 1, 1);
    }
}
