//! Emits `BENCH_sched.json`: DES event throughput of every GPU
//! scheduling policy on one contended 8-process shape — the dispatch
//! hot path the `GpuSchedPolicy` layer sits on. The `rr` cell is the
//! canary: it runs the same decision logic the pre-policy engine
//! hard-coded, so a slowdown there means the trait seam itself (or the
//! `ReadySet` scan) regressed, not a fancier policy.
//!
//! ```sh
//! cargo run --release -p jetsim-bench --bin bench_sched            # emit
//! cargo run --release -p jetsim-bench --bin bench_sched -- --check # gate
//! ```
//!
//! `--check` re-measures and fails (exit 1) if any cell's events/s
//! drops more than 30% below the committed `BENCH_sched.json` baseline.
//! Numbers are host-dependent; regenerate on the machine that gates.
//! Set `JETSIM_FAST=1` for a quick smoke run with shrunken windows.

use std::time::Instant;

use jetsim::prelude::*;
use jetsim_sim::GpuPolicy;

/// Fraction of the baseline a cell may lose before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.30;

fn measure_window() -> SimDuration {
    if std::env::var_os("JETSIM_FAST").is_some() {
        SimDuration::from_millis(400)
    } else {
        SimDuration::from_secs(2)
    }
}

/// One measured cell: simulated events, wall seconds, events/s.
struct Cell {
    name: &'static str,
    sim_events: u64,
    wall_s: f64,
}

impl Cell {
    fn events_per_s(&self) -> f64 {
        self.sim_events as f64 / self.wall_s.max(1e-9)
    }
}

/// Times one run of `config`, best of three (the first run warms the
/// allocator and the engine cache).
fn time_cell(name: &'static str, mut build: impl FnMut() -> SimConfig) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..3 {
        let config = build();
        let start = Instant::now();
        let trace = Simulation::new(config).expect("fits").run();
        let wall_s = start.elapsed().as_secs_f64();
        let cell = Cell {
            name,
            sim_events: trace.sim_events,
            wall_s,
        };
        if best
            .as_ref()
            .is_none_or(|b| cell.events_per_s() > b.events_per_s())
        {
            best = Some(cell);
        }
    }
    best.expect("three runs")
}

/// Contended 8-process ResNet50 int8 cell under `policy` — the shape
/// where the per-dispatch pick runs hottest. The priority cell mixes
/// priorities (half the fleet at 5, half at 0) so the preemption path
/// actually fires; the mps cell splits SM shares the same way.
fn policy_cell(platform: &Platform, name: &'static str, policy: GpuPolicy) -> Cell {
    let engine = platform
        .build_engine(&zoo::resnet50(), Precision::Int8, 4)
        .expect("builds");
    time_cell(name, || {
        let mut builder = SimConfig::builder(platform.device().clone())
            .warmup(SimDuration::from_millis(100))
            .measure(measure_window())
            .record_kernel_events(false)
            .gpu_policy(policy);
        for i in 0..8u8 {
            builder = builder
                .add_engine(engine.clone())
                .process_priority(if i % 2 == 0 { 5 } else { 0 })
                .process_sm_share(if i % 2 == 0 { 2.0 } else { 1.0 });
        }
        builder.build().expect("valid")
    })
}

fn check(cells: &[Cell]) -> std::io::Result<()> {
    let text = std::fs::read_to_string("BENCH_sched.json").map_err(|e| {
        std::io::Error::other(format!(
            "--check needs a committed BENCH_sched.json baseline: {e}"
        ))
    })?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| std::io::Error::other(e.to_string()))?;
    let rate_of = |name: &str| -> Option<f64> {
        match baseline
            .get_field("cells")?
            .get_field(name)?
            .get_field("events_per_s")?
        {
            serde_json::Value::F64(f) => Some(*f),
            serde_json::Value::U64(u) => Some(*u as f64),
            serde_json::Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    };
    let mut failed = false;
    for cell in cells {
        let Some(base) = rate_of(cell.name) else {
            eprintln!("baseline missing cells.{}.events_per_s", cell.name);
            failed = true;
            continue;
        };
        let measured = cell.events_per_s();
        let floor = base * (1.0 - REGRESSION_TOLERANCE);
        let verdict = if measured < floor { "FAIL" } else { "ok" };
        println!(
            "{verdict:>4}  {:<16} {:>12.0} events/s (baseline {:>12.0}, floor {:>12.0})",
            cell.name, measured, base, floor
        );
        failed |= measured < floor;
    }
    if failed {
        eprintln!(
            "events/s regressed more than {:.0}% below the committed baseline",
            REGRESSION_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_sched check passed");
    Ok(())
}

fn main() -> std::io::Result<()> {
    let checking = std::env::args().any(|a| a == "--check");
    let platform = Platform::orin_nano();
    let cells = [
        policy_cell(&platform, "rr_8p", GpuPolicy::TimesliceRR),
        policy_cell(&platform, "fifo_8p", "fifo".parse().expect("known")),
        policy_cell(&platform, "priority_8p", "priority".parse().expect("known")),
        policy_cell(&platform, "mps_8p", "mps".parse().expect("known")),
    ];
    if checking {
        return check(&cells);
    }

    let total_events: u64 = cells.iter().map(|c| c.sim_events).sum();
    let total_wall: f64 = cells.iter().map(|c| c.wall_s).sum();
    let cell_json = |c: &Cell| {
        serde_json::json!({
            "sim_events": c.sim_events,
            "wall_s": c.wall_s,
            "events_per_s": c.events_per_s(),
        })
    };
    let json = serde_json::json!({
        "bench": "sched",
        "device": platform.name(),
        "note": "events/s are host-dependent; regenerate on the gating machine; best of 3 runs per cell",
        "cells": {
            "rr_8p": cell_json(&cells[0]),
            "fifo_8p": cell_json(&cells[1]),
            "priority_8p": cell_json(&cells[2]),
            "mps_8p": cell_json(&cells[3]),
        },
        "total": {
            "sim_events": total_events,
            "wall_s": total_wall,
            "events_per_s": total_events as f64 / total_wall.max(1e-9),
        },
    });
    let text = serde_json::to_string_pretty(&json).expect("serializable");
    std::fs::write("BENCH_sched.json", &text)?;
    println!("{text}");
    println!("\nwritten to BENCH_sched.json");
    Ok(())
}
