//! Emits `BENCH_serve.json`: tail latency and goodput of the online
//! serving path at a pinned offered load, plus a capacity search.
//!
//! ```sh
//! cargo run --release -p jetsim-bench --bin bench_serve
//! ```
//!
//! Numbers are host-dependent; the checked-in `BENCH_serve.json` is a
//! schema placeholder until regenerated on the target machine. Set
//! `JETSIM_FAST=1` for a quick smoke run with shrunken windows.

use std::time::Instant;

use jetsim::prelude::*;
use jetsim_des::ArrivalProcess;
use jetsim_serve::{ServeSpec, ServeTenant};

/// (warmup, duration, refine_iters) for the serving windows.
fn windows() -> (SimDuration, SimDuration, u32) {
    if std::env::var_os("JETSIM_FAST").is_some() {
        (SimDuration::from_millis(200), SimDuration::from_secs(1), 3)
    } else {
        (SimDuration::from_millis(500), SimDuration::from_secs(5), 6)
    }
}

fn spec(platform: &Platform, qps: f64) -> ServeSpec {
    let (warmup, duration, _) = windows();
    let tenant =
        ServeTenant::parse("resnet50:int8:1:2", ArrivalProcess::poisson(qps)).expect("valid spec");
    ServeSpec::new(platform.clone())
        .tenant(tenant)
        .warmup(warmup)
        .duration(duration)
        .slo(SimDuration::from_millis(50))
        .seed(7)
}

fn main() -> std::io::Result<()> {
    let platform = Platform::orin_nano();
    let (_, _, refine_iters) = windows();

    // Pinned-load run: the paper's "steady 200 req/s" operating point.
    let pinned_qps = 200.0;
    let start = Instant::now();
    let report = spec(&platform, pinned_qps).run().expect("serving run");
    let pinned_wall = start.elapsed().as_secs_f64();
    let group = &report.groups[0];

    // Capacity search on the same deployment.
    let start = Instant::now();
    let estimate = spec(&platform, pinned_qps)
        .find_max_qps(0.95, refine_iters)
        .expect("capacity search");
    let search_wall = start.elapsed().as_secs_f64();

    let json = serde_json::json!({
        "bench": "serve",
        "device": report.device,
        "tenant": group.label,
        "slo_ms": report.slo_ms,
        "pinned_load": {
            "offered_qps": pinned_qps,
            "served_qps": group.served_qps,
            "goodput_qps": group.goodput_qps,
            "slo_attainment": group.slo_attainment,
            "p50_ms": group.p50_ms,
            "p95_ms": group.p95_ms,
            "p99_ms": group.p99_ms,
            "wall_s": pinned_wall,
        },
        "capacity": {
            "target_attainment": estimate.target_attainment,
            "max_qps": estimate.max_qps,
            "probes": estimate.probes.len(),
            "wall_s": search_wall,
        },
    });
    let text = serde_json::to_string_pretty(&json).expect("serializable");
    std::fs::write("BENCH_serve.json", &text)?;
    println!("{text}");
    println!("\nwritten to BENCH_serve.json");
    Ok(())
}
