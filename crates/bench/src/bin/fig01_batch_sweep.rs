//! Regenerates the paper's fig01_batch_sweep on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::fig01_batch_sweep();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
