//! Regenerates the paper's headline_gap on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::headline_gap();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
