//! Emits `BENCH_sweep.json`: wall-clock, cells/sec and events/sec for
//! the paper's figure-6 concurrency grid, with the engine cache cold
//! and warm.
//!
//! ```sh
//! cargo run --release -p jetsim-bench --bin bench_sweep
//! ```
//!
//! Numbers are host-dependent; the checked-in `BENCH_sweep.json` is a
//! schema placeholder until regenerated on the target machine. Set
//! `JETSIM_FAST=1` for a quick smoke run with shrunken windows.

use std::time::Instant;

use jetsim::prelude::*;
use jetsim_trt::EngineCache;

fn windows() -> (SimDuration, SimDuration) {
    if std::env::var_os("JETSIM_FAST").is_some() {
        (SimDuration::from_millis(100), SimDuration::from_millis(400))
    } else {
        (
            SimDuration::from_millis(300),
            SimDuration::from_millis(1500),
        )
    }
}

fn fig06_grid(platform: &Platform, models: &[ModelGraph]) -> (f64, usize, usize) {
    let (warmup, measure) = windows();
    let start = Instant::now();
    let mut cells = 0usize;
    let mut ok = 0usize;
    for model in models {
        let procs: Vec<u32> = if model.name() == "yolov8n" {
            vec![1, 2, 4, 8, 16]
        } else {
            vec![1, 2, 4, 8]
        };
        let results = SweepSpec::new()
            .precisions([Precision::Int8])
            .batches([1, 2, 4, 8, 16])
            .process_counts(procs)
            .warmup(warmup)
            .measure(measure)
            .run(platform, model);
        cells += results.len();
        ok += results.iter().filter(|c| c.outcome.is_success()).count();
    }
    (start.elapsed().as_secs_f64(), cells, ok)
}

/// Simulated-event throughput of one representative cell (ResNet50
/// int8, batch 4, two processes), kernel events gated off.
fn events_per_sec(platform: &Platform) -> (u64, f64) {
    let engine = platform
        .build_engine(&zoo::resnet50(), Precision::Int8, 4)
        .expect("builds");
    let config = SimConfig::builder(platform.device().clone())
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_secs_f64(1.0))
        .record_kernel_events(false)
        .add_engines(&engine, 2)
        .build()
        .expect("valid");
    let start = Instant::now();
    let trace = Simulation::new(config).expect("fits").run();
    (trace.sim_events, start.elapsed().as_secs_f64())
}

fn main() -> std::io::Result<()> {
    let platform = Platform::orin_nano();
    let models = zoo::all();
    let cache = EngineCache::global();

    cache.clear();
    let before = cache.stats();
    let (cold_wall, cells, ok) = fig06_grid(&platform, &models);
    let after_cold = cache.stats();

    let (warm_wall, _, _) = fig06_grid(&platform, &models);
    let after_warm = cache.stats();

    let (sim_events, sim_wall) = events_per_sec(&platform);

    let json = serde_json::json!({
        "bench": "sweep_cache",
        "grid": {
            "figure": "fig06",
            "device": platform.name(),
            "precision": "int8",
            "batches": [1, 2, 4, 8, 16],
            "models": models.iter().map(|m| m.name()).collect::<Vec<_>>(),
            "cells": cells,
            "cells_ok": ok,
        },
        "cold": {
            "wall_s": cold_wall,
            "cells_per_s": cells as f64 / cold_wall,
            "engine_builds": after_cold.misses - before.misses,
        },
        "warm": {
            "wall_s": warm_wall,
            "cells_per_s": cells as f64 / warm_wall,
            "engine_builds": after_warm.misses - after_cold.misses,
            "speedup_vs_cold": cold_wall / warm_wall,
        },
        "des": {
            "sim_events": sim_events,
            "wall_s": sim_wall,
            "events_per_s": sim_events as f64 / sim_wall.max(1e-9),
        },
    });
    let text = serde_json::to_string_pretty(&json).expect("serializable");
    std::fs::write("BENCH_sweep.json", &text)?;
    println!("{text}");
    println!("\nwritten to BENCH_sweep.json");
    Ok(())
}
