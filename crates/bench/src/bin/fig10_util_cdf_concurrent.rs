//! Regenerates the paper's fig10_util_cdf_concurrent on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::fig10_util_cdf_concurrent();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
