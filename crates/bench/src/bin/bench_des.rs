//! Emits `BENCH_des.json`: raw DES event throughput on the four hot
//! workload shapes — the ROADMAP-tracked 2-process sweep cell, a
//! closed-loop 8-process cell, an online serving cell, and a
//! fault-heavy cell — tracking the ROADMAP's events/s trajectory.
//!
//! ```sh
//! cargo run --release -p jetsim-bench --bin bench_des            # emit
//! cargo run --release -p jetsim-bench --bin bench_des -- --check # gate
//! ```
//!
//! `--check` re-measures and fails (exit 1) if any cell's events/s
//! drops more than 30% below the committed `BENCH_des.json` baseline —
//! tolerant enough to absorb runner noise, tight enough to catch a real
//! hot-path regression. Numbers are host-dependent; regenerate the
//! baseline on the machine that gates. Set `JETSIM_FAST=1` for a quick
//! smoke run with shrunken windows.

use std::time::Instant;

use jetsim::prelude::*;
use jetsim_des::ArrivalProcess;
use jetsim_serve::{ServeSpec, ServeTenant};
use jetsim_sim::FaultPlan;

/// Fraction of the baseline a cell may lose before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 0.30;

fn measure_window() -> SimDuration {
    if std::env::var_os("JETSIM_FAST").is_some() {
        SimDuration::from_millis(400)
    } else {
        SimDuration::from_secs(2)
    }
}

/// One measured cell: simulated events, wall seconds, events/s.
struct Cell {
    name: &'static str,
    sim_events: u64,
    wall_s: f64,
}

impl Cell {
    fn events_per_s(&self) -> f64 {
        self.sim_events as f64 / self.wall_s.max(1e-9)
    }
}

/// Times one run of `config`, best of three (the first run warms the
/// allocator and the engine cache; the best run is the one that
/// reflects the hot path).
fn time_cell(name: &'static str, mut build: impl FnMut() -> SimConfig) -> Cell {
    let mut best: Option<Cell> = None;
    for _ in 0..3 {
        let config = build();
        let start = Instant::now();
        let trace = Simulation::new(config).expect("fits").run();
        let wall_s = start.elapsed().as_secs_f64();
        let cell = Cell {
            name,
            sim_events: trace.sim_events,
            wall_s,
        };
        if best
            .as_ref()
            .is_none_or(|b| cell.events_per_s() > b.events_per_s())
        {
            best = Some(cell);
        }
    }
    best.expect("three runs")
}

/// The exact cell `bench_sweep` has always tracked (ResNet50 int8,
/// batch 4, two processes, 1 s window) — the ROADMAP's events/s
/// baseline, kept here so the trajectory reads off one file.
fn sweep_cell_2p(platform: &Platform) -> Cell {
    let engine = platform
        .build_engine(&zoo::resnet50(), Precision::Int8, 4)
        .expect("builds");
    time_cell("sweep_cell_2p", || {
        SimConfig::builder(platform.device().clone())
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_secs_f64(1.0))
            .record_kernel_events(false)
            .add_engines(&engine, 2)
            .build()
            .expect("valid")
    })
}

/// Closed-loop saturated cell: 8 ResNet50 int8 processes hammering the
/// GPU — the fig-6 concurrency shape, where sweeps spend their time.
fn closed_loop_8p(platform: &Platform) -> Cell {
    let engine = platform
        .build_engine(&zoo::resnet50(), Precision::Int8, 4)
        .expect("builds");
    time_cell("closed_loop_8p", || {
        SimConfig::builder(platform.device().clone())
            .warmup(SimDuration::from_millis(100))
            .measure(measure_window())
            .record_kernel_events(false)
            .add_engines(&engine, 8)
            .build()
            .expect("valid")
    })
}

/// Online serving cell: Poisson arrivals through the ingress path
/// (admission, batching, flush timers) — the `find_max_qps` shape.
fn serving(platform: &Platform) -> Cell {
    let tenant = ServeTenant::parse("resnet50:int8:1:2", ArrivalProcess::poisson(200.0))
        .expect("valid spec");
    time_cell("serving", || {
        ServeSpec::new(platform.clone())
            .tenant(tenant.clone())
            .warmup(SimDuration::from_millis(100))
            .duration(measure_window())
            .slo(SimDuration::from_millis(50))
            .seed(7)
            .build_config()
            .expect("valid serve config")
    })
}

/// Fault-heavy cell: 4 processes under a dense seeded spike/throttle
/// timeline — exercises the memory-guard and governor event paths.
fn fault_heavy(platform: &Platform) -> Cell {
    let engine = platform
        .build_engine(&zoo::resnet50(), Precision::Int8, 4)
        .expect("builds");
    time_cell("fault_heavy", || {
        let total = SimDuration::from_millis(100) + measure_window();
        SimConfig::builder(platform.device().clone())
            .warmup(SimDuration::from_millis(100))
            .measure(measure_window())
            .record_kernel_events(false)
            .faults(FaultPlan::seeded(11, total, 24, 12))
            .add_engines(&engine, 4)
            .build()
            .expect("valid")
    })
}

fn check(cells: &[Cell]) -> std::io::Result<()> {
    let text = std::fs::read_to_string("BENCH_des.json").map_err(|e| {
        std::io::Error::other(format!(
            "--check needs a committed BENCH_des.json baseline: {e}"
        ))
    })?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| std::io::Error::other(e.to_string()))?;
    let rate_of = |name: &str| -> Option<f64> {
        match baseline
            .get_field("cells")?
            .get_field(name)?
            .get_field("events_per_s")?
        {
            serde_json::Value::F64(f) => Some(*f),
            serde_json::Value::U64(u) => Some(*u as f64),
            serde_json::Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    };
    let mut failed = false;
    for cell in cells {
        let Some(base) = rate_of(cell.name) else {
            eprintln!("baseline missing cells.{}.events_per_s", cell.name);
            failed = true;
            continue;
        };
        let measured = cell.events_per_s();
        let floor = base * (1.0 - REGRESSION_TOLERANCE);
        let verdict = if measured < floor { "FAIL" } else { "ok" };
        println!(
            "{verdict:>4}  {:<16} {:>12.0} events/s (baseline {:>12.0}, floor {:>12.0})",
            cell.name, measured, base, floor
        );
        failed |= measured < floor;
    }
    if failed {
        eprintln!(
            "events/s regressed more than {:.0}% below the committed baseline",
            REGRESSION_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("bench_des check passed");
    Ok(())
}

fn main() -> std::io::Result<()> {
    let checking = std::env::args().any(|a| a == "--check");
    let platform = Platform::orin_nano();
    let cells = [
        sweep_cell_2p(&platform),
        closed_loop_8p(&platform),
        serving(&platform),
        fault_heavy(&platform),
    ];
    if checking {
        return check(&cells);
    }

    let total_events: u64 = cells.iter().map(|c| c.sim_events).sum();
    let total_wall: f64 = cells.iter().map(|c| c.wall_s).sum();
    let cell_json = |c: &Cell| {
        serde_json::json!({
            "sim_events": c.sim_events,
            "wall_s": c.wall_s,
            "events_per_s": c.events_per_s(),
        })
    };
    let json = serde_json::json!({
        "bench": "des",
        "device": platform.name(),
        "note": "events/s are host-dependent; regenerate on the gating machine; best of 3 runs per cell",
        "cells": {
            "sweep_cell_2p": cell_json(&cells[0]),
            "closed_loop_8p": cell_json(&cells[1]),
            "serving": cell_json(&cells[2]),
            "fault_heavy": cell_json(&cells[3]),
        },
        "total": {
            "sim_events": total_events,
            "wall_s": total_wall,
            "events_per_s": total_events as f64 / total_wall.max(1e-9),
        },
    });
    let text = serde_json::to_string_pretty(&json).expect("serializable");
    std::fs::write("BENCH_des.json", &text)?;
    println!("{text}");
    println!("\nwritten to BENCH_des.json");
    Ok(())
}
