//! Regenerates the paper's fig06_concurrent_orin on the simulated platforms.
fn main() {
    let fig = jetsim_bench::figures::fig06_concurrent_orin();
    fig.print();
    if let Err(e) = fig.save_csv() {
        eprintln!("warning: could not save CSV: {e}");
    }
}
