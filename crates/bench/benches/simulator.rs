//! Micro-benchmarks of the simulator's building blocks: the event queue,
//! the engine builder, the kernel cost model, the statistics toolbox and
//! one simulated second per device.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use jetsim::prelude::*;
use jetsim_des::{EventQueue, SimRng, SimTime};
use jetsim_profile::Cdf;
use jetsim_trt::EngineBuilder;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("sim_rng_uniform_10k", |b| {
        let mut rng = SimRng::seed_from(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.uniform(0.0, 1.0);
            }
            black_box(acc)
        })
    });
}

fn bench_model_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_zoo");
    group.bench_function("build_resnet50_graph", |b| b.iter(zoo::resnet50));
    group.bench_function("build_yolov8n_graph", |b| b.iter(zoo::yolov8n));
    group.bench_function("resnet50_stats", |b| {
        let model = zoo::resnet50();
        b.iter(|| model.stats())
    });
    group.finish();
}

fn bench_engine_builder(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_builder");
    let orin = Platform::orin_nano();
    for model in zoo::all() {
        group.bench_function(format!("build_{}_int8", model.name()), |b| {
            b.iter(|| {
                EngineBuilder::new(orin.device())
                    .precision(Precision::Int8)
                    .batch(8)
                    .build(&model)
                    .expect("builds")
            })
        });
    }
    group.finish();
}

fn bench_kernel_model(c: &mut Criterion) {
    let orin = Platform::orin_nano();
    let engine = orin
        .build_engine(&zoo::resnet50(), Precision::Fp16, 4)
        .expect("builds");
    let gpu = &orin.device().gpu;
    c.bench_function("kernel_cost_model_full_engine", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for k in engine.kernels() {
                total += k.exec_time(gpu, 4, gpu.freq.top()).as_nanos();
                black_box(k.sm_active(gpu, 4));
                black_box(k.tc_activity(gpu, 4, gpu.freq.top()));
            }
            black_box(total)
        })
    });
}

fn bench_cdf(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(7);
    let samples: Vec<(f64, f64)> = (0..100_000)
        .map(|_| (rng.uniform(0.0, 1.0), rng.uniform(0.0, 2.0)))
        .collect();
    c.bench_function("cdf_build_100k_weighted", |b| {
        b.iter(|| Cdf::from_weighted(samples.iter().copied()).expect("non-empty"))
    });
}

fn bench_simulated_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_second");
    group.sample_size(10);
    let cases = [
        (
            "orin_resnet_int8_p1",
            Platform::orin_nano(),
            Precision::Int8,
            1u32,
        ),
        (
            "orin_yolo_int8_p8",
            Platform::orin_nano(),
            Precision::Int8,
            8,
        ),
        (
            "nano_resnet_fp16_p2",
            Platform::jetson_nano(),
            Precision::Fp16,
            2,
        ),
    ];
    for (name, platform, precision, procs) in cases {
        let model = if name.contains("yolo") {
            zoo::yolov8n()
        } else {
            zoo::resnet50()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let engine = platform.build_engine(&model, precision, 1).expect("builds");
                let mut builder = SimConfig::builder(platform.device().clone())
                    .warmup(SimDuration::from_millis(100))
                    .measure(SimDuration::from_millis(900));
                builder = builder.add_engines(&engine, procs);
                Simulation::new(builder.build().expect("fits"))
                    .expect("valid")
                    .run()
                    .total_throughput()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_model_zoo,
    bench_engine_builder,
    bench_kernel_model,
    bench_cdf,
    bench_simulated_second
);
criterion_main!(benches);
