//! Benchmarks for this PR's performance work: the process-wide engine
//! cache (cold build vs warm lookup), the calendar-queue DES backend vs
//! the binary heap, kernel-event trace gating, and a small sweep grid
//! end to end.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use jetsim::prelude::*;
use jetsim_des::{CalendarQueue, EventQueue, SimTime};

fn bench_engine_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_cache");
    let orin = Platform::orin_nano();
    let model = zoo::resnet50();
    group.bench_function("cold_build_resnet50_int8_b8", |b| {
        b.iter(|| {
            orin.build_engine_uncached(&model, Precision::Int8, 8)
                .expect("builds")
        })
    });
    // Prime the cache once; every iteration after is a read-lock hit.
    orin.build_engine(&model, Precision::Int8, 8)
        .expect("builds");
    group.bench_function("warm_hit_resnet50_int8_b8", |b| {
        b.iter(|| {
            orin.build_engine(&model, Precision::Int8, 8)
                .expect("cached")
        })
    });
    group.finish();
}

fn bench_queue_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_backends");
    group.bench_function("heap_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.bench_function("calendar_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = CalendarQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    // The simulator's real pattern: a handful of pending events, popped
    // and rescheduled slightly into the future.
    group.bench_function("calendar_hot_loop_100k", |b| {
        b.iter(|| {
            let mut q: CalendarQueue<u64> = CalendarQueue::with_capacity(32);
            for i in 0..8u64 {
                q.schedule(SimTime::from_nanos(i * 100), i);
            }
            let mut popped = 0u64;
            while popped < 100_000 {
                let (t, e) = q.pop().expect("non-empty");
                popped += 1;
                q.schedule(
                    t + jetsim_des::SimDuration::from_nanos(500 + (e % 7) * 37),
                    e,
                );
            }
            black_box(popped)
        })
    });
    group.finish();
}

fn sim_trace(record: bool) -> f64 {
    let orin = Platform::orin_nano();
    let engine = orin
        .build_engine(&zoo::resnet50(), Precision::Int8, 4)
        .expect("builds");
    let config = SimConfig::builder(orin.device().clone())
        .warmup(SimDuration::from_millis(50))
        .measure(SimDuration::from_millis(200))
        .record_kernel_events(record)
        .add_engines(&engine, 2)
        .build()
        .expect("valid");
    Simulation::new(config)
        .expect("fits")
        .run()
        .total_throughput()
}

fn bench_trace_gating(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_trace_gating");
    group.sample_size(10);
    group.bench_function("resnet50_int8_b4_p2_with_kernel_events", |b| {
        b.iter(|| black_box(sim_trace(true)))
    });
    group.bench_function("resnet50_int8_b4_p2_gated", |b| {
        b.iter(|| black_box(sim_trace(false)))
    });
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    let spec = SweepSpec::new()
        .precisions([Precision::Int8])
        .batches([1, 4])
        .process_counts([1, 2])
        .warmup(SimDuration::from_millis(50))
        .measure(SimDuration::from_millis(200));
    let orin = Platform::orin_nano();
    let model = zoo::yolov8n();
    // Prime the engine cache so the bench isolates simulation cost.
    let _ = spec.run(&orin, &model);
    group.bench_function("yolov8n_int8_4cells_warm", |b| {
        b.iter(|| black_box(spec.run(&orin, &model).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_cache,
    bench_queue_backends,
    bench_trace_gating,
    bench_sweep
);
criterion_main!(benches);
