//! Criterion benchmarks: one representative simulation cell per paper
//! table/figure, so `cargo bench` exercises every experiment's code path
//! and reports its cost.

use criterion::{criterion_group, criterion_main, Criterion};

use jetsim::prelude::*;

fn windows() -> (SimDuration, SimDuration) {
    (SimDuration::from_millis(50), SimDuration::from_millis(250))
}

fn run_cell(
    platform: &Platform,
    model: &ModelGraph,
    precision: Precision,
    batch: u32,
    procs: u32,
) -> f64 {
    let (warmup, measure) = windows();
    let engine = platform
        .build_engine(model, precision, batch)
        .expect("engine builds");
    let mut builder = SimConfig::builder(platform.device().clone())
        .warmup(warmup)
        .measure(measure);
    builder = builder.add_engines(&engine, procs);
    let config = builder.build().expect("fits");
    Simulation::new(config)
        .expect("valid")
        .run()
        .total_throughput()
}

fn run_nsight(platform: &Platform, model: &ModelGraph, precision: Precision, procs: u32) -> f64 {
    let (warmup, measure) = windows();
    let profile = DualPhaseProfiler::new(platform)
        .deployment(&Deployment::homogeneous(model, precision, 1, procs))
        .expect("builds")
        .warmup(warmup)
        .measure(measure)
        .run()
        .expect("fits");
    profile.kernel.cdfs.sm_active.mean()
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    let orin = Platform::orin_nano();
    let nano = Platform::jetson_nano();
    let resnet = zoo::resnet50();
    let fcn = zoo::fcn_resnet50();
    let yolo = zoo::yolov8n();

    group.bench_function("table1_render", |b| {
        b.iter(|| jetsim_bench::figures::table1().tables[0].1.to_markdown())
    });
    group.bench_function("table2_render", |b| {
        b.iter(|| jetsim_bench::figures::table2().tables[0].1.to_markdown())
    });
    group.bench_function("fig01_resnet_fp16_b8_orin", |b| {
        b.iter(|| run_cell(&orin, &resnet, Precision::Fp16, 8, 1))
    });
    group.bench_function("fig03_fcn_fp16_b1_orin", |b| {
        b.iter(|| run_cell(&orin, &fcn, Precision::Fp16, 1, 1))
    });
    group.bench_function("fig04_fcn_fp32_dvfs_orin", |b| {
        b.iter(|| run_cell(&orin, &fcn, Precision::Fp32, 1, 1))
    });
    group.bench_function("fig05_nsight_resnet_fp16", |b| {
        b.iter(|| run_nsight(&orin, &resnet, Precision::Fp16, 1))
    });
    group.bench_function("fig06_yolo_int8_b1_p8_orin", |b| {
        b.iter(|| run_cell(&orin, &yolo, Precision::Int8, 1, 8))
    });
    group.bench_function("fig07_resnet_fp16_b1_p4_nano", |b| {
        b.iter(|| run_cell(&nano, &resnet, Precision::Fp16, 1, 4))
    });
    group.bench_function("fig08_fcn_int8_b16_p2_orin", |b| {
        b.iter(|| run_cell(&orin, &fcn, Precision::Int8, 16, 2))
    });
    group.bench_function("fig09_yolo_fp16_b4_p2_nano", |b| {
        b.iter(|| run_cell(&nano, &yolo, Precision::Fp16, 4, 2))
    });
    group.bench_function("fig10_nsight_yolo_int8_p4", |b| {
        b.iter(|| run_nsight(&orin, &yolo, Precision::Int8, 4))
    });
    group.bench_function("fig11_resnet_int8_b1_p4_orin", |b| {
        b.iter(|| run_cell(&orin, &resnet, Precision::Int8, 1, 4))
    });
    group.bench_function("fig12_resnet_fp16_b1_p2_nano", |b| {
        b.iter(|| run_cell(&nano, &resnet, Precision::Fp16, 1, 2))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
