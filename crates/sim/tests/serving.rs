//! End-to-end behavior of the request-level serving path: determinism,
//! admission policies, dynamic batching and closed-loop coexistence.

use std::sync::Arc;

use jetsim_des::{ArrivalProcess, SimDuration};
use jetsim_device::presets;
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::serving::ServeEventKind;
use jetsim_sim::{
    AdmissionPolicy, RunTrace, ServeGroup, ServePlan, SimConfig, SimError, Simulation,
};
use jetsim_trt::EngineBuilder;

fn engine(
    device: &jetsim_device::DeviceSpec,
    precision: Precision,
    batch: u32,
) -> Arc<jetsim_trt::Engine> {
    Arc::new(
        EngineBuilder::new(device)
            .precision(precision)
            .batch(batch)
            .build(&zoo::resnet50())
            .unwrap(),
    )
}

/// One ResNet50 serve group on the Orin Nano.
fn serving_trace(rate: f64, servers: usize, cap: usize, admission: AdmissionPolicy) -> RunTrace {
    let device = presets::orin_nano();
    let eng = engine(&device, Precision::Int8, 1);
    let mut builder = SimConfig::builder(device);
    for i in 0..servers {
        builder = builder.add_engine_named(format!("resnet50/{i}"), Arc::clone(&eng));
    }
    let config = builder
        .serve(
            ServePlan::new().group(
                ServeGroup::new("resnet50", ArrivalProcess::poisson(rate))
                    .members(0..servers)
                    .max_delay(SimDuration::from_millis(2))
                    .queue_cap(cap)
                    .admission(admission),
            ),
        )
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(900))
        .seed(42)
        .build()
        .unwrap();
    Simulation::new(config).unwrap().run()
}

#[test]
fn serving_run_serves_requests() {
    let trace = serving_trace(100.0, 2, 64, AdmissionPolicy::Reject);
    assert_eq!(trace.serve_group_labels, vec!["resnet50"]);
    assert!(!trace.requests.is_empty(), "arrivals were offered");
    let served = trace.requests.iter().filter(|r| r.served()).count();
    assert!(
        served > 50,
        "most requests served at a feasible load, got {served}"
    );
    for r in trace.requests.iter().filter(|r| r.served()) {
        let latency = r.latency().unwrap();
        assert!(!latency.is_zero());
        assert!(r.queue_wait().unwrap() <= latency);
        assert!(r.pid.is_some() && r.batch_size >= 1);
    }
    assert!(
        trace
            .serve_events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::BatchFormed { .. })),
        "batches were formed"
    );
}

#[test]
fn serving_replays_bit_identically() {
    let a = serving_trace(150.0, 2, 64, AdmissionPolicy::Reject);
    let b = serving_trace(150.0, 2, 64, AdmissionPolicy::Reject);
    assert_eq!(a.requests, b.requests, "same seed, same request timeline");
    assert_eq!(a.serve_events, b.serve_events);
}

#[test]
fn closed_loop_traces_have_no_serving_artifacts() {
    let config = SimConfig::builder(presets::orin_nano())
        .add_model(&zoo::resnet50(), Precision::Int8, 1)
        .unwrap()
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(400))
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    assert!(trace.requests.is_empty());
    assert!(trace.serve_events.is_empty());
    assert!(trace.serve_group_labels.is_empty());
}

#[test]
fn overload_with_reject_drops_newcomers() {
    // Far beyond one int8 ResNet50 server's capacity: the bounded queue
    // must shed load instead of growing without bound.
    let trace = serving_trace(4000.0, 1, 8, AdmissionPolicy::Reject);
    let dropped = trace
        .requests
        .iter()
        .filter(|r| r.dropped.is_some())
        .count();
    assert!(dropped > 0, "overload must drop requests");
    // Rejected newcomers never carry dispatch state.
    for r in trace.requests.iter().filter(|r| r.dropped.is_some()) {
        assert!(r.dispatched.is_none() && r.pid.is_none());
    }
}

#[test]
fn shed_keeps_the_freshest_requests() {
    let trace = serving_trace(4000.0, 1, 8, AdmissionPolicy::Shed);
    let shed = trace
        .requests
        .iter()
        .filter(|r| r.dropped.is_some())
        .count();
    assert!(shed > 0);
    // Under shedding, the served requests skew fresh: queue waits stay
    // bounded by roughly (queue_cap × service time), never unbounded.
    let max_wait = trace
        .requests
        .iter()
        .filter_map(|r| r.queue_wait())
        .max()
        .unwrap();
    assert!(
        max_wait < SimDuration::from_millis(500),
        "shedding bounds queue waits, got {max_wait:?}"
    );
}

#[test]
fn degrade_policy_switches_engines_under_pressure() {
    let device = presets::orin_nano();
    let normal = engine(&device, Precision::Fp16, 1);
    let fallback = engine(&device, Precision::Int8, 1);
    let config = SimConfig::builder(device)
        .add_engine_named("resnet50/0", Arc::clone(&normal))
        .serve(
            ServePlan::new().group(
                ServeGroup::new("resnet50", ArrivalProcess::poisson(3000.0))
                    .members([0])
                    .max_delay(SimDuration::from_millis(1))
                    .queue_cap(8)
                    .admission(AdmissionPolicy::Degrade)
                    .degraded_engine(Arc::clone(&fallback)),
            ),
        )
        .warmup(SimDuration::from_millis(50))
        .measure(SimDuration::from_millis(450))
        .seed(7)
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    assert!(
        trace
            .serve_events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::DegradeEnter { .. })),
        "sustained overload must trip degradation"
    );
    assert!(
        trace.requests.iter().any(|r| r.degraded && r.served()),
        "some requests ran on the degraded engine"
    );
}

#[test]
fn batches_coalesce_up_to_the_engine_batch() {
    let device = presets::orin_nano();
    let eng = engine(&device, Precision::Int8, 8);
    let config = SimConfig::builder(device)
        .add_engine_named("resnet50/0", Arc::clone(&eng))
        .serve(
            ServePlan::new().group(
                ServeGroup::new("resnet50", ArrivalProcess::poisson(2000.0))
                    .members([0])
                    .max_delay(SimDuration::from_millis(10))
                    .queue_cap(256),
            ),
        )
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(900))
        .seed(9)
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    let mut saw_multi = false;
    for e in &trace.serve_events {
        if let ServeEventKind::BatchFormed { size, .. } = e.kind {
            assert!(
                (1..=8).contains(&size),
                "batch within engine bounds, got {size}"
            );
            saw_multi |= size > 1;
        }
    }
    assert!(
        saw_multi,
        "a 2000 qps offered load must form multi-request batches"
    );
}

#[test]
fn mixed_serving_and_closed_loop_tenants_coexist() {
    let device = presets::orin_nano();
    let eng = engine(&device, Precision::Int8, 1);
    let config = SimConfig::builder(device)
        .add_engine_named("served/0", Arc::clone(&eng))
        .add_engine_named("background/0", Arc::clone(&eng))
        .serve(
            ServePlan::new()
                .group(ServeGroup::new("served", ArrivalProcess::poisson(50.0)).members([0])),
        )
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(900))
        .seed(3)
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    assert!(trace.requests.iter().any(|r| r.served()));
    let background = &trace.processes[1];
    assert!(
        background.throughput > 10.0,
        "the closed-loop tenant keeps saturating, got {}",
        background.throughput
    );
}

#[test]
fn serve_plan_validation_rejects_bad_membership() {
    let device = presets::orin_nano();
    let eng = engine(&device, Precision::Int8, 1);
    let bad_index = SimConfig::builder(device.clone())
        .add_engine_named("a", Arc::clone(&eng))
        .serve(
            ServePlan::new()
                .group(ServeGroup::new("g", ArrivalProcess::poisson(10.0)).members([5])),
        )
        .build();
    assert!(
        matches!(bad_index, Err(SimError::InvalidServePlan { .. })),
        "{bad_index:?}"
    );

    let double_claim = SimConfig::builder(device.clone())
        .add_engine_named("a", Arc::clone(&eng))
        .serve(
            ServePlan::new()
                .group(ServeGroup::new("g1", ArrivalProcess::poisson(10.0)).members([0]))
                .group(ServeGroup::new("g2", ArrivalProcess::poisson(10.0)).members([0])),
        )
        .build();
    assert!(
        matches!(double_claim, Err(SimError::InvalidServePlan { .. })),
        "{double_claim:?}"
    );

    let empty_group = SimConfig::builder(device)
        .add_engine_named("a", eng)
        .serve(ServePlan::new().group(ServeGroup::new("g", ArrivalProcess::poisson(10.0))))
        .build();
    assert!(
        matches!(empty_group, Err(SimError::InvalidServePlan { .. })),
        "{empty_group:?}"
    );
}

#[test]
fn run_queue_cpu_model_serves_without_leaking_cores() {
    // Regression guard: a server returning from sync must release its
    // heavy core; otherwise later batches starve and throughput dies.
    let device = presets::orin_nano();
    let eng = engine(&device, Precision::Int8, 1);
    let config = SimConfig::builder(device)
        .add_engine_named("resnet50/0", Arc::clone(&eng))
        .add_engine_named("resnet50/1", Arc::clone(&eng))
        .serve(
            ServePlan::new()
                .group(ServeGroup::new("resnet50", ArrivalProcess::poisson(100.0)).members([0, 1])),
        )
        .cpu_model(jetsim_sim::CpuModel::RunQueue)
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(900))
        .seed(11)
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    let served = trace.requests.iter().filter(|r| r.served()).count();
    assert!(
        served > 50,
        "run-queue serving keeps flowing, served {served}"
    );
}

/// One serve group with optional per-request ingress offsets.
fn offset_trace(offsets: Option<Vec<SimDuration>>) -> RunTrace {
    let device = presets::orin_nano();
    let eng = engine(&device, Precision::Int8, 1);
    let mut group = ServeGroup::new("resnet50", ArrivalProcess::poisson(150.0))
        .members([0, 1])
        .max_delay(SimDuration::from_millis(2));
    if let Some(offsets) = offsets {
        group = group.ingress_offsets(offsets);
    }
    let config = SimConfig::builder(device)
        .add_engine_named("resnet50/0", Arc::clone(&eng))
        .add_engine_named("resnet50/1", Arc::clone(&eng))
        .serve(ServePlan::new().group(group))
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(900))
        .seed(77)
        .build()
        .unwrap();
    Simulation::new(config).unwrap().run()
}

#[test]
fn zero_ingress_offsets_are_byte_identical_to_none() {
    // The fleet layer's no-network case must not perturb a standalone
    // run: an all-zero offset slice takes the offset code path yet
    // reproduces the undelayed timeline exactly.
    let plain = offset_trace(None);
    let zeroed = offset_trace(Some(vec![SimDuration::ZERO; 10_000]));
    assert_eq!(plain.requests, zeroed.requests);
    assert_eq!(plain.serve_events, zeroed.serve_events);
    assert_eq!(plain.sim_events, zeroed.sim_events);
}

#[test]
fn ingress_offsets_shift_arrivals_fifo() {
    // A constant 10 ms uplink delay shifts every delivery 10 ms past
    // its emission instant, so the first arrival of the delayed run is
    // exactly 10 ms later than the undelayed one's.
    let delay = SimDuration::from_millis(10);
    let plain = offset_trace(None);
    let delayed = offset_trace(Some(vec![delay; 10_000]));
    let first_plain = plain.requests.first().expect("arrivals").arrival;
    let first_delayed = delayed.requests.first().expect("arrivals").arrival;
    assert_eq!(first_delayed.since(first_plain), delay);

    // FIFO link: deliveries stay sorted even though a mixed offset
    // pattern would reorder raw emission + offset sums.
    let mixed: Vec<SimDuration> = (0..10_000)
        .map(|i| SimDuration::from_millis(if i % 3 == 0 { 40 } else { 1 }))
        .collect();
    let jittered = offset_trace(Some(mixed));
    let arrivals: Vec<_> = jittered
        .requests
        .iter()
        .filter(|r| r.is_root())
        .map(|r| r.arrival)
        .collect();
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "deliveries never overtake on the link"
    );
}
