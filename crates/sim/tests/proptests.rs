//! Property-based tests for the simulator's invariants.
//!
//! These run short windows (cases are whole simulations), so the case
//! count is kept small.

use proptest::prelude::*;

use jetsim_des::SimDuration;
use jetsim_device::presets;
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::{SimConfig, Simulation};

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop::sample::select(Precision::ALL.to_vec())
}

fn run(precision: Precision, batch: u32, procs: u32, seed: u64) -> jetsim_sim::RunTrace {
    let config = SimConfig::builder(presets::orin_nano())
        .add_model_processes(&zoo::resnet50(), precision, batch, procs)
        .expect("builds")
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(400))
        .seed(seed)
        .build()
        .expect("fits");
    Simulation::new(config).expect("valid").run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Core invariants hold for arbitrary configurations: utilisation is
    /// a fraction, power respects the budget envelope, every kernel event
    /// is well-formed, and EC decompositions never exceed the EC span.
    #[test]
    fn run_trace_invariants(
        precision in arb_precision(),
        batch in 1u32..16,
        procs in 1u32..6,
        seed in any::<u64>(),
    ) {
        let trace = run(precision, batch, procs, seed);
        prop_assert!(trace.gpu_utilization() <= 1.0);
        prop_assert!(trace.total_throughput() >= 0.0);
        prop_assert!(trace.gpu_memory_percent > 0.0 && trace.gpu_memory_percent < 100.0);
        for s in &trace.power_samples {
            prop_assert!(s.watts >= 1.0, "below idle: {}", s.watts);
            prop_assert!(s.watts <= 7.0 * 1.15, "over budget: {}", s.watts);
            prop_assert!((0.0..=1.0).contains(&s.gpu_utilization));
        }
        for e in &trace.kernel_events {
            prop_assert!(e.end > e.start);
            prop_assert!((0.0..=1.0).contains(&e.sm_active));
            prop_assert!((0.0..=0.8).contains(&e.issue_slot));
            prop_assert!((0.0..=1.0).contains(&e.tc_activity));
            prop_assert!(e.pid < procs as usize);
        }
        for records in &trace.ec_records {
            for r in records {
                let parts = r.launch_time + r.blocking_time;
                prop_assert!(
                    parts <= r.duration() + SimDuration::from_micros(1),
                    "parts {} exceed EC {}",
                    parts,
                    r.duration()
                );
            }
        }
    }

    /// Identical seeds reproduce identical traces; the simulator is a
    /// pure function of its configuration.
    #[test]
    fn determinism(
        precision in arb_precision(),
        batch in 1u32..8,
        procs in 1u32..4,
        seed in any::<u64>(),
    ) {
        let a = run(precision, batch, procs, seed);
        let b = run(precision, batch, procs, seed);
        prop_assert_eq!(a.total_throughput(), b.total_throughput());
        prop_assert_eq!(a.kernel_events.len(), b.kernel_events.len());
        prop_assert_eq!(a.final_freq_mhz, b.final_freq_mhz);
        let pa: Vec<f64> = a.power_samples.iter().map(|s| s.watts).collect();
        let pb: Vec<f64> = b.power_samples.iter().map(|s| s.watts).collect();
        prop_assert_eq!(pa, pb);
    }

    /// GPU kernel events never overlap on the single GPU engine.
    #[test]
    fn kernels_serialise_on_the_gpu(
        procs in 1u32..6,
        seed in any::<u64>(),
    ) {
        let trace = run(Precision::Int8, 1, procs, seed);
        let mut events = trace.kernel_events.clone();
        events.sort_by_key(|e| e.start);
        for w in events.windows(2) {
            prop_assert!(
                w[1].start >= w[0].end,
                "overlap: {:?}..{:?} then {:?}",
                w[0].start, w[0].end, w[1].start
            );
        }
    }

    /// Aggregate throughput is conserved or reduced — never amplified —
    /// when adding processes at the same batch.
    #[test]
    fn no_free_throughput(seed in any::<u64>()) {
        let one = run(Precision::Int8, 1, 1, seed);
        let four = run(Precision::Int8, 1, 4, seed);
        prop_assert!(
            four.total_throughput() <= one.total_throughput() * 1.25,
            "4 procs {} vs 1 proc {}",
            four.total_throughput(),
            one.total_throughput()
        );
    }
}
