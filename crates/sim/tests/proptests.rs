//! Property-based tests for the simulator's invariants.
//!
//! These run short windows (cases are whole simulations), so the case
//! count is kept small.

use proptest::prelude::*;

use jetsim_des::SimDuration;
use jetsim_device::presets;
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::{FaultPlan, SimConfig, Simulation};

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop::sample::select(Precision::ALL.to_vec())
}

fn run(precision: Precision, batch: u32, procs: u32, seed: u64) -> jetsim_sim::RunTrace {
    let config = SimConfig::builder(presets::orin_nano())
        .add_model_processes(&zoo::resnet50(), precision, batch, procs)
        .expect("builds")
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(400))
        .seed(seed)
        .build()
        .expect("fits");
    Simulation::new(config).expect("valid").run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Core invariants hold for arbitrary configurations: utilisation is
    /// a fraction, power respects the budget envelope, every kernel event
    /// is well-formed, and EC decompositions never exceed the EC span.
    #[test]
    fn run_trace_invariants(
        precision in arb_precision(),
        batch in 1u32..16,
        procs in 1u32..6,
        seed in any::<u64>(),
    ) {
        let trace = run(precision, batch, procs, seed);
        prop_assert!(trace.gpu_utilization() <= 1.0);
        prop_assert!(trace.total_throughput() >= 0.0);
        prop_assert!(trace.gpu_memory_percent > 0.0 && trace.gpu_memory_percent < 100.0);
        for s in &trace.power_samples {
            prop_assert!(s.watts >= 1.0, "below idle: {}", s.watts);
            prop_assert!(s.watts <= 7.0 * 1.15, "over budget: {}", s.watts);
            prop_assert!((0.0..=1.0).contains(&s.gpu_utilization));
        }
        for e in &trace.kernel_events {
            prop_assert!(e.end > e.start);
            prop_assert!((0.0..=1.0).contains(&e.sm_active));
            prop_assert!((0.0..=0.8).contains(&e.issue_slot));
            prop_assert!((0.0..=1.0).contains(&e.tc_activity));
            prop_assert!(e.pid < procs as usize);
        }
        for records in &trace.ec_records {
            for r in records {
                let parts = r.launch_time + r.blocking_time;
                prop_assert!(
                    parts <= r.duration() + SimDuration::from_micros(1),
                    "parts {} exceed EC {}",
                    parts,
                    r.duration()
                );
            }
        }
    }

    /// Identical seeds reproduce identical traces; the simulator is a
    /// pure function of its configuration.
    #[test]
    fn determinism(
        precision in arb_precision(),
        batch in 1u32..8,
        procs in 1u32..4,
        seed in any::<u64>(),
    ) {
        let a = run(precision, batch, procs, seed);
        let b = run(precision, batch, procs, seed);
        prop_assert_eq!(a.total_throughput(), b.total_throughput());
        prop_assert_eq!(a.kernel_events.len(), b.kernel_events.len());
        prop_assert_eq!(a.final_freq_mhz, b.final_freq_mhz);
        let pa: Vec<f64> = a.power_samples.iter().map(|s| s.watts).collect();
        let pb: Vec<f64> = b.power_samples.iter().map(|s| s.watts).collect();
        prop_assert_eq!(pa, pb);
    }

    /// GPU kernel events never overlap on the single GPU engine.
    #[test]
    fn kernels_serialise_on_the_gpu(
        procs in 1u32..6,
        seed in any::<u64>(),
    ) {
        let trace = run(Precision::Int8, 1, procs, seed);
        let mut events = trace.kernel_events.clone();
        events.sort_by_key(|e| e.start);
        for w in events.windows(2) {
            prop_assert!(
                w[1].start >= w[0].end,
                "overlap: {:?}..{:?} then {:?}",
                w[0].start, w[0].end, w[1].start
            );
        }
    }

    /// Fault injection is fully deterministic: the same seed and the
    /// same `FaultPlan` reproduce an identical `RunTrace` — fault events,
    /// kill times, throughput, power and clocks all match bit for bit.
    #[test]
    fn fault_injection_replays_identically(
        sim_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        spikes in 0u32..3,
        locks in 0u32..2,
        procs in 1u32..4,
    ) {
        let horizon = SimDuration::from_millis(500);
        let plan = FaultPlan::seeded(fault_seed, horizon, spikes as usize, locks as usize)
            .oom_policy(jetsim_sim::OomPolicy::KillLargest);
        let run_faulted = |plan: &FaultPlan| {
            let config = SimConfig::builder(presets::orin_nano())
                .add_model_processes(&zoo::resnet50(), Precision::Int8, 1, procs)
                .expect("builds")
                .warmup(SimDuration::from_millis(100))
                .measure(SimDuration::from_millis(400))
                .seed(sim_seed)
                .faults(plan.clone())
                .build()
                .expect("kill policy always admits");
            Simulation::new(config).expect("valid").run()
        };
        // The plan itself replays identically from its seed …
        let replanned = FaultPlan::seeded(fault_seed, horizon, spikes as usize, locks as usize)
            .oom_policy(jetsim_sim::OomPolicy::KillLargest);
        prop_assert_eq!(&plan, &replanned);
        // … and so does the simulation driven by it.
        let a = run_faulted(&plan);
        let b = run_faulted(&plan);
        prop_assert_eq!(&a.fault_events, &b.fault_events);
        prop_assert_eq!(a.total_throughput(), b.total_throughput());
        prop_assert_eq!(a.killed_processes(), b.killed_processes());
        prop_assert_eq!(a.sim_events, b.sim_events);
        prop_assert_eq!(a.final_freq_mhz, b.final_freq_mhz);
        let ka: Vec<_> = a.processes.iter().map(|p| p.killed_at).collect();
        let kb: Vec<_> = b.processes.iter().map(|p| p.killed_at).collect();
        prop_assert_eq!(ka, kb);
        let pa: Vec<f64> = a.power_samples.iter().map(|s| s.watts).collect();
        let pb: Vec<f64> = b.power_samples.iter().map(|s| s.watts).collect();
        prop_assert_eq!(pa, pb);
    }

    /// An empty fault plan is invisible: the trace it produces is
    /// indistinguishable from a run with no plan at all.
    #[test]
    fn empty_plan_is_inert(
        precision in arb_precision(),
        procs in 1u32..4,
        seed in any::<u64>(),
    ) {
        let base = run(precision, 1, procs, seed);
        let config = SimConfig::builder(presets::orin_nano())
            .add_model_processes(&zoo::resnet50(), precision, 1, procs)
            .expect("builds")
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(400))
            .seed(seed)
            .faults(FaultPlan::new())
            .build()
            .expect("fits");
        let planned = Simulation::new(config).expect("valid").run();
        prop_assert!(planned.fault_events.is_empty());
        prop_assert_eq!(base.total_throughput(), planned.total_throughput());
        prop_assert_eq!(base.sim_events, planned.sim_events);
        prop_assert_eq!(base.kernel_events.len(), planned.kernel_events.len());
        prop_assert_eq!(base.final_freq_mhz, planned.final_freq_mhz);
    }

    /// However the OOM killer culls an over-deployment, the survivors'
    /// footprint fits in usable memory and accounting stays consistent.
    #[test]
    fn oom_killer_leaves_a_fitting_deployment(
        fault_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::seeded(fault_seed, SimDuration::from_millis(500), 2, 0)
            .oom_policy(jetsim_sim::OomPolicy::KillLargest);
        let config = SimConfig::builder(presets::jetson_nano())
            .add_model_processes(&zoo::fcn_resnet50(), Precision::Fp16, 1, 4)
            .expect("builds")
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(400))
            .seed(seed)
            .faults(plan)
            .build()
            .expect("kill policy admits");
        let trace = Simulation::new(config).expect("valid").run();
        prop_assert!(trace.killed_processes() >= 1, "overcommit must be culled");
        prop_assert!(trace.killed_processes() < 4, "someone survives");
        let kills = trace.fault_events.iter().filter(|e| matches!(
            e.kind,
            jetsim_sim::FaultKind::ProcessKilled { .. }
        )).count();
        prop_assert_eq!(kills, trace.killed_processes());
        for p in &trace.processes {
            if p.killed_at == Some(jetsim_des::SimTime::ZERO) {
                prop_assert_eq!(p.completed_ecs, 0, "killed at t=0 never ran");
            }
        }
    }

    /// Aggregate throughput is conserved or reduced — never amplified —
    /// when adding processes at the same batch.
    #[test]
    fn no_free_throughput(seed in any::<u64>()) {
        let one = run(Precision::Int8, 1, 1, seed);
        let four = run(Precision::Int8, 1, 4, seed);
        prop_assert!(
            four.total_throughput() <= one.total_throughput() * 1.25,
            "4 procs {} vs 1 proc {}",
            four.total_throughput(),
            one.total_throughput()
        );
    }

    /// Autoscaled serving conserves replicas for arbitrary floors,
    /// rates and seeds: lifecycle events per pid alternate (no double
    /// provision, no phantom reap), the up-set never exceeds the
    /// ceiling, and the same seed replays the same scaling timeline.
    #[test]
    fn autoscaler_conserves_replicas_and_is_deterministic(
        min in 0u32..=2,
        rate in 50.0f64..800.0,
        seed in any::<u64>(),
    ) {
        let trace = autoscaled_run(min, rate, seed);
        let mut up = std::collections::HashSet::new();
        let mut provisioning = std::collections::HashSet::new();
        let mut provisions = 0usize;
        let mut warms = 0usize;
        for e in &trace.serve_events {
            match e.kind {
                ServeEventKind::ReplicaProvisioned { pid, .. } => {
                    prop_assert!(!provisioning.contains(&pid), "double provision of {pid}");
                    prop_assert!(!up.contains(&pid), "provisioned while up: {pid}");
                    provisioning.insert(pid);
                    provisions += 1;
                }
                ServeEventKind::ReplicaWarmed { pid } => {
                    provisioning.remove(&pid);
                    prop_assert!(up.insert(pid), "warmed while up: {pid}");
                    warms += 1;
                }
                ServeEventKind::ReplicaReaped { pid } => {
                    prop_assert!(up.remove(&pid), "reaped while not up: {pid}");
                }
                ServeEventKind::ReplicaDown { pid, .. } => {
                    up.remove(&pid);
                    provisioning.remove(&pid);
                }
                _ => {}
            }
            prop_assert!(up.len() <= 3, "up-set exceeds max_replicas");
        }
        // Every warm came from the t=0 floor seeding or a provision.
        prop_assert!(warms <= provisions + min as usize);
        let replay = autoscaled_run(min, rate, seed);
        prop_assert_eq!(trace.serve_events.len(), replay.serve_events.len());
        for (a, b) in trace.serve_events.iter().zip(&replay.serve_events) {
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(a.group, b.group);
        }
        prop_assert_eq!(trace.requests.len(), replay.requests.len());
    }
}

use jetsim_sim::serving::{AutoscalerPolicy, ServeEventKind};
use jetsim_sim::{ServeGroup, ServePlan};

/// A 3-slot autoscaled resnet50 group on the Orin Nano.
fn autoscaled_run(min: u32, rate: f64, seed: u64) -> jetsim_sim::RunTrace {
    let device = presets::orin_nano();
    let eng = std::sync::Arc::new(
        jetsim_trt::EngineBuilder::new(&device)
            .precision(Precision::Int8)
            .batch(1)
            .build(&zoo::resnet50())
            .unwrap(),
    );
    let mut builder = SimConfig::builder(device);
    for i in 0..3 {
        builder = builder.add_engine_named(format!("resnet50/{i}"), std::sync::Arc::clone(&eng));
    }
    let scaler = AutoscalerPolicy::new(min, 3)
        .target_queue_per_replica(2.0)
        .evaluate_every(SimDuration::from_millis(10))
        .keep_alive(SimDuration::from_millis(40))
        .start_costs(SimDuration::from_millis(50), SimDuration::from_millis(10));
    let group = ServeGroup::new("resnet50", jetsim_des::ArrivalProcess::poisson(rate))
        .members(0..3)
        .queue_cap(128)
        .autoscaler(scaler);
    let config = builder
        .serve(ServePlan::new().group(group))
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(400))
        .seed(seed)
        .build()
        .unwrap();
    Simulation::new(config).unwrap().run()
}
