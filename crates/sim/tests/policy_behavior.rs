//! Behavioural tests of the GPU scheduling policy layer, exercised
//! through the public API: the default policy must be byte-identical to
//! an explicit `rr`, and preemption must conserve kernels — nothing
//! lost, nothing completed twice.

use jetsim_des::SimDuration;
use jetsim_device::presets;
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::{GpuPolicy, SimConfig, Simulation};

/// Four ResNet50 int8 processes, two at priority 5 / share 2.0 and two
/// at the defaults — enough contention that a preemptive policy fires.
fn contended_config(policy: Option<GpuPolicy>) -> SimConfig {
    let mut builder = SimConfig::builder(presets::orin_nano())
        .warmup(SimDuration::ZERO)
        .measure(SimDuration::from_millis(300));
    for i in 0..4u8 {
        builder = builder
            .add_model(&zoo::resnet50(), Precision::Int8, 1)
            .expect("engine builds");
        if i % 2 == 0 {
            builder = builder.process_priority(5).process_sm_share(2.0);
        }
    }
    if let Some(policy) = policy {
        builder = builder.gpu_policy(policy);
    }
    builder.build().expect("config builds")
}

#[test]
fn default_policy_is_byte_identical_to_explicit_rr() {
    let implicit = Simulation::new(contended_config(None)).unwrap().run();
    let explicit = Simulation::new(contended_config(Some("rr".parse().expect("known policy"))))
        .unwrap()
        .run();
    // RunTrace carries every event, sample and counter; identical Debug
    // renderings mean the policy seam changed nothing on the default
    // path.
    assert_eq!(format!("{implicit:?}"), format!("{explicit:?}"));
}

#[test]
fn preemption_conserves_kernels() {
    let policy: GpuPolicy = "priority".parse().expect("known policy");
    let trace = Simulation::new(contended_config(Some(policy)))
        .unwrap()
        .run();
    assert!(
        !trace.preemptions.is_empty(),
        "mixed priorities under contention must exercise the preemption path"
    );

    // No kernel completes twice: a preempted kernel re-runs from
    // scratch, so exactly one Done survives per (pid, ec_seq, index).
    let mut completions = std::collections::HashMap::new();
    for ev in &trace.kernel_events {
        *completions
            .entry((ev.pid, ev.ec_seq, ev.kernel_index))
            .or_insert(0u32) += 1;
    }
    assert!(
        completions.values().all(|&c| c == 1),
        "duplicate kernel completion"
    );

    // Stream order survives the front-of-queue re-queue: each process's
    // completions advance strictly in (ec_seq, kernel_index) order, so
    // no kernel was lost or reordered by a cancellation.
    let mut last: std::collections::HashMap<usize, (u64, usize)> = std::collections::HashMap::new();
    for ev in &trace.kernel_events {
        let key = (ev.ec_seq, ev.kernel_index);
        if let Some(prev) = last.insert(ev.pid, key) {
            assert!(
                prev < key,
                "pid {} completed {key:?} after {prev:?}",
                ev.pid
            );
        }
    }

    for cut in &trace.preemptions {
        // The trace clamps the cut instant so it never precedes the
        // (possibly deferred) kernel start.
        assert!(cut.preempted_at >= cut.start);
        // The winner outranks the victim by construction.
        assert_ne!(cut.by_pid, cut.pid);
        // A preempted kernel that later completed did so after the cut.
        if let Some(ev) = trace.kernel_events.iter().find(|ev| {
            (ev.pid, ev.ec_seq, ev.kernel_index) == (cut.pid, cut.ec_seq, cut.kernel_index)
        }) {
            assert!(ev.end >= cut.preempted_at, "completion predates its cut");
        }
    }
}

#[test]
fn every_policy_makes_progress() {
    for name in ["rr", "fifo", "priority", "mps"] {
        let policy: GpuPolicy = name.parse().expect("known policy");
        let trace = Simulation::new(contended_config(Some(policy)))
            .unwrap()
            .run();
        assert!(
            trace.total_throughput() > 0.0,
            "{name} starved every process"
        );
    }
}
