//! Golden-trace parity suite for the component refactor.
//!
//! ISSUE 3 requires the `Runner` decomposition to be *bit-identical*:
//! the same seed must produce the same [`RunTrace`] — every event time,
//! every float, every fault record — before and after the split. This
//! suite pins a grid of seeds × process counts × precisions × devices
//! (plus cells that exercise the run-queue scheduler, MPS packing,
//! open-loop arrivals, Nsight instrumentation, and fault injection,
//! since each walks a distinct RNG path) and asserts an FNV-1a hash of
//! the full trace against values captured on the pre-refactor tree.
//!
//! To re-capture (only legitimate when the simulation *model* changes,
//! never for a pure refactor):
//!
//! ```text
//! JETSIM_GOLDEN_CAPTURE=1 cargo test -p jetsim-sim --test golden_parity -- --nocapture
//! ```

use jetsim_des::{SimDuration, SimTime};
use jetsim_device::presets;
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::{
    ArrivalModel, CpuModel, FaultKind, FaultPlan, GpuSharing, ProfilerMode, RunTrace, SimConfig,
    Simulation,
};

// --- deterministic trace hashing -----------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn time(&mut self, t: SimTime) {
        self.u64(t.as_nanos());
    }
    fn dur(&mut self, d: SimDuration) {
        self.u64(d.as_nanos());
    }
    fn bool(&mut self, b: bool) {
        self.u64(u64::from(b));
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for byte in s.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn opt_time(&mut self, t: Option<SimTime>) {
        match t {
            None => self.u64(0),
            Some(t) => {
                self.u64(1);
                self.time(t);
            }
        }
    }
}

/// Hashes every observable field of a [`RunTrace`] — floats by bit
/// pattern, times/durations as nanoseconds — so any behavioral drift
/// in the refactor flips the digest.
fn trace_hash(t: &RunTrace) -> u64 {
    let mut h = Fnv::new();
    h.str(&t.device_name);
    h.dur(t.measured);
    h.u64(t.processes.len() as u64);
    for p in &t.processes {
        h.str(&p.name);
        h.str(&p.engine_name);
        h.u64(u64::from(p.batch));
        h.u64(p.completed_ecs);
        h.u64(p.images);
        h.f64(p.throughput);
        h.dur(p.mean_ec_time);
        h.dur(p.p50_ec_time);
        h.dur(p.p95_ec_time);
        h.dur(p.p99_ec_time);
        h.dur(p.mean_launch_time);
        h.dur(p.mean_blocking_time);
        h.dur(p.mean_sync_time);
        h.dur(p.mean_gpu_time);
        h.dur(p.mean_queue_delay);
        h.opt_time(p.killed_at);
    }
    h.u64(t.kernel_names.len() as u64);
    for names in &t.kernel_names {
        h.u64(names.len() as u64);
        for name in names.iter() {
            h.str(name);
        }
    }
    h.u64(t.ec_records.len() as u64);
    for records in &t.ec_records {
        h.u64(records.len() as u64);
        for r in records {
            h.time(r.start);
            h.time(r.end);
            h.dur(r.launch_time);
            h.dur(r.blocking_time);
            h.dur(r.sync_time);
            h.dur(r.gpu_time);
            h.dur(r.queue_delay);
        }
    }
    h.u64(t.kernel_events.len() as u64);
    for e in &t.kernel_events {
        h.u64(e.pid as u64);
        h.u64(e.ec_seq);
        h.u64(e.kernel_index as u64);
        h.time(e.start);
        h.time(e.end);
        h.u64(e.precision as u64);
        h.f64(e.sm_active);
        h.f64(e.issue_slot);
        h.f64(e.tc_activity);
        h.u64(e.bytes);
    }
    h.u64(t.power_samples.len() as u64);
    for s in &t.power_samples {
        h.time(s.time);
        h.f64(s.watts);
        h.f64(s.gpu_utilization);
        h.u64(u64::from(s.gpu_freq_mhz));
        h.u64(s.gpu_memory_bytes);
        h.f64(s.cpu_busy_cores);
        h.f64(s.temp_c);
    }
    h.u64(t.fault_events.len() as u64);
    for f in &t.fault_events {
        h.time(f.time);
        match &f.kind {
            FaultKind::MemorySpikeStart { bytes } => {
                h.u64(1);
                h.u64(*bytes);
            }
            FaultKind::MemorySpikeEnd { bytes } => {
                h.u64(2);
                h.u64(*bytes);
            }
            FaultKind::ThrottleLockStart { step, mhz } => {
                h.u64(3);
                h.u64(*step as u64);
                h.u64(u64::from(*mhz));
            }
            FaultKind::ThrottleLockEnd => h.u64(4),
            FaultKind::ProcessKilled {
                pid,
                name,
                freed_bytes,
            } => {
                h.u64(5);
                h.u64(*pid as u64);
                h.str(name);
                h.u64(*freed_bytes);
            }
            // `FaultKind` is non_exhaustive; new variants must extend
            // this hash (and re-capture) deliberately.
            _ => h.u64(u64::MAX),
        }
    }
    h.bool(t.budget_exceeded);
    h.u64(t.sim_events);
    h.dur(t.gpu_busy);
    h.u64(t.gpu_memory_bytes);
    h.f64(t.gpu_memory_percent);
    h.u64(u64::from(t.final_freq_mhz));
    h.u64(u64::from(t.top_freq_mhz));
    h.f64(t.mem_bandwidth_bytes_per_sec);
    h.0
}

// --- the pinned grid ------------------------------------------------------

#[derive(Clone, Copy)]
enum Dev {
    Orin,
    Nano,
}

impl Dev {
    fn spec(self) -> jetsim_device::DeviceSpec {
        match self {
            Dev::Orin => presets::orin_nano(),
            Dev::Nano => presets::jetson_nano(),
        }
    }
    fn tag(self) -> &'static str {
        match self {
            Dev::Orin => "orin",
            Dev::Nano => "nano",
        }
    }
    /// Grid model per device: ResNet50 on Orin; YoloV8n on the 4 GB
    /// Nano, where 4 × ResNet50 genuinely does not fit (§6.2.1).
    fn model(self) -> jetsim_dnn::ModelGraph {
        match self {
            Dev::Orin => zoo::resnet50(),
            Dev::Nano => zoo::yolov8n(),
        }
    }
}

/// One parity cell: a fully pinned configuration and its captured hash.
struct Cell {
    id: String,
    trace: RunTrace,
}

fn base_cell(dev: Dev, precision: Precision, procs: u32, seed: u64) -> Cell {
    let config = SimConfig::builder(dev.spec())
        .add_model_processes(&dev.model(), precision, 2, procs)
        .expect("engine builds")
        .warmup(SimDuration::from_millis(150))
        .measure(SimDuration::from_millis(600))
        .seed(seed)
        .build()
        .expect("fits");
    Cell {
        id: format!("{}_{:?}_{}p_s{}", dev.tag(), precision, procs, seed),
        trace: Simulation::new(config).expect("valid").run(),
    }
}

/// The full pinned grid, covering every subsystem the refactor touches.
fn all_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    // Core grid: seeds × {1,2,4} procs × 2 precisions × both devices.
    for &seed in &[11u64, 42u64] {
        for dev in [Dev::Orin, Dev::Nano] {
            for precision in [Precision::Int8, Precision::Fp16] {
                for procs in [1u32, 2, 4] {
                    cells.push(base_cell(dev, precision, procs, seed));
                }
            }
        }
    }
    // Run-queue CPU scheduler (quantum time-sharing + spin-wait path).
    let config = SimConfig::builder(presets::orin_nano())
        .add_model_processes(&zoo::resnet50(), Precision::Fp16, 2, 6)
        .expect("engine builds")
        .cpu_model(CpuModel::RunQueue)
        .warmup(SimDuration::from_millis(150))
        .measure(SimDuration::from_millis(600))
        .seed(7)
        .build()
        .expect("fits");
    cells.push(Cell {
        id: "runqueue_orin_6p_s7".into(),
        trace: Simulation::new(config).expect("valid").run(),
    });
    // MPS spatial packing.
    let config = SimConfig::builder(presets::orin_nano())
        .add_model_processes(&zoo::yolov8n(), Precision::Fp16, 1, 3)
        .expect("engine builds")
        .gpu_sharing(GpuSharing::SpatialMps {
            overlap_efficiency: 0.3,
        })
        .warmup(SimDuration::from_millis(150))
        .measure(SimDuration::from_millis(600))
        .seed(13)
        .build()
        .expect("fits");
    cells.push(Cell {
        id: "mps_orin_3p_s13".into(),
        trace: Simulation::new(config).expect("valid").run(),
    });
    // Open-loop Poisson arrivals (queue-delay accounting + arrival RNG).
    let engine = {
        let config = SimConfig::builder(presets::orin_nano())
            .add_model(&zoo::resnet50(), Precision::Fp16, 1)
            .expect("engine builds")
            .build()
            .expect("fits");
        config.processes[0].engine.clone()
    };
    let config = SimConfig::builder(presets::orin_nano())
        .add_engine_with_arrivals(engine.clone(), ArrivalModel::Poisson { fps: 60.0 })
        .add_engine_with_arrivals(engine, ArrivalModel::Periodic { fps: 30.0 })
        .warmup(SimDuration::from_millis(150))
        .measure(SimDuration::from_millis(600))
        .seed(23)
        .build()
        .expect("fits");
    cells.push(Cell {
        id: "arrivals_orin_2p_s23".into(),
        trace: Simulation::new(config).expect("valid").run(),
    });
    // Nsight profiler mode (overhead factors + kernel-event trace RNG).
    let config = SimConfig::builder(presets::jetson_nano())
        .add_model_processes(&zoo::resnet50(), Precision::Fp16, 1, 2)
        .expect("engine builds")
        .profiler(ProfilerMode::Nsight)
        .warmup(SimDuration::from_millis(150))
        .measure(SimDuration::from_millis(600))
        .seed(31)
        .build()
        .expect("fits");
    cells.push(Cell {
        id: "nsight_nano_2p_s31".into(),
        trace: Simulation::new(config).expect("valid").run(),
    });
    // Fault plan: seeded spikes + throttle locks + OOM killer over an
    // over-committed deployment (memory guard + governor lock paths).
    let config = SimConfig::builder(presets::jetson_nano())
        .add_model_processes(&zoo::fcn_resnet50(), Precision::Fp32, 1, 4)
        .expect("engine builds")
        .faults(
            FaultPlan::seeded(99, SimDuration::from_millis(750), 2, 1)
                .oom_policy(jetsim_sim::OomPolicy::KillLargest),
        )
        .warmup(SimDuration::from_millis(150))
        .measure(SimDuration::from_millis(600))
        .seed(99)
        .build()
        .expect("fits under KillLargest");
    cells.push(Cell {
        id: "faults_nano_4p_s99".into(),
        trace: Simulation::new(config).expect("valid").run(),
    });
    cells
}

// --- golden hashes (captured pre-refactor) --------------------------------

/// Captured on the pre-refactor tree (`simulation.rs` god-object) with
/// `JETSIM_GOLDEN_CAPTURE=1`. The component split must reproduce every
/// one of these bit-for-bit.
const GOLDEN: &[(&str, u64)] = &[
    ("orin_Int8_1p_s11", 0x1d56a6bb2afe986b),
    ("orin_Int8_2p_s11", 0xddc0d0dd81b2bf24),
    ("orin_Int8_4p_s11", 0x66c26de431f2193e),
    ("orin_Fp16_1p_s11", 0x2f2f91b9ce8e9957),
    ("orin_Fp16_2p_s11", 0x1b031e2b030ed0ad),
    ("orin_Fp16_4p_s11", 0xb08f0fc4aba08e7c),
    ("nano_Int8_1p_s11", 0xa04e50568555ea7e),
    ("nano_Int8_2p_s11", 0x4f0ee62d163103e3),
    ("nano_Int8_4p_s11", 0xf928fb91bf2c96aa),
    ("nano_Fp16_1p_s11", 0x7d50f117c771a596),
    ("nano_Fp16_2p_s11", 0xefed57e2fa15e82d),
    ("nano_Fp16_4p_s11", 0xf969d7064ffb944c),
    ("orin_Int8_1p_s42", 0x27f6555944e90bfe),
    ("orin_Int8_2p_s42", 0x39d260e100b412ca),
    ("orin_Int8_4p_s42", 0xdfa2f4b0f1e95736),
    ("orin_Fp16_1p_s42", 0x90eec6bc5053c332),
    ("orin_Fp16_2p_s42", 0xc8005dbe339dd724),
    ("orin_Fp16_4p_s42", 0x211eb14761bb79ae),
    ("nano_Int8_1p_s42", 0x148c5203b5b2bb31),
    ("nano_Int8_2p_s42", 0xba7339e0218c8b83),
    ("nano_Int8_4p_s42", 0x36be4d4405285119),
    ("nano_Fp16_1p_s42", 0x73f58c7ab2f59002),
    ("nano_Fp16_2p_s42", 0xd1ed7fe94e90b383),
    ("nano_Fp16_4p_s42", 0xec909bcae46689d1),
    ("runqueue_orin_6p_s7", 0x92c2e19fd425d329),
    ("mps_orin_3p_s13", 0x086a958327a436c6),
    ("arrivals_orin_2p_s23", 0x3d7e3fe5f702973d),
    ("nsight_nano_2p_s31", 0x43f118ddefbebec9),
    ("faults_nano_4p_s99", 0xa325dc76b28556f6),
];

#[test]
fn golden_trace_parity() {
    let cells = all_cells();
    if std::env::var("JETSIM_GOLDEN_CAPTURE").is_ok() {
        println!("const GOLDEN: &[(&str, u64)] = &[");
        for cell in &cells {
            println!("    (\"{}\", 0x{:016x}),", cell.id, trace_hash(&cell.trace));
        }
        println!("];");
        return;
    }
    assert_eq!(
        cells.len(),
        GOLDEN.len(),
        "grid drifted from the captured table — re-capture deliberately"
    );
    let mut failures = Vec::new();
    for (cell, &(id, expected)) in cells.iter().zip(GOLDEN) {
        assert_eq!(cell.id, id, "cell order drifted");
        let got = trace_hash(&cell.trace);
        if got != expected {
            failures.push(format!(
                "{id}: expected 0x{expected:016x}, got 0x{got:016x}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden-trace parity broken:\n{}",
        failures.join("\n")
    );
}

/// The hash itself must be deterministic run-to-run (hardens the suite
/// against accidental iteration-order or HashMap nondeterminism in the
/// trace itself).
#[test]
fn trace_hash_is_reproducible() {
    let a = base_cell(Dev::Orin, Precision::Fp16, 2, 5);
    let b = base_cell(Dev::Orin, Precision::Fp16, 2, 5);
    assert_eq!(trace_hash(&a.trace), trace_hash(&b.trace));
    let c = base_cell(Dev::Orin, Precision::Fp16, 2, 6);
    assert_ne!(
        trace_hash(&a.trace),
        trace_hash(&c.trace),
        "different seeds should differ"
    );
}
