//! Behaviour of the request-level resilience machinery under injected
//! faults: deadlines, retries, hedging, circuit breaking and replica
//! recovery, exercised directly at the DES layer.

use std::sync::Arc;

use jetsim_des::{ArrivalProcess, SimDuration, SimTime};
use jetsim_device::presets;
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::serving::{
    BreakerPolicy, DropKind, HedgePolicy, RecoveryPolicy, RetryPolicy, ServeEventKind,
};
use jetsim_sim::{
    AdmissionPolicy, FaultPlan, OomPolicy, RunTrace, ServeGroup, ServePlan, SimConfig, Simulation,
};
use jetsim_trt::EngineBuilder;

fn engine(
    device: &jetsim_device::DeviceSpec,
    precision: Precision,
    batch: u32,
) -> Arc<jetsim_trt::Engine> {
    Arc::new(
        EngineBuilder::new(device)
            .precision(precision)
            .batch(batch)
            .build(&zoo::resnet50())
            .unwrap(),
    )
}

/// One resnet50 serve group on the Orin Nano with resilience knobs,
/// overloadable via `rate`.
fn orin_trace(rate: f64, servers: usize, group: impl FnOnce(ServeGroup) -> ServeGroup) -> RunTrace {
    let device = presets::orin_nano();
    let eng = engine(&device, Precision::Int8, 1);
    let mut builder = SimConfig::builder(device);
    for i in 0..servers {
        builder = builder.add_engine_named(format!("resnet50/{i}"), Arc::clone(&eng));
    }
    let g = group(ServeGroup::new("resnet50", ArrivalProcess::poisson(rate)).members(0..servers));
    let config = builder
        .serve(ServePlan::new().group(g))
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(900))
        .seed(42)
        .build()
        .unwrap();
    Simulation::new(config).unwrap().run()
}

/// Two fp16 resnet50 replicas on the Jetson Nano with a memory spike
/// sized to the whole board at t=300 ms: the OOM killer takes both
/// replicas, deterministically.
fn nano_oom_trace(group: impl FnOnce(ServeGroup) -> ServeGroup) -> RunTrace {
    let device = presets::jetson_nano();
    let eng = engine(&device, Precision::Fp16, 1);
    let g = group(ServeGroup::new("resnet50", ArrivalProcess::poisson(60.0)).members(0..2));
    let plan = FaultPlan::new()
        .memory_spike(
            SimTime::from_nanos(300_000_000),
            SimDuration::from_millis(100),
            4 << 30,
        )
        .oom_policy(OomPolicy::KillLargest);
    let config = SimConfig::builder(device)
        .add_engine_named("resnet50/0", Arc::clone(&eng))
        .add_engine_named("resnet50/1", Arc::clone(&eng))
        .serve(ServePlan::new().group(g))
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(700))
        .seed(13)
        .faults(plan)
        .build()
        .unwrap();
    Simulation::new(config).unwrap().run()
}

#[test]
fn deadline_expires_stale_queued_requests() {
    let deadline = SimDuration::from_millis(5);
    let trace = orin_trace(4000.0, 1, |g| g.queue_cap(64).deadline(deadline));
    let expired: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| matches!(r.dropped, Some(d) if d.kind == DropKind::DeadlineExpired))
        .collect();
    assert!(!expired.is_empty(), "overload must expire queued requests");
    for r in &expired {
        assert!(r.dispatched.is_none(), "expired requests never dispatched");
        let drop_at = r.dropped.unwrap().at;
        assert_eq!(
            drop_at.saturating_since(r.arrival),
            deadline,
            "a deadline drop fires exactly `deadline` after arrival"
        );
    }
}

#[test]
fn killed_replicas_fail_their_inflight_requests() {
    let trace = nano_oom_trace(|g| g.queue_cap(32));
    let killed: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| matches!(r.dropped, Some(d) if d.kind == DropKind::Killed))
        .collect();
    assert!(
        !killed.is_empty(),
        "requests in flight on an OOM-killed replica must be failed"
    );
    for r in &killed {
        assert!(r.dispatched.is_some(), "Killed means it was in flight");
        assert!(r.completed.is_none(), "Killed means it never completed");
    }
    let reported: usize = trace
        .serve_events
        .iter()
        .filter_map(|e| match e.kind {
            ServeEventKind::ReplicaDown {
                failed_inflight, ..
            } => Some(failed_inflight),
            _ => None,
        })
        .sum();
    assert_eq!(
        reported,
        killed.len(),
        "ReplicaDown events account for every killed in-flight request"
    );
    // No recovery policy: the group goes dark after both replicas die.
    assert!(trace
        .serve_events
        .iter()
        .all(|e| !matches!(e.kind, ServeEventKind::ReplicaUp { .. })));
    let last_kill = killed.iter().map(|r| r.dropped.unwrap().at).max().unwrap();
    assert!(
        !trace
            .requests
            .iter()
            .any(|r| matches!(r.completed, Some(at) if at > last_kill)),
        "nothing completes after the last replica dies"
    );
}

#[test]
fn recovery_restarts_replicas_and_resumes_serving() {
    let restart_cost = SimDuration::from_millis(200);
    let trace = nano_oom_trace(|g| {
        g.queue_cap(32)
            .recovery(RecoveryPolicy::new(restart_cost, 2))
    });
    let mut down_at = std::collections::HashMap::new();
    let mut recoveries = Vec::new();
    for e in &trace.serve_events {
        match e.kind {
            ServeEventKind::ReplicaDown { pid, .. } => {
                down_at.insert(pid, e.time);
            }
            ServeEventKind::ReplicaUp { pid } => {
                let down = down_at[&pid];
                recoveries.push((pid, down, e.time));
            }
            _ => {}
        }
    }
    assert!(!recoveries.is_empty(), "killed replicas must restart");
    for (pid, down, up) in &recoveries {
        assert!(
            up.saturating_since(*down) >= restart_cost,
            "pid {pid} recovered faster than its restart cost"
        );
    }
    let first_up = recoveries.iter().map(|(_, _, up)| *up).min().unwrap();
    assert!(
        trace
            .requests
            .iter()
            .any(|r| matches!(r.completed, Some(at) if at > first_up)),
        "serving resumes after the first replica recovers"
    );
}

#[test]
fn recovery_exhaustion_ejects_replicas() {
    let trace = nano_oom_trace(|g| {
        g.queue_cap(32)
            .recovery(RecoveryPolicy::new(SimDuration::from_millis(50), 0))
    });
    let ejected = trace
        .serve_events
        .iter()
        .filter(|e| matches!(e.kind, ServeEventKind::ReplicaEjected { .. }))
        .count();
    assert!(ejected > 0, "zero restarts means immediate ejection");
    assert!(
        trace
            .serve_events
            .iter()
            .all(|e| !matches!(e.kind, ServeEventKind::ReplicaUp { .. })),
        "an ejected replica never comes back"
    );
}

#[test]
fn retries_resubmit_dropped_requests_after_backoff() {
    let policy = RetryPolicy::new(3, SimDuration::from_millis(1));
    let trace = orin_trace(3000.0, 1, |g| {
        g.queue_cap(8)
            .admission(AdmissionPolicy::Reject)
            .retry(policy)
    });
    let retries: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| r.retry_of.is_some())
        .collect();
    assert!(!retries.is_empty(), "rejects under overload must retry");
    for r in &retries {
        let parent = &trace.requests[r.retry_of.unwrap()];
        assert_eq!(parent.group, r.group);
        assert_eq!(r.attempt, parent.attempt + 1, "attempts count up the chain");
        assert!(r.attempt < policy.max_attempts, "attempt budget respected");
        let failed_at = parent.dropped.expect("only failed attempts retry").at;
        assert!(
            r.arrival > failed_at,
            "a retry arrives strictly after its parent's failure (backoff > 0)"
        );
    }
}

#[test]
fn hedges_duplicate_slow_inflight_requests() {
    let trace = orin_trace(300.0, 2, |g| {
        g.queue_cap(64)
            .hedge(HedgePolicy::fixed(SimDuration::from_millis(1)))
    });
    let hedges: Vec<_> = trace
        .requests
        .iter()
        .filter(|r| r.hedge_of.is_some())
        .collect();
    assert!(!hedges.is_empty(), "a 1 ms hedge delay must fire");
    for h in &hedges {
        let primary = &trace.requests[h.hedge_of.unwrap()];
        assert!(
            primary.dispatched.is_some(),
            "only in-flight requests are hedged"
        );
        assert_eq!(primary.group, h.group);
        assert!(h.arrival > primary.arrival);
    }
    // A cancelled twin was still queued — it never ran.
    for r in trace
        .requests
        .iter()
        .filter(|r| matches!(r.dropped, Some(d) if d.kind == DropKind::HedgeLoser))
    {
        assert!(
            r.dispatched.is_none(),
            "hedge losers are cancelled in-queue"
        );
        assert!(r.completed.is_none());
    }
}

#[test]
fn tripped_breaker_blocks_admissions_until_the_probe() {
    let trace = orin_trace(4000.0, 1, |g| {
        g.queue_cap(8)
            .admission(AdmissionPolicy::Reject)
            .breaker(BreakerPolicy::new(16, 0.5).cooldown(SimDuration::from_millis(20)))
    });
    let trip = trace
        .serve_events
        .iter()
        .find(|e| matches!(e.kind, ServeEventKind::BreakerTrip { .. }))
        .expect("a flood of rejects must trip the breaker");
    let half_open = trace
        .serve_events
        .iter()
        .find(|e| e.time > trip.time && matches!(e.kind, ServeEventKind::BreakerHalfOpen))
        .expect("the cooldown must elapse inside the run");
    assert!(
        half_open.time.saturating_since(trip.time) >= SimDuration::from_millis(20),
        "no probe before the cooldown"
    );
    let mut gated = 0usize;
    for r in &trace.requests {
        if r.arrival > trip.time && r.arrival < half_open.time {
            assert_eq!(
                r.dropped.map(|d| d.kind),
                Some(DropKind::BreakerOpen),
                "an open breaker admits nothing (request at {:?})",
                r.arrival
            );
            gated += 1;
        }
    }
    assert!(gated > 0, "arrivals landed while the breaker was open");
}

#[test]
fn faulted_resilient_runs_replay_bit_identically() {
    let mk = || {
        nano_oom_trace(|g| {
            g.queue_cap(32)
                .deadline(SimDuration::from_millis(500))
                .retry(RetryPolicy::new(3, SimDuration::from_millis(50)))
                .breaker(BreakerPolicy::new(16, 0.5))
                .recovery(RecoveryPolicy::new(SimDuration::from_millis(200), 2))
        })
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.requests, b.requests, "same seed, same request timeline");
    assert_eq!(a.serve_events, b.serve_events);
    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.sim_events, b.sim_events);
}
