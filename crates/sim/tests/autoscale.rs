//! Behaviour of the serverless autoscaling layer at the DES level:
//! burst-driven scale-up with cold starts, idle reaping, scale-to-zero
//! parking, and interaction with the OOM-recovery machinery.

use std::collections::HashSet;
use std::sync::Arc;

use jetsim_des::{ArrivalProcess, SimDuration, SimTime};
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::serving::{AutoscalerPolicy, RecoveryPolicy, ServeEventKind};
use jetsim_sim::{FaultPlan, OomPolicy, RunTrace, ServeGroup, ServePlan, SimConfig, Simulation};
use jetsim_trt::EngineBuilder;

const COLD: SimDuration = SimDuration::from_millis(60);
const WARM: SimDuration = SimDuration::from_millis(12);

/// A resnet50 group on the Orin Nano with `members` replica slots,
/// shaped by `group` and run for `measure_ms`.
fn trace(
    arrivals: ArrivalProcess,
    members: usize,
    measure_ms: u64,
    seed: u64,
    faults: Option<FaultPlan>,
    group: impl FnOnce(ServeGroup) -> ServeGroup,
) -> RunTrace {
    let device = jetsim_device::presets::orin_nano();
    let eng = Arc::new(
        EngineBuilder::new(&device)
            .precision(Precision::Int8)
            .batch(1)
            .build(&zoo::resnet50())
            .unwrap(),
    );
    let mut builder = SimConfig::builder(device);
    for i in 0..members {
        builder = builder.add_engine_named(format!("resnet50/{i}"), Arc::clone(&eng));
    }
    let g = group(ServeGroup::new("resnet50", arrivals).members(0..members));
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let config = builder
        .serve(ServePlan::new().group(g))
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(measure_ms))
        .seed(seed)
        .build()
        .unwrap();
    Simulation::new(config).unwrap().run()
}

fn scaler(min: u32, max: u32) -> AutoscalerPolicy {
    AutoscalerPolicy::new(min, max)
        .target_queue_per_replica(2.0)
        .evaluate_every(SimDuration::from_millis(10))
        .keep_alive(SimDuration::from_millis(80))
        .start_costs(COLD, WARM)
}

#[test]
fn burst_scales_up_and_charges_the_start_cost() {
    // Calm 20 qps, bursts of 2500 qps: one replica drowns immediately.
    let arrivals = ArrivalProcess::mmpp(
        20.0,
        2500.0,
        SimDuration::from_millis(150),
        SimDuration::from_millis(150),
    );
    let t = trace(arrivals, 3, 1200, 7, None, |g| {
        g.queue_cap(256).autoscaler(scaler(1, 3))
    });
    let provisioned: Vec<(usize, SimTime, bool)> = t
        .serve_events
        .iter()
        .filter_map(|e| match e.kind {
            ServeEventKind::ReplicaProvisioned { pid, cold } => Some((pid, e.time, cold)),
            _ => None,
        })
        .collect();
    assert!(
        !provisioned.is_empty(),
        "a 2500 qps burst against one up replica must provision more"
    );
    assert!(
        provisioned.iter().all(|(_, _, cold)| !cold),
        "a floor replica built the engine at t=0, so scale-ups warm-load the plan"
    );
    // Every provision's Warmed event lands exactly the configured start
    // cost later (cold = engine build + plan load, warm = plan load).
    for (pid, at, cold) in &provisioned {
        let warmed = t
            .serve_events
            .iter()
            .find(|e| {
                e.time >= *at
                    && matches!(e.kind, ServeEventKind::ReplicaWarmed { pid: p } if p == *pid)
            })
            .map(|e| e.time);
        if let Some(warmed) = warmed {
            let cost = if *cold { COLD } else { WARM };
            assert_eq!(
                warmed.saturating_since(*at),
                cost,
                "pid {pid} cold={cold}: provision -> serving must take the start cost"
            );
        }
    }
    // The cold start is visible to requests: something completed after
    // the scale-up, i.e. the burst was actually absorbed.
    assert!(
        t.requests.iter().filter(|r| r.completed.is_some()).count() > 0,
        "scaled-up group serves"
    );
}

#[test]
fn idle_calm_reaps_back_to_the_floor() {
    // A hot opening burst, then calm: the scaled-up replicas idle out.
    let arrivals = ArrivalProcess::mmpp(
        5.0,
        2000.0,
        SimDuration::from_millis(400),
        SimDuration::from_millis(120),
    );
    let t = trace(arrivals, 3, 1500, 11, None, |g| {
        g.queue_cap(256).autoscaler(scaler(1, 3))
    });
    let reaps = t
        .serve_events
        .iter()
        .filter(|e| matches!(e.kind, ServeEventKind::ReplicaReaped { .. }))
        .count();
    assert!(reaps > 0, "idle replicas above the floor must be reaped");
    // Replay the lifecycle: the up-set never exceeds the ceiling and
    // ends at (or above, mid-provision) the floor minus kills.
    let mut up: HashSet<usize> = HashSet::new();
    let mut seeded = false;
    for e in &t.serve_events {
        match e.kind {
            ServeEventKind::ReplicaWarmed { pid } => {
                up.insert(pid);
                seeded = true;
            }
            ServeEventKind::ReplicaReaped { pid } | ServeEventKind::ReplicaDown { pid, .. } => {
                up.remove(&pid);
            }
            _ => {}
        }
        assert!(up.len() <= 3, "up-set above the max_replicas ceiling");
    }
    assert!(seeded, "initial floor replicas emit ReplicaWarmed at t=0");
}

#[test]
fn scale_to_zero_parks_and_the_next_arrival_pays_the_start() {
    // Sparse arrivals (~15 qps) with a 20 ms keep-alive: the group
    // parks between requests.
    let scaler = AutoscalerPolicy::new(0, 2)
        .target_queue_per_replica(1.0)
        .evaluate_every(SimDuration::from_millis(5))
        .keep_alive(SimDuration::from_millis(20))
        .start_costs(COLD, WARM);
    let t = trace(ArrivalProcess::poisson(15.0), 2, 1200, 3, None, |g| {
        g.queue_cap(64).autoscaler(scaler)
    });
    let parks: Vec<SimTime> = t
        .serve_events
        .iter()
        .filter(|e| matches!(e.kind, ServeEventKind::ParkedToZero))
        .map(|e| e.time)
        .collect();
    assert!(!parks.is_empty(), "min_replicas=0 must park the idle group");
    // With no floor replica, nothing built the engine at t=0: the very
    // first provision pays the full cold start, later ones warm-load.
    let first_provision = t
        .serve_events
        .iter()
        .find_map(|e| match e.kind {
            ServeEventKind::ReplicaProvisioned { cold, .. } => Some(cold),
            _ => None,
        })
        .expect("a scale-from-zero group provisions on first arrival");
    assert!(first_provision, "first provision from zero is cold");
    // After each park the group has no live replica, so the next
    // provision comes strictly later and the unpark request waits at
    // least the (warm) start cost before dispatch.
    let first_park = parks[0];
    let reprovision = t
        .serve_events
        .iter()
        .find(|e| {
            e.time > first_park && matches!(e.kind, ServeEventKind::ReplicaProvisioned { .. })
        })
        .expect("an arrival after the park re-provisions");
    let warmed_after = t
        .serve_events
        .iter()
        .find(|e| {
            e.time >= reprovision.time && matches!(e.kind, ServeEventKind::ReplicaWarmed { .. })
        })
        .expect("the re-provisioned replica warms");
    assert!(
        warmed_after.time.saturating_since(reprovision.time) >= WARM,
        "unparking costs at least the warm start"
    );
    let unpark_request = t
        .requests
        .iter()
        .filter(|r| r.arrival > first_park && r.arrival <= reprovision.time)
        .find(|r| r.dispatched.is_some());
    if let Some(r) = unpark_request {
        assert!(
            r.dispatched.unwrap().saturating_since(r.arrival) >= WARM,
            "the arrival that wakes a parked group eats the start cost"
        );
    }
}

#[test]
fn oom_kill_plus_recovery_never_double_provisions() {
    // A spike sized to force the OOM killer while the autoscaler and
    // the recovery machinery are both armed: each pid's lifecycle must
    // stay an alternation (never provisioned while provisioning, never
    // warmed while already up).
    let plan = FaultPlan::new()
        .memory_spike(
            SimTime::from_nanos(400_000_000),
            SimDuration::from_millis(120),
            7 << 30,
        )
        .oom_policy(OomPolicy::KillLargest);
    let t = trace(
        ArrivalProcess::poisson(400.0),
        3,
        1200,
        5,
        Some(plan),
        |g| {
            g.queue_cap(256)
                .autoscaler(scaler(1, 3))
                .recovery(RecoveryPolicy::new(SimDuration::from_millis(40), 2))
        },
    );
    assert!(
        t.serve_events
            .iter()
            .any(|e| matches!(e.kind, ServeEventKind::ReplicaDown { .. })),
        "the spike must kill at least one replica"
    );
    let mut up: HashSet<usize> = HashSet::new();
    let mut provisioning: HashSet<usize> = HashSet::new();
    for e in &t.serve_events {
        match e.kind {
            ServeEventKind::ReplicaProvisioned { pid, .. } => {
                assert!(
                    !provisioning.contains(&pid),
                    "pid {pid} provisioned twice without warming"
                );
                assert!(!up.contains(&pid), "pid {pid} provisioned while up");
                provisioning.insert(pid);
            }
            ServeEventKind::ReplicaWarmed { pid } => {
                provisioning.remove(&pid);
                assert!(up.insert(pid), "pid {pid} warmed while already up");
            }
            ServeEventKind::ReplicaReaped { pid } => {
                assert!(up.remove(&pid), "pid {pid} reaped while not up");
            }
            ServeEventKind::ReplicaDown { pid, .. } => {
                // A kill lands whatever the scale state; it cancels any
                // pending provision.
                up.remove(&pid);
                provisioning.remove(&pid);
            }
            _ => {}
        }
        assert!(
            up.len() <= 3,
            "more live replicas than the group has members"
        );
    }
}

#[test]
fn absent_autoscaler_is_static_and_byte_identical() {
    let run = || {
        trace(ArrivalProcess::poisson(300.0), 2, 800, 99, None, |g| {
            g.queue_cap(64)
        })
    };
    let a = run();
    let b = run();
    assert!(
        !a.serve_events.iter().any(|e| matches!(
            e.kind,
            ServeEventKind::ReplicaProvisioned { .. }
                | ServeEventKind::ReplicaWarmed { .. }
                | ServeEventKind::ReplicaReaped { .. }
                | ServeEventKind::ParkedToZero
        )),
        "a group without an autoscaler emits no scaling events"
    );
    assert_eq!(
        a.requests.len(),
        b.requests.len(),
        "static serving replays deterministically"
    );
    for (x, y) in a.requests.iter().zip(&b.requests) {
        assert_eq!(x.arrival, y.arrival);
        assert_eq!(x.dispatched, y.dispatched);
        assert_eq!(x.completed, y.completed);
    }
}
