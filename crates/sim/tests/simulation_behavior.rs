//! Behavioural tests for the simulation, exercised through the public
//! API only. These were originally the in-file unit tests of the
//! pre-component-split `simulation.rs`; they moved here unchanged when
//! the runner was decomposed into `components/`.

use jetsim_des::{SimDuration, SimTime};
use jetsim_device::{presets, DeviceSpec};
use jetsim_dnn::{zoo, Precision};
use jetsim_sim::config::ProfilerMode;
use jetsim_sim::{SimConfig, Simulation};

fn quick_config(
    device: DeviceSpec,
    model: &jetsim_dnn::ModelGraph,
    precision: Precision,
    batch: u32,
    procs: u32,
) -> SimConfig {
    SimConfig::builder(device)
        .add_model_processes(model, precision, batch, procs)
        .expect("engine builds")
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(1000))
        .build()
        .expect("config builds")
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let config = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            2,
        );
        Simulation::new(config).unwrap().run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_throughput(), b.total_throughput());
    assert_eq!(a.kernel_events.len(), b.kernel_events.len());
    assert_eq!(a.mean_power(), b.mean_power());
}

#[test]
fn different_seed_changes_details_not_shape() {
    let config = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    );
    let mut config2 = config.clone();
    config2.seed = 99;
    let a = Simulation::new(config).unwrap().run();
    let b = Simulation::new(config2).unwrap().run();
    assert_ne!(a.kernel_events.len(), 0);
    let ratio = a.total_throughput() / b.total_throughput();
    assert!(
        (0.9..1.1).contains(&ratio),
        "seeds change jitter only: {ratio}"
    );
}

#[test]
fn single_process_resnet_int8_orin_throughput() {
    let config = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    );
    let trace = Simulation::new(config).unwrap().run();
    let tput = trace.total_throughput();
    assert!((250.0..700.0).contains(&tput), "tput = {tput}");
}

#[test]
fn throughput_per_process_falls_with_concurrency() {
    let t1 = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::yolov8n(),
        Precision::Int8,
        1,
        1,
    ))
    .unwrap()
    .run();
    let t8 = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::yolov8n(),
        Precision::Int8,
        1,
        8,
    ))
    .unwrap()
    .run();
    assert!(
        t8.throughput_per_process() < t1.throughput_per_process() / 3.0,
        "T/P must collapse: {} vs {}",
        t8.throughput_per_process(),
        t1.throughput_per_process()
    );
}

#[test]
fn blocking_negligible_when_cores_suffice() {
    let trace = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        2,
    ))
    .unwrap()
    .run();
    for p in &trace.processes {
        assert!(
            p.mean_blocking_time < SimDuration::from_micros(100),
            "{}: blocking {}",
            p.name,
            p.mean_blocking_time
        );
    }
}

#[test]
fn blocking_dominates_when_oversubscribed() {
    let trace = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        8,
    ))
    .unwrap()
    .run();
    for p in &trace.processes {
        assert!(
            p.mean_blocking_time > SimDuration::from_millis(5),
            "{}: blocking {}",
            p.name,
            p.mean_blocking_time
        );
    }
}

#[test]
fn power_respects_budget_with_dvfs() {
    for (device, model) in [
        (presets::orin_nano(), zoo::fcn_resnet50()),
        (presets::jetson_nano(), zoo::fcn_resnet50()),
    ] {
        let budget = device.power.budget_w;
        let config = quick_config(device, &model, Precision::Fp32, 4, 1);
        let trace = Simulation::new(config).unwrap().run();
        assert!(
            trace.mean_power() <= budget * 1.08,
            "mean power {} exceeds budget {budget}",
            trace.mean_power()
        );
    }
}

#[test]
fn fp32_triggers_downclock_on_orin() {
    let config = quick_config(
        presets::orin_nano(),
        &zoo::fcn_resnet50(),
        Precision::Fp32,
        4,
        1,
    );
    let trace = Simulation::new(config).unwrap().run();
    assert!(
        trace.final_freq_mhz < 625,
        "DVFS should throttle fp32: {} MHz",
        trace.final_freq_mhz
    );
}

#[test]
fn int8_leaves_clock_at_top() {
    let config = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    );
    let trace = Simulation::new(config).unwrap().run();
    assert_eq!(trace.final_freq_mhz, 625);
}

#[test]
fn nsight_profiler_halves_throughput() {
    let base = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    );
    let mut nsight = base.clone();
    nsight.profiler = ProfilerMode::Nsight;
    let light = Simulation::new(base).unwrap().run().total_throughput();
    let heavy = Simulation::new(nsight).unwrap().run().total_throughput();
    let reduction = 1.0 - heavy / light;
    assert!(
        (0.3..0.7).contains(&reduction),
        "paper §4: ~50% intrusion, got {reduction:.2}"
    );
}

#[test]
fn kernel_events_cover_all_processes() {
    let trace = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Fp16,
        1,
        2,
    ))
    .unwrap()
    .run();
    assert!(trace.kernel_events.iter().any(|e| e.pid == 0));
    assert!(trace.kernel_events.iter().any(|e| e.pid == 1));
    for e in &trace.kernel_events {
        assert!(e.end > e.start);
        assert!((0.0..=1.0).contains(&e.sm_active));
        assert!((0.0..=0.8).contains(&e.issue_slot));
        assert!((0.0..=1.0).contains(&e.tc_activity));
    }
}

#[test]
fn gpu_busy_never_exceeds_wall() {
    let trace = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::fcn_resnet50(),
        Precision::Fp16,
        1,
        2,
    ))
    .unwrap()
    .run();
    assert!(trace.gpu_utilization() <= 1.0);
    assert!(
        trace.gpu_utilization() > 0.5,
        "two FCN procs saturate the GPU"
    );
}

#[test]
fn ec_decomposition_parts_bounded_by_total() {
    let trace = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        4,
    ))
    .unwrap()
    .run();
    for records in &trace.ec_records {
        for r in records {
            assert!(r.launch_time + r.blocking_time <= r.duration() + SimDuration::from_micros(1));
        }
    }
}

#[test]
fn batch_raises_throughput_per_process() {
    let b1 = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::yolov8n(),
        Precision::Int8,
        1,
        1,
    ))
    .unwrap()
    .run();
    let b16 = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::yolov8n(),
        Precision::Int8,
        16,
        1,
    ))
    .unwrap()
    .run();
    assert!(
        b16.throughput_per_process() > b1.throughput_per_process() * 1.1,
        "batch must help: {} vs {}",
        b16.throughput_per_process(),
        b1.throughput_per_process()
    );
}

#[test]
fn mps_sharing_recovers_concurrent_throughput() {
    // The MPS ablation: spatial sharing should beat Jetson's
    // time-multiplexing for multi-process workloads (paper §2 explains
    // Jetson lacks MPS; this quantifies the cost).
    let base = quick_config(
        presets::orin_nano(),
        &zoo::fcn_resnet50(),
        Precision::Fp16,
        1,
        4,
    );
    let mut mps = base.clone();
    mps.gpu_sharing = jetsim_sim::config::GpuSharing::SpatialMps {
        overlap_efficiency: 0.3,
    };
    let tm = Simulation::new(base).unwrap().run().total_throughput();
    let sp = Simulation::new(mps).unwrap().run().total_throughput();
    assert!(sp > tm * 1.1, "MPS {sp} vs time-multiplexed {tm}");
}

#[test]
fn latency_percentiles_ordered() {
    let trace = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        4,
    ))
    .unwrap()
    .run();
    for p in &trace.processes {
        assert!(p.p50_ec_time <= p.p95_ec_time);
        assert!(p.p95_ec_time <= p.p99_ec_time);
        assert!(p.p99_ec_time > SimDuration::ZERO);
    }
}

fn rq_config(procs: u32) -> SimConfig {
    let mut config = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        procs,
    );
    config.cpu_model = jetsim_sim::config::CpuModel::RunQueue;
    config
}

#[test]
fn run_queue_single_process_matches_stochastic_regime() {
    let stochastic = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    ))
    .unwrap()
    .run();
    let rq = Simulation::new(rq_config(1)).unwrap().run();
    // With a dedicated core the scheduler is irrelevant: both models
    // must land in the same throughput regime.
    let ratio = rq.total_throughput() / stochastic.total_throughput();
    assert!((0.8..1.25).contains(&ratio), "ratio = {ratio}");
    assert!(
        rq.processes[0].mean_blocking_time < SimDuration::from_micros(200),
        "{}",
        rq.processes[0].mean_blocking_time
    );
}

#[test]
fn run_queue_oversubscription_collapses_mechanically() {
    // 8 spin-waiting threads on 3 heavy cores: quantum time-sharing
    // alone must blow the EC up — no tuned probabilities involved.
    let p2 = Simulation::new(rq_config(2)).unwrap().run();
    let p8 = Simulation::new(rq_config(8)).unwrap().run();
    let ec2 = p2.mean_ec_time();
    let ec8 = p8.mean_ec_time();
    assert!(
        ec8 > ec2 * 3,
        "EC must explode past the heavy cores: {ec2} -> {ec8}"
    );
    assert!(
        p8.throughput_per_process() < p2.throughput_per_process() / 2.5,
        "{} vs {}",
        p8.throughput_per_process(),
        p2.throughput_per_process()
    );
}

#[test]
fn run_queue_blocking_appears_only_when_oversubscribed() {
    let p3 = Simulation::new(rq_config(3)).unwrap().run();
    for p in &p3.processes {
        assert!(
            p.mean_blocking_time < SimDuration::from_millis(1),
            "{}: {}",
            p.name,
            p.mean_blocking_time
        );
    }
    let p6 = Simulation::new(rq_config(6)).unwrap().run();
    let any_blocked = p6
        .processes
        .iter()
        .any(|p| p.mean_blocking_time > SimDuration::from_millis(1));
    assert!(any_blocked, "queue waits must surface as blocking");
}

#[test]
fn run_queue_is_deterministic() {
    let a = Simulation::new(rq_config(4)).unwrap().run();
    let b = Simulation::new(rq_config(4)).unwrap().run();
    assert_eq!(a.total_throughput(), b.total_throughput());
    assert_eq!(a.kernel_events.len(), b.kernel_events.len());
}

#[test]
fn periodic_arrivals_throttle_throughput() {
    // A 30 fps camera feeding a 400+ img/s engine: throughput pins to
    // the offered rate and the GPU goes mostly idle.
    let engine = std::sync::Arc::new(
        jetsim_trt::EngineBuilder::new(&presets::orin_nano())
            .precision(Precision::Int8)
            .build(&zoo::resnet50())
            .unwrap(),
    );
    let config_for = |arrivals| {
        SimConfig::builder(presets::orin_nano())
            .add_engine_with_arrivals(std::sync::Arc::clone(&engine), arrivals)
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_millis(1000))
            .build()
            .unwrap()
    };
    let open = Simulation::new(config_for(jetsim_sim::config::ArrivalModel::Periodic {
        fps: 30.0,
    }))
    .unwrap()
    .run();
    assert!(
        (24.0..33.0).contains(&open.total_throughput()),
        "pinned to offered rate: {}",
        open.total_throughput()
    );
    assert!(open.gpu_utilization() < 0.4, "mostly idle GPU");
    // Queue delay stays ~0: the engine drains each frame instantly.
    assert!(
        open.processes[0].mean_queue_delay < SimDuration::from_millis(1),
        "{}",
        open.processes[0].mean_queue_delay
    );
}

#[test]
fn overloaded_open_loop_builds_queue_delay() {
    // Offer 60 fps to an FCN engine that only sustains ~18 img/s:
    // the backlog grows and queueing delay dwarfs service time.
    let engine = std::sync::Arc::new(
        jetsim_trt::EngineBuilder::new(&presets::orin_nano())
            .precision(Precision::Fp16)
            .build(&zoo::fcn_resnet50())
            .unwrap(),
    );
    let config = SimConfig::builder(presets::orin_nano())
        .add_engine_with_arrivals(
            std::sync::Arc::clone(&engine),
            jetsim_sim::config::ArrivalModel::Periodic { fps: 60.0 },
        )
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(1500))
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    assert!(
        trace.processes[0].mean_queue_delay > SimDuration::from_millis(100),
        "backlog must accumulate: {}",
        trace.processes[0].mean_queue_delay
    );
}

#[test]
fn poisson_arrivals_average_the_offered_rate() {
    let engine = std::sync::Arc::new(
        jetsim_trt::EngineBuilder::new(&presets::orin_nano())
            .precision(Precision::Int8)
            .build(&zoo::resnet50())
            .unwrap(),
    );
    let config = SimConfig::builder(presets::orin_nano())
        .add_engine_with_arrivals(
            std::sync::Arc::clone(&engine),
            jetsim_sim::config::ArrivalModel::Poisson { fps: 100.0 },
        )
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_secs(2))
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    let t = trace.total_throughput();
    assert!((75.0..125.0).contains(&t), "mean rate ≈100: {t}");
}

#[test]
fn temperature_rises_under_load_but_stays_safe() {
    let trace = Simulation::new(quick_config(
        presets::orin_nano(),
        &zoo::fcn_resnet50(),
        Precision::Fp16,
        1,
        1,
    ))
    .unwrap()
    .run();
    let first = trace.power_samples.first().unwrap().temp_c;
    let last = trace.power_samples.last().unwrap().temp_c;
    assert!(last > first, "junction must warm up: {first} -> {last}");
    assert!(last < 60.0, "short runs stay far from the throttle point");
}

#[test]
fn tiny_thermal_mass_forces_throttling() {
    // An artificial device with negligible thermal capacitance and a
    // low ceiling hits the thermal limit within the run, forcing the
    // governor down even though power is within budget.
    let mut device = presets::orin_nano();
    device.thermal.capacitance_j_per_c = 0.05;
    device.thermal.throttle_c = 45.0;
    device.power.budget_w = 50.0; // power limit out of the picture
    let config = SimConfig::builder(device)
        .add_model(&zoo::resnet50(), Precision::Fp16, 4)
        .unwrap()
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(1000))
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    assert!(
        trace.final_freq_mhz < 625,
        "thermal throttle must engage: {} MHz at {:.1} C",
        trace.final_freq_mhz,
        trace.power_samples.last().unwrap().temp_c
    );
}

#[test]
fn oom_killer_resolves_fcn_overdeployment_on_nano() {
    // Paper §6.2.1: 4 × FCN_ResNet50 reboots the Jetson Nano. Under
    // `OomPolicy::KillLargest` the reboot becomes a simulated
    // outcome: the OOM killer culls the deployment at admission and
    // the survivors report real throughput.
    use jetsim_sim::faults::{FaultKind, FaultPlan};
    let config = SimConfig::builder(presets::jetson_nano())
        .add_model_processes(&zoo::fcn_resnet50(), Precision::Fp16, 1, 4)
        .unwrap()
        // FCN on the Nano takes ~0.7 s per EC solo and ~2 s when the
        // survivors share the GPU, so give the window room to breathe.
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_millis(8000))
        .faults(FaultPlan::kill_largest_on_oom())
        .build()
        .expect("kill policy admits the overcommit");
    let trace = Simulation::new(config).unwrap().run();
    assert!(trace.killed_processes() >= 1, "someone must die");
    assert!(trace.killed_processes() < 4, "someone must survive");
    assert!(trace.surviving_throughput() > 0.0, "survivors keep working");
    let kills = trace
        .fault_events
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::ProcessKilled { .. }))
        .count();
    assert_eq!(kills, trace.killed_processes(), "one event per casualty");
    for p in &trace.processes {
        if p.killed_at.is_some() {
            assert_eq!(p.completed_ecs, 0, "killed at t=0, never ran");
        }
    }
}

#[test]
fn midrun_memory_spike_triggers_oom_kill() {
    use jetsim_sim::faults::{FaultKind, FaultPlan};
    // 4 ResNet50 processes fit on the Nano; a 3 GiB background
    // allocation 500 ms in does not.
    let spike_at = SimTime::from_nanos(500_000_000);
    let config = SimConfig::builder(presets::jetson_nano())
        .add_model_processes(&zoo::resnet50(), Precision::Fp16, 1, 4)
        .unwrap()
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(1000))
        .faults(FaultPlan::kill_largest_on_oom().memory_spike(
            spike_at,
            SimDuration::from_millis(300),
            3 << 30,
        ))
        .build()
        .unwrap();
    let trace = Simulation::new(config).unwrap().run();
    assert!(trace.killed_processes() >= 1, "spike must force a kill");
    for p in &trace.processes {
        if let Some(at) = p.killed_at {
            assert!(at >= spike_at, "kills happen when the spike lands");
        }
    }
    assert!(trace
        .fault_events
        .iter()
        .any(|e| matches!(e.kind, FaultKind::MemorySpikeStart { .. })));
    assert!(trace
        .fault_events
        .iter()
        .any(|e| matches!(e.kind, FaultKind::MemorySpikeEnd { .. })));
}

#[test]
fn throttle_lock_pins_the_clock_low() {
    use jetsim_sim::faults::{FaultKind, FaultPlan};
    // Int8 ResNet50 normally leaves the Orin clock at the top
    // (`int8_leaves_clock_at_top`); a lock covering the whole run
    // pins it to the bottom ladder step instead.
    let mut config = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    );
    let base = Simulation::new(config.clone()).unwrap().run();
    config.faults = FaultPlan::new().throttle_lock(SimTime::ZERO, SimDuration::from_secs(30), 0);
    let locked = Simulation::new(config).unwrap().run();
    assert!(
        locked.final_freq_mhz < base.final_freq_mhz,
        "{} !< {}",
        locked.final_freq_mhz,
        base.final_freq_mhz
    );
    assert!(
        locked.total_throughput() < base.total_throughput() * 0.8,
        "pinned clock must cost throughput: {} vs {}",
        locked.total_throughput(),
        base.total_throughput()
    );
    assert!(locked
        .fault_events
        .iter()
        .any(|e| matches!(e.kind, FaultKind::ThrottleLockStart { .. })));
}

#[test]
fn throttle_lock_releases_and_governor_recovers() {
    use jetsim_sim::faults::{FaultKind, FaultPlan};
    let mut config = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        1,
    );
    // Lock only the first 300 ms of a 1.2 s run.
    config.faults = FaultPlan::new().throttle_lock(SimTime::ZERO, SimDuration::from_millis(300), 0);
    let trace = Simulation::new(config).unwrap().run();
    assert!(trace
        .fault_events
        .iter()
        .any(|e| matches!(e.kind, FaultKind::ThrottleLockEnd)));
    assert_eq!(
        trace.final_freq_mhz, 625,
        "int8 load climbs back to the top after release"
    );
}

#[test]
fn event_budget_watchdog_aborts_runaway_runs() {
    let mut config = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Int8,
        1,
        2,
    );
    config.event_budget = Some(500);
    let trace = Simulation::new(config.clone()).unwrap().run();
    assert!(trace.budget_exceeded, "500 events cannot finish this run");
    assert!(trace.sim_events <= 500);
    config.event_budget = Some(u64::MAX);
    let full = Simulation::new(config).unwrap().run();
    assert!(!full.budget_exceeded);
    assert!(full.sim_events > 500);
}

#[test]
fn empty_fault_plan_is_byte_identical_to_no_plan() {
    use jetsim_sim::faults::FaultPlan;
    let base = quick_config(
        presets::orin_nano(),
        &zoo::resnet50(),
        Precision::Fp16,
        2,
        2,
    );
    let mut with_plan = base.clone();
    with_plan.faults = FaultPlan::new(); // explicitly attached, still empty
    let a = Simulation::new(base).unwrap().run();
    let b = Simulation::new(with_plan).unwrap().run();
    assert_eq!(a.total_throughput(), b.total_throughput());
    assert_eq!(a.kernel_events, b.kernel_events);
    assert_eq!(a.power_samples, b.power_samples);
    assert_eq!(a.sim_events, b.sim_events);
    assert!(b.fault_events.is_empty());
}

#[test]
fn fault_injection_is_deterministic() {
    use jetsim_sim::faults::FaultPlan;
    let run = || {
        let mut config = quick_config(
            presets::jetson_nano(),
            &zoo::resnet50(),
            Precision::Fp16,
            1,
            4,
        );
        config.faults = FaultPlan::seeded(42, config.total_time(), 3, 2)
            .oom_policy(jetsim_sim::faults::OomPolicy::KillLargest);
        Simulation::new(config).unwrap().run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.total_throughput(), b.total_throughput());
    assert_eq!(a.kernel_events.len(), b.kernel_events.len());
    assert_eq!(
        a.processes.iter().map(|p| p.killed_at).collect::<Vec<_>>(),
        b.processes.iter().map(|p| p.killed_at).collect::<Vec<_>>(),
    );
}

#[test]
fn power_samples_present_and_positive() {
    let trace = Simulation::new(quick_config(
        presets::jetson_nano(),
        &zoo::resnet50(),
        Precision::Fp16,
        1,
        1,
    ))
    .unwrap()
    .run();
    assert!(trace.power_samples.len() >= 3);
    for s in &trace.power_samples {
        assert!(s.watts > 1.0 && s.watts < 6.0, "watts = {}", s.watts);
    }
}
