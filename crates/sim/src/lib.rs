//! Discrete-event simulation of concurrent TensorRT inference on Jetson.
//!
//! This crate binds the substrates together into an executable model of
//! the paper's measurement platform:
//!
//! * a **CPU side** where each inference process's host thread launches
//!   kernels (`cudaLaunchKernel` costs), blocks on synchronisation, and —
//!   once the heavy big.LITTLE cores are oversubscribed — suffers the
//!   preemption, 1–2 ms blocking intervals and cache-thrash the paper
//!   dissects in §7;
//! * a **GPU side** that time-multiplexes kernel queues across processes
//!   at kernel granularity (Jetson has no MPS), with launch-rate limits,
//!   context-switch costs and a timeslice;
//! * a **DVFS governor** that defends the module power budget by walking
//!   the GPU frequency ladder (§6.1.2's non-linear power behaviour);
//! * a **unified-memory arbiter** that refuses over-deployments exactly
//!   where the real boards run out of RAM and reboot (§6.2.1).
//!
//! The output is a [`RunTrace`]: per-process throughput and EC breakdowns,
//! per-kernel utilisation events, and periodic power/frequency samples,
//! which `jetsim-profile` turns into the paper's metrics.
//!
//! # Examples
//!
//! ```
//! use jetsim_des::SimDuration;
//! use jetsim_device::presets;
//! use jetsim_dnn::{zoo, Precision};
//! use jetsim_sim::{SimConfig, Simulation};
//!
//! let device = presets::orin_nano();
//! let config = SimConfig::builder(device)
//!     .add_model(&zoo::resnet50(), Precision::Int8, 1)?
//!     .warmup(SimDuration::from_millis(200))
//!     .measure(SimDuration::from_millis(800))
//!     .build()?;
//! let trace = Simulation::new(config)?.run();
//! assert!(trace.total_throughput() > 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod components;
pub mod config;
pub mod error;
pub mod faults;
pub mod serving;
pub mod simulation;
pub(crate) mod soa;
pub mod trace;

pub use config::{
    ArrivalModel, CpuModel, GpuPolicy, GpuSharing, ProcessConfig, ProfilerMode, SimConfig,
    SimConfigBuilder,
};
pub use error::SimError;
pub use faults::{FaultEvent, FaultKind, FaultPlan, MemorySpike, OomPolicy, ThrottleLock};
pub use serving::{
    AdmissionPolicy, AutoscalerPolicy, BatchDecision, BatcherPolicy, BreakerMode, BreakerPolicy,
    DropKind, DropRecord, HedgePolicy, RecoveryPolicy, ReplicaHealth, RequestRecord, RetryPolicy,
    ScaleDecision, ScaleSignals, ServeEvent, ServeEventKind, ServeGroup, ServePlan,
};
pub use simulation::Simulation;
pub use trace::{EcRecord, KernelEvent, KernelPreempted, PowerSample, ProcessStats, RunTrace};
