//! Typed simulation components.
//!
//! The simulator used to be one god-object: a 2,000-line `Runner` with a
//! single untyped event match. It is now a set of cohesive components —
//! each owning one subsystem's state behind the [`Component`] trait with
//! its own typed event enum — coordinated by a slim `Runner` (in
//! [`crate::simulation`]) that only routes events and owns the
//! `jetsim-des` queue:
//!
//! * [`sched::CpuSched`] — host-thread lifecycle: EC arrivals, launch
//!   bursts, the explicit run-queue quantum scheduler and the calibrated
//!   stochastic contention model (§7);
//! * [`gpu::GpuEngine`] — kernel dispatch, timeslice affinity, MPS
//!   packing, in-flight power/utilisation accrual, kernel-event tracing;
//! * [`governor::Governor`] — DVFS ladder walking, the thermal RC model,
//!   and injected throttle locks (§6.1.2);
//! * [`memory_guard::MemoryGuard`] — unified-memory footprint
//!   accounting, fault timeline, and OOM-killer enforcement (§6.2.1);
//! * [`sampler::Sampler`] — the periodic `jetson-stats`-style sample.
//!
//! Cross-component effects (the paper's actual findings are these
//! interactions) are expressed as explicit dependencies: each component's
//! [`Component::Deps`] names exactly the peers an event may drive, so the
//! coupling that was implicit in the god-object is visible in the types.

pub(crate) mod governor;
pub(crate) mod gpu;
pub(crate) mod gpu_policy;
pub(crate) mod ingress;
pub(crate) mod memory_guard;
pub(crate) mod sampler;
pub(crate) mod sched;

use std::collections::VecDeque;
use std::sync::Arc;

use jetsim_des::{CalendarQueue, SimDuration, SimRng, SimTime};
use jetsim_trt::Engine;

use crate::config::{ArrivalModel, SimConfig};
use crate::soa::EcColumns;

use sched::RqThread;

/// Events driving the simulation, routed by the `Runner` to the
/// component that owns the matching typed stream.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// Host-thread lifecycle ([`sched::CpuSched`]).
    Sched(sched::SchedEvent),
    /// GPU completions ([`gpu::GpuEngine`]).
    Gpu(gpu::GpuEvent),
    /// DVFS governor ticks ([`governor::Governor`]).
    Governor(governor::GovernorEvent),
    /// Injected faults ([`memory_guard::MemoryGuard`]).
    Memory(memory_guard::MemoryEvent),
    /// `jetson-stats` sampling ticks ([`sampler::Sampler`]).
    Sampler(sampler::SamplerEvent),
    /// Request arrivals, batch flushes and server completions
    /// ([`ingress::Ingress`]). Never scheduled for closed-loop configs.
    Ingress(ingress::IngressEvent),
}

/// Shared simulation state every component may read or mutate while
/// handling an event: the configuration, the event queue, the dynamics
/// RNG and the per-process state. Subsystem-private state lives inside
/// the components themselves.
pub(crate) struct Ctx<'a> {
    /// The run's immutable configuration.
    pub config: &'a SimConfig,
    /// The DES event queue (owned by the `Runner`, lent per event).
    pub queue: &'a mut CalendarQueue<Event>,
    /// The main dynamics RNG stream.
    pub rng: &'a mut SimRng,
    /// Per-process simulation state.
    pub procs: &'a mut Vec<Proc>,
    /// Liveness flags (`false` once the OOM killer fires).
    pub alive: &'a mut Vec<bool>,
    /// When each process was killed, if it was.
    pub killed_at: &'a mut Vec<Option<SimTime>>,
    /// Number of configured processes (cached as `u32` for the
    /// contention formulas).
    pub n_procs: u32,
    /// End of the warmup window.
    pub warmup_end: SimTime,
}

/// One simulation subsystem: owns its state, consumes its typed event
/// stream, and names the peer components its events may drive.
pub(crate) trait Component {
    /// The typed event stream this component consumes.
    type Event;
    /// Peer components (dependencies) an event handler may call into.
    type Deps<'d>;
    /// Handles one event at simulation time `now`.
    fn handle(&mut self, ev: Self::Event, now: SimTime, ctx: &mut Ctx<'_>, deps: Self::Deps<'_>);
}

/// Per-process simulation state, shared across components: the scheduler
/// drives the host-thread fields, the GPU drains `ready`, and the
/// finaliser aggregates `ecs`.
pub(crate) struct Proc {
    /// Process name.
    pub name: String,
    /// The engine this process executes.
    pub engine: Arc<Engine>,
    /// Next kernel index the host thread will launch.
    pub next_launch: usize,
    /// Sequence number of the current EC.
    pub ec_seq: u64,
    /// When the current EC's enqueue phase began.
    pub ec_start: SimTime,
    /// When the last launch of the current EC completed.
    pub enqueue_done_at: SimTime,
    /// Accumulated launch CPU time this EC.
    pub cur_launch: SimDuration,
    /// Accumulated blocking this EC.
    pub cur_blocking: SimDuration,
    /// Accumulated GPU time this EC.
    pub cur_gpu: SimDuration,
    /// Whether the thread recently migrated cores (cold caches).
    pub cache_cold: bool,
    /// How work arrives at this process.
    pub arrivals: ArrivalModel,
    /// Arrival time of the next unconsumed batch (open-loop modes).
    pub next_arrival: SimTime,
    /// Queueing delay of the EC currently in flight.
    pub cur_queue_delay: SimDuration,
    /// The serve group this process belongs to, `None` for closed-loop
    /// processes. Servers don't self-enqueue: the ingress component
    /// decides when (and on which engine) their next EC starts.
    pub serve_group: Option<usize>,
    /// Run-queue scheduler state for this thread.
    pub cpu: RqThread,
    /// Kernels launched and ready for the GPU, FIFO.
    pub ready: VecDeque<usize>,
    /// Completed EC records, columnar (all; filtered to the measured
    /// window at finalize).
    pub ecs: EcColumns,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The event slab must stay small: every hot-loop schedule/pop moves
    /// a `(SimTime, seq, Event)` entry, so the nested enum is packed into
    /// `u32` payloads. 16 bytes is the budget (discriminants + largest
    /// payload, `SchedEvent::CpuTick { pid: u32, gen: u32 }`).
    #[test]
    fn event_slab_fits_in_16_bytes() {
        assert!(
            std::mem::size_of::<Event>() <= 16,
            "Event grew to {} bytes; keep payloads u32 so the calendar \
             entries stay two words + payload",
            std::mem::size_of::<Event>()
        );
    }
}
