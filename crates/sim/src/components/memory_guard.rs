//! The memory guard: unified-memory footprint accounting, the injected
//! fault timeline, and OOM-killer enforcement — §6.2.1's over-deployment
//! "reboot" as a simulated outcome.

use jetsim_des::{CalendarQueue, SimTime};

use crate::config::SimConfig;
use crate::faults::{FaultKind, OomPolicy};
use crate::soa::FaultColumns;

use super::governor::Governor;
use super::gpu::GpuEngine;
use super::ingress::Ingress;
use super::sched::CpuSched;
use super::{Component, Ctx, Event};

/// Events consumed by [`MemoryGuard`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum MemoryEvent {
    /// An injected fault fires (index into the precomputed timeline).
    Fault {
        /// Index into the guard's fault timeline.
        index: u32,
    },
}

/// One entry of the precomputed fault timeline (derived from the
/// config's [`crate::FaultPlan`] at construction, so injection costs
/// nothing when the plan is empty and draws nothing from the run RNG).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    /// A background memory spike appears.
    SpikeStart { bytes: u64 },
    /// A background memory spike is released.
    SpikeEnd { bytes: u64 },
    /// The DVFS governor gets pinned to `step` until `until`.
    LockStart { until: SimTime, step: usize },
    /// A throttle lock may release (ignored while a longer lock holds).
    LockEnd,
}

/// Peers a fault may drive: the scheduler (evicting killed threads), the
/// GPU (frequency pinning), the governor (throttle-lock state) and the
/// ingress (a killed serve replica fails its in-flight requests and may
/// schedule a restart).
pub(crate) struct GuardDeps<'d> {
    /// The CPU scheduler (killed processes release their cores).
    pub sched: &'d mut CpuSched,
    /// The GPU engine (throttle locks pin its frequency step).
    pub gpu: &'d mut GpuEngine,
    /// The governor (owns the throttle-lock override state).
    pub governor: &'d mut Governor,
    /// The ingress (killed serve replicas fail over and recover).
    pub ingress: &'d mut Ingress,
}

/// The memory-guard component: owns footprint/spike accounting, the
/// fault timeline, and the recorded fault events.
pub(crate) struct MemoryGuard {
    /// Precomputed fault schedule, sorted by time (releases before
    /// arrivals at equal timestamps).
    timeline: Vec<(SimTime, FaultAction)>,
    /// Background spike bytes currently resident.
    spike_bytes: u64,
    /// Faults injected and their consequences, in event order.
    pub(crate) fault_events: FaultColumns,
}

impl Component for MemoryGuard {
    type Event = MemoryEvent;
    type Deps<'d> = GuardDeps<'d>;

    #[inline]
    fn handle(&mut self, ev: MemoryEvent, now: SimTime, ctx: &mut Ctx<'_>, deps: GuardDeps<'_>) {
        match ev {
            MemoryEvent::Fault { index } => self.on_fault(index as usize, now, ctx, deps),
        }
    }
}

impl MemoryGuard {
    /// Flattens the config's fault plan into a timeline of point
    /// actions. Releases sort before arrivals at equal timestamps so a
    /// spike ending exactly when another starts never double-counts.
    pub(crate) fn new(config: &SimConfig) -> Self {
        let ladder_top = config.device.gpu.freq.top();
        let mut timeline: Vec<(SimTime, FaultAction)> = Vec::with_capacity(
            2 * (config.faults.memory_spikes.len() + config.faults.throttle_locks.len()),
        );
        for spike in &config.faults.memory_spikes {
            timeline.push((spike.at, FaultAction::SpikeStart { bytes: spike.bytes }));
            timeline.push((spike.end(), FaultAction::SpikeEnd { bytes: spike.bytes }));
        }
        for lock in &config.faults.throttle_locks {
            let step = lock.step.min(ladder_top);
            timeline.push((
                lock.at,
                FaultAction::LockStart {
                    until: lock.end(),
                    step,
                },
            ));
            timeline.push((lock.end(), FaultAction::LockEnd));
        }
        timeline.sort_by_key(|&(at, action)| {
            let release_first = match action {
                FaultAction::SpikeEnd { .. } | FaultAction::LockEnd => 0u8,
                FaultAction::SpikeStart { .. } | FaultAction::LockStart { .. } => 1,
            };
            (at.as_nanos(), release_first)
        });
        MemoryGuard {
            timeline,
            spike_bytes: 0,
            fault_events: FaultColumns::default(),
        }
    }

    /// Schedules every timeline entry that falls within the run (no-op
    /// for an empty plan, so fault-free runs stay byte-identical to the
    /// pre-fault loop).
    pub(crate) fn schedule_timeline(&self, queue: &mut CalendarQueue<Event>, sim_end: SimTime) {
        // One deferred-sort batch instead of N bucket sorts: the timeline
        // is precomputed, so the whole fault plan goes in at once.
        queue.schedule_batch(
            self.timeline
                .iter()
                .enumerate()
                .filter_map(|(index, &(at, _))| {
                    (at <= sim_end).then_some((
                        at,
                        Event::Memory(MemoryEvent::Fault {
                            index: index as u32,
                        }),
                    ))
                }),
        );
    }

    /// Applies one scheduled fault action.
    fn on_fault(&mut self, index: usize, now: SimTime, ctx: &mut Ctx<'_>, deps: GuardDeps<'_>) {
        let GuardDeps {
            sched,
            gpu,
            governor,
            ingress,
        } = deps;
        let (_, action) = self.timeline[index];
        match action {
            FaultAction::SpikeStart { bytes } => {
                self.spike_bytes += bytes;
                self.fault_events
                    .push(now, FaultKind::MemorySpikeStart { bytes });
                self.enforce_memory(now, ctx, sched, gpu, ingress);
            }
            FaultAction::SpikeEnd { bytes } => {
                self.spike_bytes = self.spike_bytes.saturating_sub(bytes);
                self.fault_events
                    .push(now, FaultKind::MemorySpikeEnd { bytes });
            }
            FaultAction::LockStart { until, step } => {
                governor.throttle_lock = Some((until, step));
                gpu.freq_step = step;
                self.fault_events.push(
                    now,
                    FaultKind::ThrottleLockStart {
                        step,
                        mhz: ctx.config.device.gpu.freq.mhz(step),
                    },
                );
            }
            FaultAction::LockEnd => {
                // Only release when no longer-running lock superseded
                // this one (overlapping locks keep the latest window).
                if let Some((until, _)) = governor.throttle_lock {
                    if now >= until {
                        governor.throttle_lock = None;
                        self.fault_events.push(now, FaultKind::ThrottleLockEnd);
                    }
                }
            }
        }
    }

    /// Live unified-memory footprint of the alive processes, optionally
    /// excluding one (to compute how much its death would free). Mirrors
    /// [`SimConfig::total_footprint_bytes`] including memory-group
    /// sharing: killing one stream of a shared group frees only its
    /// per-context buffers unless it was the group's last member.
    fn footprint_excluding(&self, ctx: &Ctx<'_>, excluded: Option<usize>) -> u64 {
        use std::collections::HashSet;
        let memory = &ctx.config.device.memory;
        let mut seen: HashSet<usize> = HashSet::new();
        ctx.config
            .processes
            .iter()
            .enumerate()
            .filter(|&(pid, _)| ctx.alive[pid] && Some(pid) != excluded)
            .map(|(_, p)| {
                let per_context = p.engine.io_bytes() + p.engine.workspace_bytes();
                if seen.insert(p.memory_group) {
                    memory.per_process_host_bytes
                        + memory.cuda_context_bytes
                        + p.engine.engine_bytes()
                        + per_context
                } else {
                    per_context
                }
            })
            .sum()
    }

    /// Kills processes (largest memory freed first, ties to the lowest
    /// pid) until the live footprint plus background spikes fits in
    /// usable memory. No-op under [`OomPolicy::Strict`], where the
    /// pre-flight check already guaranteed fit.
    pub(crate) fn enforce_memory(
        &mut self,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        sched: &mut CpuSched,
        gpu: &mut GpuEngine,
        ingress: &mut Ingress,
    ) {
        if ctx.config.faults.oom != OomPolicy::KillLargest {
            return;
        }
        loop {
            let current = self.footprint_excluding(ctx, None);
            if !ctx
                .config
                .device
                .memory
                .would_oom(current.saturating_add(self.spike_bytes))
            {
                break;
            }
            let mut victim: Option<(u64, usize)> = None;
            for pid in 0..ctx.procs.len() {
                if !ctx.alive[pid] {
                    continue;
                }
                let freed = current - self.footprint_excluding(ctx, Some(pid));
                if victim.is_none_or(|(best, _)| freed > best) {
                    victim = Some((freed, pid));
                }
            }
            let Some((freed, pid)) = victim else {
                break; // everyone is dead; the spike alone overcommits
            };
            self.kill_process(pid, freed, now, ctx, sched, gpu, ingress);
        }
    }

    /// Whether reviving `pid` (alive again on top of the current
    /// survivors and background spikes) would still fit in usable
    /// memory. Consulted by the ingress before a restarted replica
    /// rejoins its group — the board may have tightened since the kill.
    pub(crate) fn revival_fits(&self, ctx: &Ctx<'_>, pid: usize) -> bool {
        use std::collections::HashSet;
        let memory = &ctx.config.device.memory;
        let mut seen: HashSet<usize> = HashSet::new();
        let total: u64 = ctx
            .config
            .processes
            .iter()
            .enumerate()
            .filter(|&(p, _)| ctx.alive[p] || p == pid)
            .map(|(_, p)| {
                let per_context = p.engine.io_bytes() + p.engine.workspace_bytes();
                if seen.insert(p.memory_group) {
                    memory.per_process_host_bytes
                        + memory.cuda_context_bytes
                        + p.engine.engine_bytes()
                        + per_context
                } else {
                    per_context
                }
            })
            .sum();
        !memory.would_oom(total.saturating_add(self.spike_bytes))
    }

    /// Terminates `pid`: its queued kernels vanish, pending events for
    /// it become stale, and (in run-queue mode) its core is released.
    /// Its in-flight GPU kernel, if any, completes — the driver does not
    /// revoke work already submitted to the hardware.
    #[allow(clippy::too_many_arguments)]
    fn kill_process(
        &mut self,
        pid: usize,
        freed_bytes: u64,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        sched: &mut CpuSched,
        gpu: &mut GpuEngine,
        ingress: &mut Ingress,
    ) {
        ctx.alive[pid] = false;
        ctx.killed_at[pid] = Some(now);
        gpu.clear_ready(pid, ctx);
        if ctx.config.cpu_model == crate::config::CpuModel::RunQueue {
            sched.rq_evict(pid, now, ctx);
        }
        self.fault_events.push(
            now,
            FaultKind::ProcessKilled {
                pid,
                name: ctx.procs[pid].name.clone(),
                freed_bytes,
            },
        );
        // Serve replicas fail their in-flight requests and may recover;
        // no-op for closed-loop processes.
        ingress.on_replica_killed(pid, now, ctx);
    }
}
