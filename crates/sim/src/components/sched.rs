//! CPU scheduling: host-thread lifecycle, the explicit run-queue quantum
//! scheduler ([`crate::CpuModel::RunQueue`]) and the calibrated
//! stochastic contention model — the paper's §7 launch/blocking story.

use jetsim_des::{SimDuration, SimTime};

use std::collections::VecDeque;

use crate::config::{ArrivalModel, CpuModel};
use crate::trace::EcRecord;

use super::gpu::GpuEngine;
use super::{Component, Ctx, Event};

/// Events consumed by [`CpuSched`].
///
/// Payloads are deliberately `u32` (process ids are tiny, generation
/// stamps wrap far beyond any realistic run) so the whole
/// [`super::Event`] slab stays within 16 bytes — see the size test in
/// `components::tests`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SchedEvent {
    /// A host thread finished one kernel-launch call.
    LaunchDone {
        /// The launching process.
        pid: u32,
    },
    /// A host thread resumes after blocking or a sync wakeup.
    ThreadResume {
        /// The resuming process.
        pid: u32,
        /// What the thread does on resume.
        kind: Resume,
    },
    /// A run-queue CPU grant ends (burst completion or quantum expiry).
    CpuTick {
        /// Thread whose grant ends.
        pid: u32,
        /// Generation stamp; stale ticks are ignored.
        gen: u32,
    },
}

/// What a resuming host thread does.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Resume {
    /// Continue launching kernels after a preemption.
    ContinueLaunch,
    /// Return from `cudaStreamSynchronize`; the EC is complete.
    SyncReturn,
}

/// Per-thread state of the explicit run-queue CPU scheduler
/// ([`CpuModel::RunQueue`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RqThread {
    pub(crate) state: RqState,
    pub(crate) job: RqJob,
    /// Remaining work in the current burst; `None` while spin-waiting on
    /// the GPU (CUDA's default busy-wait synchronisation).
    pub(crate) remaining: Option<SimDuration>,
    /// Generation stamp invalidating stale `CpuTick` events (`u32` to
    /// keep the event slab small; it would take > 4 × 10⁹ grants on one
    /// thread to wrap).
    pub(crate) gen: u32,
    /// When the thread entered the ready queue.
    pub(crate) queued_since: SimTime,
    /// When the current running segment began.
    pub(crate) seg_start: SimTime,
    /// When the current quantum expires.
    pub(crate) slice_end: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RqState {
    /// Not runnable (waiting for a frame arrival).
    Idle,
    /// Runnable, waiting for a heavy core.
    Queued,
    /// Holding a heavy core.
    Running,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RqJob {
    /// Issuing kernel-launch calls.
    Launch,
    /// Processing a completed synchronisation.
    SyncReturn,
    /// Spin-waiting in `cudaStreamSynchronize`.
    Spin,
}

impl RqThread {
    pub(crate) fn new() -> Self {
        RqThread {
            state: RqState::Idle,
            job: RqJob::Spin,
            remaining: None,
            gen: 0,
            queued_since: SimTime::ZERO,
            seg_start: SimTime::ZERO,
            slice_end: SimTime::ZERO,
        }
    }
}

/// The CPU scheduling component: owns the run-queue occupancy state and
/// drives every host thread's launch/block/sync lifecycle.
pub(crate) struct CpuSched {
    /// Threads currently holding heavy cores (run-queue mode).
    running: u32,
    /// Ready queue of thread ids (run-queue mode).
    ready: VecDeque<usize>,
}

impl Component for CpuSched {
    type Event = SchedEvent;
    type Deps<'d> = &'d mut GpuEngine;

    #[inline]
    fn handle(&mut self, ev: SchedEvent, now: SimTime, ctx: &mut Ctx<'_>, gpu: &mut GpuEngine) {
        match ev {
            SchedEvent::LaunchDone { pid } => self.on_launch_done(pid as usize, now, ctx, gpu),
            SchedEvent::ThreadResume { pid, kind } => match kind {
                Resume::ContinueLaunch => self.start_launch(pid as usize, now, ctx, gpu),
                Resume::SyncReturn => self.on_sync_return(pid as usize, now, ctx, gpu),
            },
            SchedEvent::CpuTick { pid, gen } => self.rq_tick(pid as usize, gen, now, ctx, gpu),
        }
    }
}

impl CpuSched {
    pub(crate) fn new() -> Self {
        CpuSched {
            running: 0,
            ready: VecDeque::new(),
        }
    }

    fn run_queue_mode(ctx: &Ctx<'_>) -> bool {
        ctx.config.cpu_model == CpuModel::RunQueue
    }

    /// Starts the next EC: immediately in saturated mode, otherwise when
    /// the next batch has arrived. Records the batch's queueing delay.
    pub(crate) fn begin_next_ec(
        &mut self,
        pid: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        gpu: &mut GpuEngine,
    ) {
        if !ctx.alive[pid] {
            return;
        }
        let proc = &mut ctx.procs[pid];
        match proc.arrivals {
            ArrivalModel::Saturated => {
                proc.cur_queue_delay = SimDuration::ZERO;
                proc.ec_start = now;
                self.start_launch(pid, now, ctx, gpu);
            }
            ArrivalModel::Periodic { fps } | ArrivalModel::Poisson { fps } => {
                let arrival = proc.next_arrival;
                let gap = match proc.arrivals {
                    ArrivalModel::Poisson { .. } => {
                        // Exponential inter-arrival with mean 1/fps.
                        let u = ctx.rng.uniform(f64::EPSILON, 1.0);
                        SimDuration::from_secs_f64(-u.ln() / fps)
                    }
                    _ => SimDuration::from_secs_f64(1.0 / fps),
                };
                ctx.procs[pid].next_arrival = arrival + gap;
                let proc = &mut ctx.procs[pid];
                if arrival <= now {
                    proc.cur_queue_delay = now.saturating_since(arrival);
                    proc.ec_start = now;
                    self.start_launch(pid, now, ctx, gpu);
                } else {
                    proc.cur_queue_delay = SimDuration::ZERO;
                    proc.ec_start = arrival;
                    if Self::run_queue_mode(ctx) && ctx.procs[pid].cpu.state == RqState::Running {
                        // Nothing to do until the frame arrives: yield the
                        // core instead of spinning on an empty queue.
                        self.rq_release(pid, now, ctx);
                    }
                    ctx.queue.schedule(
                        arrival,
                        Event::Sched(SchedEvent::ThreadResume {
                            pid: pid as u32,
                            kind: Resume::ContinueLaunch,
                        }),
                    );
                }
            }
        }
    }

    /// The host thread spends CPU time issuing the next kernel launch.
    pub(crate) fn start_launch(
        &mut self,
        pid: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        gpu: &mut GpuEngine,
    ) {
        if !ctx.alive[pid] {
            return; // stale resume for a process the OOM killer took
        }
        let cpu = &ctx.config.device.cpu;
        let contention = 1.0 + 0.25 * f64::from(ctx.n_procs.saturating_sub(1));
        let launch_call_us = (ctx.rng.uniform(18.0, 40.0) * contention).min(110.0);
        let mut cost = cpu.enqueue_cost + SimDuration::from_micros_f64(launch_call_us);
        cost = cost.mul_f64(ctx.config.profiler.launch_overhead_factor());
        if ctx.procs[pid].cache_cold {
            cost = cost.mul_f64(cpu.migration_cache_penalty);
        }
        let proc = &mut ctx.procs[pid];
        proc.cur_launch += cost;
        if Self::run_queue_mode(ctx) {
            self.rq_request(pid, now, cost, RqJob::Launch, ctx);
        } else {
            gpu.charge_cpu(cost);
            ctx.queue.schedule_after(
                cost,
                Event::Sched(SchedEvent::LaunchDone { pid: pid as u32 }),
            );
        }
    }

    // ----- explicit run-queue CPU scheduler (CpuModel::RunQueue) -------

    /// Submits a CPU burst for `pid`. If the thread already holds a core
    /// the burst continues within its quantum; otherwise it queues for
    /// one of the heavy cores.
    fn rq_request(
        &mut self,
        pid: usize,
        now: SimTime,
        work: SimDuration,
        job: RqJob,
        ctx: &mut Ctx<'_>,
    ) {
        let thread = &mut ctx.procs[pid].cpu;
        thread.job = job;
        thread.remaining = Some(work);
        match thread.state {
            RqState::Running => self.rq_reschedule(pid, now, ctx),
            RqState::Queued => {} // keeps its queue position, new work noted
            RqState::Idle => {
                if self.running < ctx.config.device.cpu.heavy_cores {
                    self.rq_grant(pid, now, ctx);
                } else {
                    let thread = &mut ctx.procs[pid].cpu;
                    thread.state = RqState::Queued;
                    thread.queued_since = now;
                    self.ready.push_back(pid);
                }
            }
        }
    }

    /// Gives `pid` a heavy core and a fresh quantum.
    fn rq_grant(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let waited = {
            let thread = &mut ctx.procs[pid].cpu;
            let waited = if thread.state == RqState::Queued {
                Some(now.saturating_since(thread.queued_since))
            } else {
                None
            };
            thread.state = RqState::Running;
            thread.slice_end = now + ctx.config.device.cpu.quantum;
            waited
        };
        self.running += 1;
        if let Some(wait) = waited {
            // Queue waits with launch work pending are the paper's B_l;
            // waits while spinning surface as synchronisation time.
            if ctx.procs[pid].cpu.job == RqJob::Launch && !wait.is_zero() {
                ctx.procs[pid].cur_blocking += wait;
            }
            if !wait.is_zero() && ctx.rng.chance(0.6) {
                ctx.procs[pid].cache_cold = true;
            }
        }
        self.rq_reschedule(pid, now, ctx);
    }

    /// (Re)schedules the running thread's next tick: burst completion or
    /// quantum expiry, whichever comes first.
    fn rq_reschedule(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let thread = &mut ctx.procs[pid].cpu;
        debug_assert_eq!(thread.state, RqState::Running);
        thread.gen += 1;
        thread.seg_start = now;
        let tick_at = match thread.remaining {
            Some(work) => (now + work).min(thread.slice_end),
            None => thread.slice_end,
        };
        let gen = thread.gen;
        ctx.queue.schedule(
            tick_at.max_of(now),
            Event::Sched(SchedEvent::CpuTick {
                pid: pid as u32,
                gen,
            }),
        );
    }

    /// Releases `pid`'s core (thread goes idle) and dispatches the next
    /// queued thread.
    pub(crate) fn rq_release(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        debug_assert_eq!(ctx.procs[pid].cpu.state, RqState::Running);
        ctx.procs[pid].cpu.state = RqState::Idle;
        ctx.procs[pid].cpu.gen += 1;
        self.running -= 1;
        if let Some(next) = self.ready.pop_front() {
            self.rq_grant(next, now, ctx);
        }
    }

    /// Removes a dead process from the scheduler: releases its core or
    /// drops it from the ready queue, and invalidates stale ticks.
    pub(crate) fn rq_evict(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        match ctx.procs[pid].cpu.state {
            RqState::Running => self.rq_release(pid, now, ctx),
            RqState::Queued => {
                self.ready.retain(|&p| p != pid);
                let thread = &mut ctx.procs[pid].cpu;
                thread.state = RqState::Idle;
                thread.gen += 1;
            }
            RqState::Idle => {
                ctx.procs[pid].cpu.gen += 1;
            }
        }
    }

    /// A running thread's grant ended: either its burst completed or its
    /// quantum expired.
    fn rq_tick(
        &mut self,
        pid: usize,
        gen: u32,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        gpu: &mut GpuEngine,
    ) {
        {
            let thread = &ctx.procs[pid].cpu;
            if !ctx.alive[pid] || thread.state != RqState::Running || thread.gen != gen {
                return; // stale (or the thread's process was killed)
            }
        }
        let ran = now.saturating_since(ctx.procs[pid].cpu.seg_start);
        // Spinning or working, the core burns power the whole segment.
        gpu.charge_cpu(ran);
        let finished = {
            let thread = &mut ctx.procs[pid].cpu;
            match thread.remaining {
                Some(work) => {
                    let left = work.saturating_sub(ran);
                    thread.remaining = Some(left);
                    left.is_zero()
                }
                None => false,
            }
        };
        if finished {
            let job = ctx.procs[pid].cpu.job;
            // The thread keeps its core through the continuation; the
            // continuation decides whether to submit more work, spin, or
            // go idle.
            ctx.procs[pid].cpu.remaining = None;
            ctx.procs[pid].cpu.job = RqJob::Spin;
            match job {
                RqJob::Launch => self.on_launch_done(pid, now, ctx, gpu),
                RqJob::SyncReturn => self.on_sync_return(pid, now, ctx, gpu),
                RqJob::Spin => unreachable!("spin bursts never finish"),
            }
            // If the continuation left the thread running (spin or more
            // work was already rescheduled by rq_request), make sure a
            // tick exists; rq_request/rq_set_spin handled it.
            return;
        }
        // Quantum expired with work left (or spinning).
        if self.ready.is_empty() {
            let thread = &mut ctx.procs[pid].cpu;
            thread.slice_end = now + ctx.config.device.cpu.quantum;
            self.rq_reschedule(pid, now, ctx);
        } else {
            let thread = &mut ctx.procs[pid].cpu;
            thread.state = RqState::Queued;
            thread.queued_since = now;
            thread.gen += 1;
            self.ready.push_back(pid);
            self.running -= 1;
            let next = self.ready.pop_front().expect("non-empty");
            self.rq_grant(next, now, ctx);
        }
    }

    /// Parks a running thread in spin-wait (`cudaStreamSynchronize`
    /// busy-polls by default, keeping the thread runnable — the root of
    /// the paper's §7 oversubscription collapse).
    fn rq_set_spin(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let thread = &mut ctx.procs[pid].cpu;
        debug_assert_eq!(thread.state, RqState::Running);
        thread.job = RqJob::Spin;
        thread.remaining = None;
        self.rq_reschedule(pid, now, ctx);
    }

    /// The GPU finished `pid`'s EC: convert its spin into sync-return
    /// work. If the thread is queued out, the remaining queue wait
    /// becomes visible synchronisation latency.
    pub(crate) fn rq_notify_gpu_done(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let sync_cost = SimDuration::from_micros(30) + ctx.config.device.cpu.wakeup_base;
        let state = ctx.procs[pid].cpu.state;
        match state {
            RqState::Running => {
                let thread = &mut ctx.procs[pid].cpu;
                thread.job = RqJob::SyncReturn;
                thread.remaining = Some(sync_cost);
                self.rq_reschedule(pid, now, ctx);
            }
            RqState::Queued => {
                let thread = &mut ctx.procs[pid].cpu;
                thread.job = RqJob::SyncReturn;
                thread.remaining = Some(sync_cost);
            }
            RqState::Idle => {
                // Should not happen (the thread spins during sync), but
                // recover gracefully.
                self.rq_request(pid, now, sync_cost, RqJob::SyncReturn, ctx);
            }
        }
    }

    /// A launch call returned: the kernel is now visible to the GPU.
    fn on_launch_done(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>, gpu: &mut GpuEngine) {
        if !ctx.alive[pid] {
            return; // the launch call died with its process
        }
        let kernel_index = ctx.procs[pid].next_launch;
        gpu.enqueue_ready(pid, kernel_index, now, ctx);
        ctx.procs[pid].next_launch += 1;
        gpu.try_dispatch(now, ctx);

        let kernel_count = ctx.procs[pid].engine.kernel_count();
        if ctx.procs[pid].next_launch >= kernel_count {
            // Whole EC enqueued; the thread parks in cudaStreamSynchronize.
            ctx.procs[pid].enqueue_done_at = now;
            if Self::run_queue_mode(ctx) {
                // CUDA's default sync spin-waits: the thread stays
                // runnable on its core.
                self.rq_set_spin(pid, now, ctx);
            }
            return;
        }
        if Self::run_queue_mode(ctx) {
            // The explicit scheduler produces preemption organically.
            self.start_launch(pid, now, ctx, gpu);
            return;
        }
        // Between launches the scheduler may preempt the thread — the
        // paper's per-launch blocking intervals B_l (§7 observation 1).
        let p = ctx.config.device.cpu.preemption_probability(ctx.n_procs);
        if ctx.rng.chance(p) {
            let blocking = SimDuration::from_micros_f64(ctx.rng.uniform(1000.0, 2000.0));
            ctx.procs[pid].cur_blocking += blocking;
            // Losing the core usually means landing on another one cold.
            if ctx.rng.chance(0.6) {
                ctx.procs[pid].cache_cold = true;
            }
            ctx.queue.schedule_after(
                blocking,
                Event::Sched(SchedEvent::ThreadResume {
                    pid: pid as u32,
                    kind: Resume::ContinueLaunch,
                }),
            );
        } else {
            self.start_launch(pid, now, ctx, gpu);
        }
    }

    /// The thread returned from synchronize: record the EC and start the
    /// next one.
    fn on_sync_return(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>, gpu: &mut GpuEngine) {
        if !ctx.alive[pid] {
            return; // wakeup raced the OOM killer
        }
        if !Self::run_queue_mode(ctx) {
            // In run-queue mode the sync-return burst was already charged
            // by the scheduler.
            let sync_cost = SimDuration::from_micros(30);
            gpu.charge_cpu(sync_cost);
        }
        let proc = &mut ctx.procs[pid];
        let record = EcRecord {
            start: proc.ec_start,
            end: now,
            launch_time: proc.cur_launch,
            blocking_time: proc.cur_blocking,
            sync_time: now.saturating_since(proc.enqueue_done_at),
            gpu_time: proc.cur_gpu,
            queue_delay: proc.cur_queue_delay,
        };
        proc.ecs.push(record);
        proc.ec_seq += 1;
        proc.next_launch = 0;
        proc.cur_launch = SimDuration::ZERO;
        proc.cur_blocking = SimDuration::ZERO;
        proc.cur_gpu = SimDuration::ZERO;
        proc.cache_cold = false;
        if ctx.procs[pid].serve_group.is_some() {
            // Servers don't self-enqueue: release the core (a server
            // with an empty queue must not spin on it) and hand control
            // back to the ingress component, which completes the batch
            // and decides when the next one starts.
            if Self::run_queue_mode(ctx) && ctx.procs[pid].cpu.state == RqState::Running {
                self.rq_release(pid, now, ctx);
            }
            ctx.queue.schedule(
                now,
                Event::Ingress(super::ingress::IngressEvent::ServerFree { pid: pid as u32 }),
            );
            return;
        }
        self.begin_next_ec(pid, now, ctx, gpu);
    }
}
