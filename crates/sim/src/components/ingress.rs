//! The ingress component: open-loop request arrivals, bounded admission
//! queues and per-group dynamic batching in front of the server
//! processes.
//!
//! Ingress sits *outside* the engine model: it decides when a server
//! process starts its next execution context and on which engine, then
//! hands the batch to [`CpuSched::start_launch`] — the launch, GPU and
//! synchronisation paths are exactly the closed-loop ones. A server's
//! sync return posts [`IngressEvent::ServerFree`] instead of
//! re-enqueueing, which is the entire difference between `trtexec`
//! saturation and online serving.
//!
//! Configs without a [`crate::serving::ServePlan`] construct an empty
//! ingress: no groups, no events, no RNG draws — closed-loop runs stay
//! byte-identical.

use std::collections::VecDeque;
use std::sync::Arc;

use jetsim_des::{ArrivalStream, SimTime};
use jetsim_trt::Engine;

use crate::config::SimConfig;
use crate::serving::{
    AdmissionPolicy, BatchDecision, BatcherPolicy, DropKind, DropRecord, ServeEventKind,
};
use crate::soa::{RequestColumns, ServeEventColumns};

use super::gpu::GpuEngine;
use super::sched::CpuSched;
use super::{Component, Ctx, Event};

/// Events consumed by [`Ingress`].
///
/// Payloads are `u32` so the whole [`super::Event`] slab stays within
/// 16 bytes — see the size test in `components::tests`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IngressEvent {
    /// A request arrives at a serve group.
    Arrival {
        /// The group it arrives at.
        group: u32,
    },
    /// A partial batch's `max_delay` deadline expired.
    Flush {
        /// The group whose batcher should re-decide.
        group: u32,
        /// Generation stamp; stale flushes are ignored.
        gen: u32,
    },
    /// A server process finished its batch and is free again.
    ServerFree {
        /// The server process.
        pid: u32,
    },
}

/// Peer components an ingress event may drive: dispatching a batch
/// starts a host-thread launch burst, which may immediately reach the
/// GPU.
pub(crate) struct IngressDeps<'d> {
    pub sched: &'d mut CpuSched,
    pub gpu: &'d mut GpuEngine,
}

/// Runtime state of one serve group.
struct GroupRt {
    /// Member server pids.
    members: Vec<usize>,
    /// Members currently idle, FIFO.
    free: VecDeque<usize>,
    /// Queued request indices (into [`Ingress::requests`]), FIFO.
    queue: VecDeque<usize>,
    /// The group's seeded arrival gap generator.
    stream: ArrivalStream,
    /// The dynamic-batching rule (`max_batch` = the engine's built batch).
    policy: BatcherPolicy,
    /// Bounded queue capacity.
    queue_cap: usize,
    /// Full-queue policy.
    admission: AdmissionPolicy,
    /// The group's normal engine.
    normal: Arc<Engine>,
    /// Pre-built fallback engine for [`AdmissionPolicy::Degrade`].
    degraded: Option<Arc<Engine>>,
    /// Whether the group is currently serving on the degraded engine.
    degraded_mode: bool,
    /// Invalidates stale [`IngressEvent::Flush`] events (`u32` to keep
    /// the event slab small; wrap needs > 4 × 10⁹ flushes in one group).
    flush_gen: u32,
    /// Deadline of the currently scheduled flush, if any.
    flush_at: Option<SimTime>,
    /// `true` once a non-cycling trace ran out of arrivals.
    exhausted: bool,
    /// Arrival counter (request sequence numbers).
    seq: u64,
}

/// The ingress component: owns every serve group's queue, batcher and
/// arrival stream, plus the request/serve-event logs that end up in the
/// [`crate::RunTrace`].
pub(crate) struct Ingress {
    groups: Vec<GroupRt>,
    /// Which group each pid serves, `None` for closed-loop processes.
    group_of_pid: Vec<Option<usize>>,
    /// Requests currently executing on each pid.
    inflight: Vec<Vec<usize>>,
    /// Every request's lifecycle, in arrival order (columnar; each
    /// lifecycle step touches only the columns it changes).
    pub(crate) requests: RequestColumns,
    /// Batch formations and degradation flips, in time order (columnar).
    pub(crate) serve_events: ServeEventColumns,
}

impl Component for Ingress {
    type Event = IngressEvent;
    type Deps<'d> = IngressDeps<'d>;

    #[inline]
    fn handle(
        &mut self,
        ev: IngressEvent,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        mut deps: IngressDeps<'_>,
    ) {
        match ev {
            IngressEvent::Arrival { group } => self.on_arrival(group as usize, now, ctx, &mut deps),
            IngressEvent::Flush { group, gen } => {
                let group = group as usize;
                if self.groups[group].flush_gen == gen {
                    self.groups[group].flush_at = None;
                    self.try_dispatch(group, now, ctx, &mut deps);
                }
            }
            IngressEvent::ServerFree { pid } => {
                self.on_server_free(pid as usize, now, ctx, &mut deps)
            }
        }
    }
}

impl Ingress {
    /// Builds the ingress state for `config`'s serve plan (empty state
    /// for closed-loop configs).
    pub(crate) fn new(config: &SimConfig) -> Self {
        let n = config.processes.len();
        let mut group_of_pid = vec![None; n];
        let mut groups = Vec::new();
        if let Some(plan) = &config.serve {
            for (g, sg) in plan.groups.iter().enumerate() {
                for &pid in &sg.members {
                    group_of_pid[pid] = Some(g);
                }
                let lead = &config.processes[sg.members[0]];
                // Per-group arrival seed folded from the run's master
                // seed, so adding a group never perturbs another group's
                // traffic (and the main dynamics RNG is untouched).
                let seed = config
                    .seed
                    .wrapping_add((g as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                groups.push(GroupRt {
                    members: sg.members.clone(),
                    free: VecDeque::with_capacity(sg.members.len()),
                    queue: VecDeque::with_capacity(sg.queue_cap.min(1 << 16)),
                    stream: ArrivalStream::new(sg.arrivals.clone(), seed),
                    policy: BatcherPolicy::new(lead.engine.batch(), sg.max_delay),
                    queue_cap: sg.queue_cap,
                    admission: sg.admission,
                    normal: Arc::clone(&lead.engine),
                    degraded: sg.degraded_engine.clone(),
                    degraded_mode: false,
                    flush_gen: 0,
                    flush_at: None,
                    exhausted: false,
                    seq: 0,
                });
            }
        }
        Ingress {
            groups,
            group_of_pid,
            inflight: vec![Vec::new(); n],
            requests: RequestColumns::default(),
            serve_events: ServeEventColumns::default(),
        }
    }

    /// `true` when `pid` is a server (its ECs are driven by ingress, not
    /// the closed loop).
    pub(crate) fn serves(&self, pid: usize) -> bool {
        self.group_of_pid.get(pid).is_some_and(|g| g.is_some())
    }

    /// Registers the surviving members as free servers and schedules
    /// every group's first arrival. Called once at the start of the run,
    /// after the memory guard resolved start-of-run overcommits.
    pub(crate) fn start(&mut self, ctx: &mut Ctx<'_>) {
        for g in 0..self.groups.len() {
            let alive: Vec<usize> = self.groups[g]
                .members
                .iter()
                .copied()
                .filter(|&pid| ctx.alive[pid])
                .collect();
            self.groups[g].free.extend(alive);
            self.schedule_next_arrival(g, SimTime::ZERO, ctx);
        }
    }

    /// Draws the next inter-arrival gap and schedules the arrival.
    fn schedule_next_arrival(&mut self, g: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let grp = &mut self.groups[g];
        if grp.exhausted {
            return;
        }
        match grp.stream.next_gap() {
            Some(gap) => ctx.queue.schedule(
                now + gap,
                Event::Ingress(IngressEvent::Arrival { group: g as u32 }),
            ),
            None => grp.exhausted = true,
        }
    }

    /// A request arrives: record it, apply admission, dispatch if
    /// possible, and schedule the next arrival.
    fn on_arrival(
        &mut self,
        g: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        let seq = self.groups[g].seq;
        self.groups[g].seq += 1;
        let ri = self.requests.push_arrival(g, seq, now);
        if self.groups[g].queue.len() >= self.groups[g].queue_cap {
            match self.groups[g].admission {
                AdmissionPolicy::Reject => {
                    self.requests.mark_dropped(
                        ri,
                        DropRecord {
                            at: now,
                            kind: DropKind::Rejected,
                        },
                    );
                }
                AdmissionPolicy::Shed | AdmissionPolicy::Degrade => {
                    // Freshest-frame discipline: the stalest queued
                    // request makes room for the newest.
                    let victim = self.groups[g]
                        .queue
                        .pop_front()
                        .expect("full queue has a front");
                    self.requests.mark_dropped(
                        victim,
                        DropRecord {
                            at: now,
                            kind: DropKind::Shed,
                        },
                    );
                    self.groups[g].queue.push_back(ri);
                    if self.groups[g].admission == AdmissionPolicy::Degrade
                        && self.groups[g].degraded.is_some()
                        && !self.groups[g].degraded_mode
                    {
                        self.groups[g].degraded_mode = true;
                        let queue_depth = self.groups[g].queue.len();
                        self.serve_events.push(
                            now,
                            g,
                            ServeEventKind::DegradeEnter { queue_depth },
                        );
                    }
                }
            }
        } else {
            self.groups[g].queue.push_back(ri);
        }
        self.try_dispatch(g, now, ctx, deps);
        self.schedule_next_arrival(g, now, ctx);
    }

    /// A server returned from synchronize: complete its batch, free it,
    /// relax degraded mode if the queue drained, and keep dispatching.
    fn on_server_free(
        &mut self,
        pid: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        let Some(g) = self.group_of_pid[pid] else {
            return;
        };
        for ri in std::mem::take(&mut self.inflight[pid]) {
            self.requests.mark_completed(ri, now);
        }
        if ctx.alive[pid] {
            self.groups[g].free.push_back(pid);
        }
        // Hysteresis: leave degraded mode only once the queue has
        // drained well below capacity, so the group doesn't oscillate at
        // the admission boundary.
        let queue_depth = self.groups[g].queue.len();
        if self.groups[g].degraded_mode && queue_depth * 4 <= self.groups[g].queue_cap {
            self.groups[g].degraded_mode = false;
            self.serve_events
                .push(now, g, ServeEventKind::DegradeExit { queue_depth });
        }
        self.try_dispatch(g, now, ctx, deps);
    }

    /// Matches free servers against the queue until the batcher says
    /// wait (or everything is busy/empty).
    fn try_dispatch(
        &mut self,
        g: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        loop {
            // Next live free server (members the OOM killer took are
            // dropped lazily here).
            let pid = loop {
                match self.groups[g].free.pop_front() {
                    Some(p) if ctx.alive[p] => break p,
                    Some(_) => continue,
                    None => return,
                }
            };
            let grp = &mut self.groups[g];
            let oldest = grp.queue.front().map(|&ri| self.requests.arrival(ri));
            match grp.policy.decide(now, grp.queue.len(), oldest) {
                BatchDecision::Idle => {
                    grp.free.push_front(pid);
                    return;
                }
                BatchDecision::WaitUntil(deadline) => {
                    grp.free.push_front(pid);
                    if grp.flush_at != Some(deadline) {
                        grp.flush_gen += 1;
                        grp.flush_at = Some(deadline);
                        let gen = grp.flush_gen;
                        ctx.queue.schedule(
                            deadline,
                            Event::Ingress(IngressEvent::Flush {
                                group: g as u32,
                                gen,
                            }),
                        );
                    }
                    return;
                }
                BatchDecision::Dispatch(k) => {
                    // Any pending flush is now stale.
                    grp.flush_gen += 1;
                    grp.flush_at = None;
                    let degraded = grp.degraded_mode && grp.degraded.is_some();
                    let engine = if degraded {
                        Arc::clone(grp.degraded.as_ref().expect("checked"))
                    } else {
                        Arc::clone(&grp.normal)
                    };
                    let oldest = oldest.expect("dispatch implies a queued request");
                    let batch: Vec<usize> = (0..k)
                        .map(|_| grp.queue.pop_front().expect("decide bounded by queue"))
                        .collect();
                    let queue_depth = grp.queue.len();
                    for &ri in &batch {
                        self.requests.mark_dispatched(ri, now, pid, k, degraded);
                    }
                    self.inflight[pid] = batch;
                    self.serve_events.push(
                        now,
                        g,
                        ServeEventKind::BatchFormed {
                            pid,
                            size: k,
                            oldest_wait: now.saturating_since(oldest),
                            queue_depth,
                            degraded,
                        },
                    );
                    // Hand the batch to the host thread: a server is idle
                    // between batches (next_launch == 0), so swapping the
                    // engine at this boundary is safe.
                    let proc = &mut ctx.procs[pid];
                    if !Arc::ptr_eq(&proc.engine, &engine) {
                        proc.engine = engine;
                    }
                    proc.cur_queue_delay = now.saturating_since(oldest);
                    proc.ec_start = now;
                    deps.sched.start_launch(pid, now, ctx, deps.gpu);
                }
            }
        }
    }
}
