//! The ingress component: open-loop request arrivals, bounded admission
//! queues and per-group dynamic batching in front of the server
//! processes — plus the request-level resilience machinery (deadlines,
//! retries, hedging, circuit breaking and replica recovery).
//!
//! Ingress sits *outside* the engine model: it decides when a server
//! process starts its next execution context and on which engine, then
//! hands the batch to [`CpuSched::start_launch`] — the launch, GPU and
//! synchronisation paths are exactly the closed-loop ones. A server's
//! sync return posts [`IngressEvent::ServerFree`] instead of
//! re-enqueueing, which is the entire difference between `trtexec`
//! saturation and online serving.
//!
//! Resilience is strictly opt-in per [`crate::serving::ServeGroup`]: a
//! group without a deadline/retry/hedge/breaker/recovery policy
//! schedules none of the new timer events and draws no extra randomness,
//! so pre-existing serving configs replay byte-identically. Configs
//! without a [`crate::serving::ServePlan`] at all construct an empty
//! ingress: no groups, no events, no RNG draws.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use jetsim_des::{ArrivalStream, SimRng, SimTime};
use jetsim_trt::Engine;

use crate::config::SimConfig;
use crate::serving::{
    AdmissionPolicy, AutoscalerPolicy, BatchDecision, BatcherPolicy, BreakerMode, BreakerPolicy,
    DropKind, DropRecord, HedgePolicy, RecoveryPolicy, ReplicaHealth, RetryPolicy, ScaleDecision,
    ScaleSignals, ServeEventKind,
};
use crate::soa::{RequestColumns, ServeEventColumns};

use super::gpu::GpuEngine;
use super::memory_guard::MemoryGuard;
use super::sched::{CpuSched, RqThread};
use super::{Component, Ctx, Event};

/// Completed-latency samples kept per group for the hedge p95.
const LAT_RING_CAP: usize = 128;

/// Stream constant folded into the per-group retry-backoff RNG seed so
/// retry jitter never shares draws with arrivals or the dynamics stream.
const RETRY_STREAM: u64 = 0x7265_7472_795F_726E; // "retry_rn"

/// Events consumed by [`Ingress`].
///
/// Payloads are `u32` so the whole [`super::Event`] slab stays within
/// 16 bytes — see the size test in `components::tests`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum IngressEvent {
    /// A request arrives at a serve group.
    Arrival {
        /// The group it arrives at.
        group: u32,
    },
    /// A partial batch's `max_delay` deadline expired.
    Flush {
        /// The group whose batcher should re-decide.
        group: u32,
        /// Generation stamp; stale flushes are ignored.
        gen: u32,
    },
    /// A server process finished its batch and is free again.
    ServerFree {
        /// The server process.
        pid: u32,
    },
    /// A request's queueing deadline expired (ignored unless it is
    /// still queued).
    Deadline {
        /// The request (index into [`Ingress::requests`]).
        req: u32,
    },
    /// A failed request's backoff elapsed; submit its retry attempt.
    Retry {
        /// The *failed* request being retried.
        req: u32,
    },
    /// A hedged request's delay elapsed; duplicate it if it is still in
    /// flight.
    HedgeFire {
        /// The primary request.
        req: u32,
    },
    /// A killed replica's restart cost has been paid.
    RestartDone {
        /// The restarting server process.
        pid: u32,
    },
    /// An autoscaled group's periodic evaluation tick.
    AutoscaleTick {
        /// The group to evaluate.
        group: u32,
    },
    /// A provisioning replica finished its current start phase
    /// (`Provisioning → Warming`, or `Warming → Up`).
    ScaleUpDone {
        /// The replica being provisioned.
        pid: u32,
        /// Generation stamp; a kill or reap mid-provision bumps the
        /// replica's generation so the stale timer is ignored.
        gen: u32,
    },
}

/// Autoscale lifecycle state of one replica, orthogonal to
/// [`ReplicaHealth`]: health tracks kills and restarts, scale state
/// tracks whether the autoscaler currently wants the replica serving.
/// Every pid in a group without an autoscaler is permanently `Up`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScaleState {
    /// Eligible to serve (the only state non-autoscaled pids ever hold).
    Up,
    /// Paying the engine build / plan fetch part of a cold start.
    Provisioning,
    /// Paying the plan-load + first-inference warmup.
    Warming,
    /// Scaled down (or never scaled up); invisible to dispatch.
    Parked,
}

/// Peer components an ingress event may drive: dispatching a batch
/// starts a host-thread launch burst (which may immediately reach the
/// GPU), and a replica restart re-checks memory fit with the guard.
pub(crate) struct IngressDeps<'d> {
    pub sched: &'d mut CpuSched,
    pub gpu: &'d mut GpuEngine,
    pub guard: &'d mut MemoryGuard,
}

/// Circuit-breaker state of one group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BrState {
    /// Healthy; outcomes accumulate in the rolling window.
    Closed,
    /// Tripped; arrivals are shed (or browned out) until `until`.
    Open { until: SimTime },
    /// Cooldown elapsed; `probe` is the single admitted trial request.
    HalfOpen { probe: Option<usize> },
}

/// Runtime state of one serve group.
struct GroupRt {
    /// Member server pids.
    members: Vec<usize>,
    /// Members currently idle, FIFO.
    free: VecDeque<usize>,
    /// Queued request indices (into [`Ingress::requests`]), FIFO.
    queue: VecDeque<usize>,
    /// The group's seeded arrival gap generator.
    stream: ArrivalStream,
    /// The dynamic-batching rule (`max_batch` = the engine's built batch).
    policy: BatcherPolicy,
    /// Bounded queue capacity.
    queue_cap: usize,
    /// Full-queue policy.
    admission: AdmissionPolicy,
    /// The group's normal engine.
    normal: Arc<Engine>,
    /// Pre-built fallback engine for [`AdmissionPolicy::Degrade`].
    degraded: Option<Arc<Engine>>,
    /// Whether admission pressure has the group on the degraded engine.
    degraded_mode: bool,
    /// Invalidates stale [`IngressEvent::Flush`] events (`u32` to keep
    /// the event slab small; wrap needs > 4 × 10⁹ flushes in one group).
    flush_gen: u32,
    /// Deadline of the currently scheduled flush, if any.
    flush_at: Option<SimTime>,
    /// `true` once a non-cycling trace ran out of arrivals.
    exhausted: bool,
    /// Arrival counter (request sequence numbers; retries and hedges
    /// share it).
    seq: u64,
    /// Per-request ingress delay offsets (see
    /// [`crate::ServeGroup::ingress_offsets`]); absent for the common
    /// undelayed path.
    offsets: Option<Arc<[jetsim_des::SimDuration]>>,
    /// Stream draws so far — the index into `offsets` for the next gap.
    offset_drawn: u64,
    /// Undelayed emission clock (cumulative gap sum); only advanced when
    /// `offsets` is present.
    offset_clock: SimTime,
    // --- resilience (all optional; absent policies cost nothing) -------
    /// Queueing deadline.
    deadline: Option<jetsim_des::SimDuration>,
    /// Retry policy.
    retry: Option<RetryPolicy>,
    /// Dedicated backoff-jitter stream (seeded per group from the run
    /// seed; drawn only when a retry actually fires).
    retry_rng: SimRng,
    /// Hedging policy.
    hedge: Option<HedgePolicy>,
    /// Rolling completed-latency ring feeding the hedge p95.
    lat_ring: Vec<jetsim_des::SimDuration>,
    /// Next overwrite position once the ring is full.
    lat_pos: usize,
    /// Circuit-breaker policy.
    breaker: Option<BreakerPolicy>,
    /// Breaker state machine.
    br_state: BrState,
    /// Rolling terminal outcomes (`true` = success), newest at the back.
    br_window: VecDeque<bool>,
    /// Failures currently in `br_window`.
    br_failures: usize,
    /// Brownout: the open breaker is forcing the degraded engine.
    br_forced: bool,
    /// Replica-recovery policy.
    recovery: Option<RecoveryPolicy>,
    // --- autoscaling (optional; absent policies cost nothing) ----------
    /// Serverless autoscaling policy.
    autoscaler: Option<AutoscalerPolicy>,
    /// Arrivals (retries and hedges included) since the last tick.
    win_arrivals: u32,
    /// Completions since the last tick.
    win_completions: u32,
    /// Completions since the last tick that missed the policy's
    /// `slo_target`.
    win_slo_miss: u32,
    /// `true` once any replica has started (the TensorRT plan exists, so
    /// later provisions pay the warm load, not the cold build).
    engine_built: bool,
}

/// The ingress component: owns every serve group's queue, batcher,
/// arrival stream and resilience state, plus the request/serve-event
/// logs that end up in the [`crate::RunTrace`].
pub(crate) struct Ingress {
    groups: Vec<GroupRt>,
    /// Which group each pid serves, `None` for closed-loop processes.
    group_of_pid: Vec<Option<usize>>,
    /// Requests currently executing on each pid.
    inflight: Vec<Vec<usize>>,
    /// Whether each pid currently holds a dispatched batch (guards the
    /// free list against stale wakeups from a pre-restart life).
    busy: Vec<bool>,
    /// Replica health, per pid (always `Up` for closed-loop processes).
    health: Vec<ReplicaHealth>,
    /// Restarts consumed, per pid.
    restarts_used: Vec<u32>,
    /// Autoscale lifecycle, per pid (`Up` for every pid outside an
    /// autoscaled group).
    scale: Vec<ScaleState>,
    /// Invalidates stale [`IngressEvent::ScaleUpDone`] timers, per pid.
    scale_gen: Vec<u32>,
    /// When each pid last became idle (feeds the keep-alive reaper).
    idle_since: Vec<SimTime>,
    /// Hedge pairing: each member of an unresolved pair maps to its twin.
    hedge_peer: HashMap<usize, usize>,
    /// Every request's lifecycle, in arrival order (columnar; each
    /// lifecycle step touches only the columns it changes).
    pub(crate) requests: RequestColumns,
    /// Batch formations, degradation flips, breaker transitions and
    /// replica health changes, in time order (columnar).
    pub(crate) serve_events: ServeEventColumns,
}

impl Component for Ingress {
    type Event = IngressEvent;
    type Deps<'d> = IngressDeps<'d>;

    #[inline]
    fn handle(
        &mut self,
        ev: IngressEvent,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        mut deps: IngressDeps<'_>,
    ) {
        match ev {
            IngressEvent::Arrival { group } => self.on_arrival(group as usize, now, ctx, &mut deps),
            IngressEvent::Flush { group, gen } => {
                let group = group as usize;
                if self.groups[group].flush_gen == gen {
                    self.groups[group].flush_at = None;
                    self.try_dispatch(group, now, ctx, &mut deps);
                }
            }
            IngressEvent::ServerFree { pid } => {
                self.on_server_free(pid as usize, now, ctx, &mut deps)
            }
            IngressEvent::Deadline { req } => self.on_deadline(req as usize, now, ctx, &mut deps),
            IngressEvent::Retry { req } => self.on_retry(req as usize, now, ctx, &mut deps),
            IngressEvent::HedgeFire { req } => {
                self.on_hedge_fire(req as usize, now, ctx, &mut deps)
            }
            IngressEvent::RestartDone { pid } => {
                self.on_restart_done(pid as usize, now, ctx, &mut deps)
            }
            IngressEvent::AutoscaleTick { group } => {
                self.on_autoscale_tick(group as usize, now, ctx)
            }
            IngressEvent::ScaleUpDone { pid, gen } => {
                self.on_scale_up_done(pid as usize, gen, now, ctx, &mut deps)
            }
        }
    }
}

impl Ingress {
    /// Builds the ingress state for `config`'s serve plan (empty state
    /// for closed-loop configs).
    pub(crate) fn new(config: &SimConfig) -> Self {
        let n = config.processes.len();
        let mut group_of_pid = vec![None; n];
        let mut groups = Vec::new();
        if let Some(plan) = &config.serve {
            for (g, sg) in plan.groups.iter().enumerate() {
                for &pid in &sg.members {
                    group_of_pid[pid] = Some(g);
                }
                let lead = &config.processes[sg.members[0]];
                // Per-group arrival seed folded from the run's master
                // seed, so adding a group never perturbs another group's
                // traffic (and the main dynamics RNG is untouched).
                let seed = config
                    .seed
                    .wrapping_add((g as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                groups.push(GroupRt {
                    members: sg.members.clone(),
                    free: VecDeque::with_capacity(sg.members.len()),
                    queue: VecDeque::with_capacity(sg.queue_cap.min(1 << 16)),
                    stream: ArrivalStream::new(sg.arrivals.clone(), seed),
                    policy: BatcherPolicy::new(lead.engine.batch(), sg.max_delay),
                    queue_cap: sg.queue_cap,
                    admission: sg.admission,
                    normal: Arc::clone(&lead.engine),
                    degraded: sg.degraded_engine.clone(),
                    degraded_mode: false,
                    flush_gen: 0,
                    flush_at: None,
                    exhausted: false,
                    seq: 0,
                    offsets: sg.ingress_offsets.clone(),
                    offset_drawn: 0,
                    offset_clock: SimTime::ZERO,
                    deadline: sg.deadline,
                    retry: sg.retry,
                    // A distinct stream per group: constructing the RNG
                    // draws nothing, so retry-free groups stay inert.
                    retry_rng: SimRng::seed_from(
                        (config.seed ^ RETRY_STREAM)
                            .wrapping_add((g as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ),
                    hedge: sg.hedge,
                    lat_ring: Vec::new(),
                    lat_pos: 0,
                    breaker: sg.breaker,
                    br_state: BrState::Closed,
                    br_window: VecDeque::new(),
                    br_failures: 0,
                    br_forced: false,
                    recovery: sg.recovery,
                    autoscaler: sg.autoscaler,
                    win_arrivals: 0,
                    win_completions: 0,
                    win_slo_miss: 0,
                    engine_built: false,
                });
            }
        }
        Ingress {
            groups,
            group_of_pid,
            inflight: vec![Vec::new(); n],
            busy: vec![false; n],
            health: vec![ReplicaHealth::Up; n],
            restarts_used: vec![0; n],
            scale: vec![ScaleState::Up; n],
            scale_gen: vec![0; n],
            idle_since: vec![SimTime::ZERO; n],
            hedge_peer: HashMap::new(),
            requests: RequestColumns::default(),
            serve_events: ServeEventColumns::default(),
        }
    }

    /// `true` when `pid` is a server (its ECs are driven by ingress, not
    /// the closed loop).
    pub(crate) fn serves(&self, pid: usize) -> bool {
        self.group_of_pid.get(pid).is_some_and(|g| g.is_some())
    }

    /// Registers the surviving members as free servers and schedules
    /// every group's first arrival. Called once at the start of the run,
    /// after the memory guard resolved start-of-run overcommits.
    pub(crate) fn start(&mut self, ctx: &mut Ctx<'_>) {
        for g in 0..self.groups.len() {
            let alive: Vec<usize> = self.groups[g]
                .members
                .iter()
                .copied()
                .filter(|&pid| ctx.alive[pid])
                .collect();
            match self.groups[g].autoscaler {
                Some(policy) => {
                    // The first `min_replicas` live members are the
                    // pre-warmed steady-state fleet; everyone else parks
                    // until the autoscaler provisions them. The `Warmed`
                    // events at t = 0 seed the report's replica-seconds
                    // replay with the initial up-set.
                    let initial = (policy.min_replicas as usize).min(alive.len());
                    for &pid in &alive[..initial] {
                        self.serve_events.push(
                            SimTime::ZERO,
                            g,
                            ServeEventKind::ReplicaWarmed { pid },
                        );
                        self.groups[g].free.push_back(pid);
                    }
                    for &pid in &alive[initial..] {
                        self.scale[pid] = ScaleState::Parked;
                    }
                    self.groups[g].engine_built = initial > 0;
                    ctx.queue.schedule(
                        SimTime::ZERO + policy.evaluate_every,
                        Event::Ingress(IngressEvent::AutoscaleTick { group: g as u32 }),
                    );
                }
                None => self.groups[g].free.extend(alive),
            }
            self.schedule_next_arrival(g, SimTime::ZERO, ctx);
        }
    }

    /// Draws the next inter-arrival gap and schedules the arrival.
    ///
    /// Without ingress offsets the arrival lands at `now + gap` — the
    /// original path, byte for byte. With offsets, `now` is the
    /// previous *delivery* time while the gap advances the *emission*
    /// clock; the arrival lands at `max(emission + offset, now)`, i.e.
    /// the per-request network delay shifts delivery but a request can
    /// never overtake its predecessor on the link (FIFO semantics, and
    /// the `max` also keeps the event ordered after `now`). An all-zero
    /// offset slice reduces to `max(emission, now)` = `now + gap`
    /// because the emission clock then equals the delivery clock.
    fn schedule_next_arrival(&mut self, g: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let grp = &mut self.groups[g];
        if grp.exhausted {
            return;
        }
        match grp.stream.next_gap() {
            Some(gap) => {
                let at = match &grp.offsets {
                    None => now + gap,
                    Some(offsets) => {
                        let offset = offsets
                            .get(grp.offset_drawn as usize)
                            .copied()
                            .unwrap_or(jetsim_des::SimDuration::ZERO);
                        grp.offset_drawn += 1;
                        grp.offset_clock += gap;
                        (grp.offset_clock + offset).max(now)
                    }
                };
                ctx.queue.schedule(
                    at,
                    Event::Ingress(IngressEvent::Arrival { group: g as u32 }),
                );
            }
            None => grp.exhausted = true,
        }
    }

    /// A request arrives: record it, run it through the breaker gate and
    /// admission, dispatch if possible, and schedule the next arrival.
    fn on_arrival(
        &mut self,
        g: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        let seq = self.groups[g].seq;
        self.groups[g].seq += 1;
        let ri = self.requests.push_arrival(g, seq, now);
        self.admit(g, ri, now, ctx);
        self.try_dispatch(g, now, ctx, deps);
        self.schedule_next_arrival(g, now, ctx);
    }

    /// Runs one freshly recorded request through the breaker gate and
    /// the admission policy. Returns `true` when it ended up queued.
    fn admit(&mut self, g: usize, ri: usize, now: SimTime, ctx: &mut Ctx<'_>) -> bool {
        if self.groups[g].autoscaler.is_some() {
            self.groups[g].win_arrivals += 1;
        }
        if !self.breaker_gate(g, ri, now) {
            self.requests.mark_dropped(
                ri,
                DropRecord {
                    at: now,
                    kind: DropKind::BreakerOpen,
                },
            );
            self.unlink_hedge(ri);
            return false;
        }
        if self.groups[g].queue.len() >= self.groups[g].queue_cap {
            match self.groups[g].admission {
                AdmissionPolicy::Reject => {
                    self.drop_request(g, ri, DropKind::Rejected, now, ctx);
                    return false;
                }
                AdmissionPolicy::Shed | AdmissionPolicy::Degrade => {
                    // Freshest-frame discipline: the stalest queued
                    // request makes room for the newest.
                    let victim = self.groups[g]
                        .queue
                        .pop_front()
                        .expect("full queue has a front");
                    self.drop_request(g, victim, DropKind::Shed, now, ctx);
                    self.groups[g].queue.push_back(ri);
                    if self.groups[g].admission == AdmissionPolicy::Degrade
                        && self.groups[g].degraded.is_some()
                        && !self.groups[g].degraded_mode
                    {
                        self.groups[g].degraded_mode = true;
                        let queue_depth = self.groups[g].queue.len();
                        self.serve_events.push(
                            now,
                            g,
                            ServeEventKind::DegradeEnter { queue_depth },
                        );
                    }
                }
            }
        } else {
            self.groups[g].queue.push_back(ri);
        }
        // Queued: arm the optional timers. Both are lazily invalidated —
        // a deadline for a request that dispatched in time is ignored,
        // and a hedge for one that completed (or never dispatched) is
        // ignored too.
        if let Some(deadline) = self.groups[g].deadline {
            ctx.queue.schedule(
                now + deadline,
                Event::Ingress(IngressEvent::Deadline { req: ri as u32 }),
            );
        }
        if let Some(hp) = self.groups[g].hedge {
            if !self.requests.is_hedge(ri) {
                if let Some(delay) = self.hedge_delay(g, hp) {
                    ctx.queue.schedule(
                        now + delay,
                        Event::Ingress(IngressEvent::HedgeFire { req: ri as u32 }),
                    );
                }
            }
        }
        // Scale-from-zero: a queued request in a fully parked group
        // starts a replica immediately — the request pays the start cost
        // instead of waiting out the next evaluation tick.
        self.wake_if_parked(g, now, ctx);
        true
    }

    /// Live replicas the autoscaler counts as serving capacity (`Up`
    /// scale state, healthy, alive — busy or idle).
    fn up_count(&self, g: usize, ctx: &Ctx<'_>) -> u32 {
        self.groups[g]
            .members
            .iter()
            .filter(|&&pid| {
                ctx.alive[pid]
                    && self.health[pid] == ReplicaHealth::Up
                    && self.scale[pid] == ScaleState::Up
            })
            .count() as u32
    }

    /// Replicas mid cold/warm start.
    fn pending_count(&self, g: usize, ctx: &Ctx<'_>) -> u32 {
        self.groups[g]
            .members
            .iter()
            .filter(|&&pid| {
                ctx.alive[pid]
                    && self.health[pid] == ReplicaHealth::Up
                    && matches!(
                        self.scale[pid],
                        ScaleState::Provisioning | ScaleState::Warming
                    )
            })
            .count() as u32
    }

    /// Starts one parked replica if the group is autoscaled, has queued
    /// work and zero serving or pending capacity.
    fn wake_if_parked(&mut self, g: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        if self.groups[g].autoscaler.is_none() || self.groups[g].queue.is_empty() {
            return;
        }
        if self.up_count(g, ctx) == 0 && self.pending_count(g, ctx) == 0 {
            self.provision(g, 1, now, ctx);
        }
    }

    /// Provisions up to `k` parked replicas (member order). The first
    /// provision while no plan exists pays the full cold start; every
    /// later one pays the warm plan-load.
    fn provision(&mut self, g: usize, k: u32, now: SimTime, ctx: &mut Ctx<'_>) {
        let Some(policy) = self.groups[g].autoscaler else {
            return;
        };
        let candidates: Vec<usize> = self.groups[g]
            .members
            .iter()
            .copied()
            .filter(|&pid| {
                ctx.alive[pid]
                    && self.health[pid] == ReplicaHealth::Up
                    && self.scale[pid] == ScaleState::Parked
            })
            .take(k as usize)
            .collect();
        for pid in candidates {
            let cold = !self.groups[g].engine_built;
            self.groups[g].engine_built = true;
            self.scale[pid] = ScaleState::Provisioning;
            self.scale_gen[pid] = self.scale_gen[pid].wrapping_add(1);
            self.serve_events
                .push(now, g, ServeEventKind::ReplicaProvisioned { pid, cold });
            // A cold start splits into the build/plan-fetch phase
            // (skipped warm) and the Warming plan-load phase everyone
            // pays; `start_costs` clamps cold ≥ warm ≥ 1 ms.
            let build_phase = if cold {
                policy.cold_start.saturating_sub(policy.warm_start)
            } else {
                jetsim_des::SimDuration::ZERO
            };
            ctx.queue.schedule(
                now + build_phase,
                Event::Ingress(IngressEvent::ScaleUpDone {
                    pid: pid as u32,
                    gen: self.scale_gen[pid],
                }),
            );
        }
    }

    /// A provisioning replica finished its current phase: `Provisioning`
    /// rolls into `Warming` (the plan-load), `Warming` brings it `Up`
    /// and into the free pool. Stale generations (killed or reaped mid
    /// start) are ignored.
    fn on_scale_up_done(
        &mut self,
        pid: usize,
        gen: u32,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        if self.scale_gen[pid] != gen || self.health[pid] != ReplicaHealth::Up || !ctx.alive[pid] {
            return;
        }
        let Some(g) = self.group_of_pid[pid] else {
            return;
        };
        let Some(policy) = self.groups[g].autoscaler else {
            return;
        };
        match self.scale[pid] {
            ScaleState::Provisioning => {
                self.scale[pid] = ScaleState::Warming;
                ctx.queue.schedule(
                    now + policy.warm_start,
                    Event::Ingress(IngressEvent::ScaleUpDone {
                        pid: pid as u32,
                        gen,
                    }),
                );
            }
            ScaleState::Warming => {
                self.scale[pid] = ScaleState::Up;
                self.serve_events
                    .push(now, g, ServeEventKind::ReplicaWarmed { pid });
                self.idle_since[pid] = now;
                self.groups[g].free.push_back(pid);
                self.try_dispatch(g, now, ctx, deps);
            }
            _ => {}
        }
    }

    /// One autoscaler evaluation: judge the window's signals, provision
    /// on pressure, reap on idleness, re-arm the tick.
    fn on_autoscale_tick(&mut self, g: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let Some(policy) = self.groups[g].autoscaler else {
            return;
        };
        let up = self.up_count(g, ctx);
        let pending = self.pending_count(g, ctx);
        let window_secs = policy.evaluate_every.as_secs_f64();
        let grp = &mut self.groups[g];
        let arrival_rate = if window_secs > 0.0 {
            f64::from(grp.win_arrivals) / window_secs
        } else {
            0.0
        };
        let slo_burn = if grp.win_completions > 0 {
            f64::from(grp.win_slo_miss) / f64::from(grp.win_completions)
        } else {
            0.0
        };
        grp.win_arrivals = 0;
        grp.win_completions = 0;
        grp.win_slo_miss = 0;
        let signals = ScaleSignals {
            queued: grp.queue.len(),
            up,
            pending,
            arrival_rate,
            slo_burn,
        };
        match policy.decide(signals) {
            ScaleDecision::Up(k) => self.provision(g, k, now, ctx),
            ScaleDecision::Hold => {
                // Keep-alive reaper: park replicas idle past the
                // keep-alive, never below the floor, and never while
                // requests wait (a drained free pool must not strand a
                // queue that sees no further arrivals).
                if self.groups[g].queue.is_empty() {
                    let mut live = up;
                    let mut reaped = false;
                    let members = self.groups[g].members.clone();
                    for pid in members {
                        if live <= policy.min_replicas {
                            break;
                        }
                        let idle = ctx.alive[pid]
                            && self.health[pid] == ReplicaHealth::Up
                            && self.scale[pid] == ScaleState::Up
                            && !self.busy[pid]
                            && now.saturating_since(self.idle_since[pid]) >= policy.keep_alive;
                        if idle {
                            self.scale[pid] = ScaleState::Parked;
                            self.scale_gen[pid] = self.scale_gen[pid].wrapping_add(1);
                            self.groups[g].free.retain(|&p| p != pid);
                            self.serve_events
                                .push(now, g, ServeEventKind::ReplicaReaped { pid });
                            live -= 1;
                            reaped = true;
                        }
                    }
                    if reaped && live == 0 && pending == 0 && policy.min_replicas == 0 {
                        self.serve_events.push(now, g, ServeEventKind::ParkedToZero);
                    }
                }
            }
        }
        ctx.queue.schedule(
            now + policy.evaluate_every,
            Event::Ingress(IngressEvent::AutoscaleTick { group: g as u32 }),
        );
    }

    /// Breaker admission gate. Returns `false` when the arrival must be
    /// dropped with [`DropKind::BreakerOpen`]; on the half-open
    /// transition the admitted request `ri` becomes the probe.
    fn breaker_gate(&mut self, g: usize, ri: usize, now: SimTime) -> bool {
        let Some(policy) = self.groups[g].breaker else {
            return true;
        };
        match self.groups[g].br_state {
            BrState::Closed => true,
            BrState::Open { until } => {
                if now >= until {
                    self.groups[g].br_state = BrState::HalfOpen { probe: Some(ri) };
                    self.serve_events
                        .push(now, g, ServeEventKind::BreakerHalfOpen);
                    true
                } else {
                    policy.mode == BreakerMode::Brownout
                }
            }
            BrState::HalfOpen { probe: None } => {
                self.groups[g].br_state = BrState::HalfOpen { probe: Some(ri) };
                true
            }
            BrState::HalfOpen { probe: Some(_) } => policy.mode == BreakerMode::Brownout,
        }
    }

    /// The hedge delay: fixed, or the rolling p95 of completed latencies
    /// (`None` until enough samples have been observed).
    fn hedge_delay(&self, g: usize, hp: HedgePolicy) -> Option<jetsim_des::SimDuration> {
        if let Some(delay) = hp.delay {
            return Some(delay);
        }
        let ring = &self.groups[g].lat_ring;
        if ring.len() < hp.min_samples.max(1) {
            return None;
        }
        let mut sorted = ring.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64) * 0.95).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Terminal failure of `ri` for cause `kind`: record the drop, feed
    /// the breaker, resolve an outstanding probe, unlink any hedge twin
    /// and schedule a retry when the policy allows one.
    ///
    /// [`DropKind::HedgeLoser`] and [`DropKind::BreakerOpen`] are
    /// *exempt* causes — they neither count against the breaker (an open
    /// breaker must not keep itself open, and a cancelled twin is a
    /// success story) nor spawn retries.
    fn drop_request(
        &mut self,
        g: usize,
        ri: usize,
        kind: DropKind,
        now: SimTime,
        ctx: &mut Ctx<'_>,
    ) {
        self.requests.mark_dropped(ri, DropRecord { at: now, kind });
        self.unlink_hedge(ri);
        let exempt = matches!(kind, DropKind::HedgeLoser | DropKind::BreakerOpen);
        if exempt {
            self.resolve_probe_neutral(g, ri);
            return;
        }
        self.breaker_record(g, false, now);
        self.resolve_probe(g, ri, false, now);
        if !self.requests.is_hedge(ri) {
            self.maybe_retry(g, ri, now, ctx);
        }
    }

    /// Schedules a retry of failed request `ri` if the group's policy
    /// has attempts left. The backoff is exponential with deterministic
    /// jitter from the group's dedicated stream.
    fn maybe_retry(&mut self, g: usize, ri: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let Some(policy) = self.groups[g].retry else {
            return;
        };
        let next_attempt = self.requests.attempt(ri) + 1;
        if next_attempt >= policy.max_attempts {
            return;
        }
        let base = policy.base_backoff_for(next_attempt).as_secs_f64();
        let jittered = self.groups[g].retry_rng.jitter(base, policy.jitter);
        let backoff = jetsim_des::SimDuration::from_secs_f64(jittered);
        ctx.queue.schedule(
            now + backoff,
            Event::Ingress(IngressEvent::Retry { req: ri as u32 }),
        );
    }

    /// A failed request's backoff elapsed: submit the next attempt as a
    /// fresh arrival linked to its parent.
    fn on_retry(
        &mut self,
        parent: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        let g = self.requests.group(parent);
        let seq = self.groups[g].seq;
        self.groups[g].seq += 1;
        let ri = self.requests.push_arrival(g, seq, now);
        self.requests
            .mark_retry(ri, self.requests.attempt(parent) + 1, parent);
        self.admit(g, ri, now, ctx);
        self.try_dispatch(g, now, ctx, deps);
    }

    /// A request's queueing deadline expired: if it is still waiting in
    /// the queue, fail it (dispatched requests run to completion — the
    /// report judges their lateness).
    fn on_deadline(
        &mut self,
        ri: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        if !self.requests.is_queued(ri) {
            return;
        }
        let g = self.requests.group(ri);
        self.groups[g].queue.retain(|&q| q != ri);
        self.drop_request(g, ri, DropKind::DeadlineExpired, now, ctx);
        self.try_dispatch(g, now, ctx, deps);
    }

    /// A hedged primary's delay elapsed: if it is dispatched but not yet
    /// completed, submit a duplicate to race it.
    fn on_hedge_fire(
        &mut self,
        primary: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        if !self.requests.is_in_flight(primary) || self.hedge_peer.contains_key(&primary) {
            return;
        }
        let g = self.requests.group(primary);
        let seq = self.groups[g].seq;
        self.groups[g].seq += 1;
        let ri = self.requests.push_arrival(g, seq, now);
        self.requests.mark_hedge(ri, primary);
        self.hedge_peer.insert(primary, ri);
        self.hedge_peer.insert(ri, primary);
        if !self.admit(g, ri, now, ctx) {
            // The duplicate died at admission; the pair never formed.
            self.unlink_hedge(ri);
        }
        self.try_dispatch(g, now, ctx, deps);
    }

    /// Removes `ri`'s hedge pairing (both directions), if any.
    fn unlink_hedge(&mut self, ri: usize) {
        if let Some(peer) = self.hedge_peer.remove(&ri) {
            self.hedge_peer.remove(&peer);
        }
    }

    /// `winner` completed: cancel its still-queued twin, if the pair is
    /// still live. A twin already in flight completes naturally and is
    /// deduplicated by the report's logical-request accounting.
    fn resolve_hedge_on_complete(&mut self, g: usize, winner: usize, now: SimTime) {
        let Some(peer) = self.hedge_peer.remove(&winner) else {
            return;
        };
        self.hedge_peer.remove(&peer);
        if self.requests.is_queued(peer) {
            self.groups[g].queue.retain(|&q| q != peer);
            self.requests.mark_dropped(
                peer,
                DropRecord {
                    at: now,
                    kind: DropKind::HedgeLoser,
                },
            );
            self.resolve_probe_neutral(g, peer);
        }
    }

    /// Feeds one terminal outcome into the breaker's rolling window and
    /// trips it when the error rate crosses the threshold.
    fn breaker_record(&mut self, g: usize, ok: bool, now: SimTime) {
        let Some(policy) = self.groups[g].breaker else {
            return;
        };
        if self.groups[g].br_state != BrState::Closed {
            return;
        }
        let grp = &mut self.groups[g];
        grp.br_window.push_back(ok);
        if !ok {
            grp.br_failures += 1;
        }
        while grp.br_window.len() > policy.window {
            if let Some(old) = grp.br_window.pop_front() {
                if !old {
                    grp.br_failures -= 1;
                }
            }
        }
        if grp.br_window.len() >= policy.min_samples && grp.br_failures > 0 {
            let error_rate = grp.br_failures as f64 / grp.br_window.len() as f64;
            if error_rate >= policy.error_threshold {
                grp.br_state = BrState::Open {
                    until: now + policy.cooldown,
                };
                grp.br_forced = policy.mode == BreakerMode::Brownout;
                grp.br_window.clear();
                grp.br_failures = 0;
                self.serve_events
                    .push(now, g, ServeEventKind::BreakerTrip { error_rate });
            }
        }
    }

    /// Resolves an outstanding half-open probe: success closes the
    /// breaker, failure re-opens it for another cooldown.
    fn resolve_probe(&mut self, g: usize, ri: usize, ok: bool, now: SimTime) {
        let Some(policy) = self.groups[g].breaker else {
            return;
        };
        if self.groups[g].br_state != (BrState::HalfOpen { probe: Some(ri) }) {
            return;
        }
        if ok {
            self.groups[g].br_state = BrState::Closed;
            self.groups[g].br_forced = false;
            self.groups[g].br_window.clear();
            self.groups[g].br_failures = 0;
            self.serve_events.push(now, g, ServeEventKind::BreakerClose);
        } else {
            self.groups[g].br_state = BrState::Open {
                until: now + policy.cooldown,
            };
        }
    }

    /// A probe that ended for an exempt reason (hedge cancellation)
    /// re-arms the half-open slot instead of deciding the breaker.
    fn resolve_probe_neutral(&mut self, g: usize, ri: usize) {
        if self.groups[g].br_state == (BrState::HalfOpen { probe: Some(ri) }) {
            self.groups[g].br_state = BrState::HalfOpen { probe: None };
        }
    }

    /// A server returned from synchronize: complete its batch, free it,
    /// relax degraded mode if the queue drained, and keep dispatching.
    fn on_server_free(
        &mut self,
        pid: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        let Some(g) = self.group_of_pid[pid] else {
            return;
        };
        let was_busy = std::mem::replace(&mut self.busy[pid], false);
        for ri in std::mem::take(&mut self.inflight[pid]) {
            self.requests.mark_completed(ri, now);
            let latency = now.saturating_since(self.requests.arrival(ri));
            if let Some(policy) = self.groups[g].autoscaler {
                self.groups[g].win_completions += 1;
                if policy.slo_target.is_some_and(|target| latency > target) {
                    self.groups[g].win_slo_miss += 1;
                }
            }
            if self.groups[g].hedge.is_some() {
                let grp = &mut self.groups[g];
                if grp.lat_ring.len() < LAT_RING_CAP {
                    grp.lat_ring.push(latency);
                } else {
                    grp.lat_ring[grp.lat_pos] = latency;
                    grp.lat_pos = (grp.lat_pos + 1) % LAT_RING_CAP;
                }
            }
            // A completion that missed the group's deadline is a success
            // for the requester *only* if no deadline was promised.
            let ok = match self.groups[g].deadline {
                Some(deadline) => latency <= deadline,
                None => true,
            };
            self.breaker_record(g, ok, now);
            self.resolve_probe(g, ri, ok, now);
            self.resolve_hedge_on_complete(g, ri, now);
        }
        if ctx.alive[pid]
            && was_busy
            && self.health[pid] == ReplicaHealth::Up
            && self.scale[pid] == ScaleState::Up
        {
            self.idle_since[pid] = now;
            self.groups[g].free.push_back(pid);
        }
        // Hysteresis: leave degraded mode only once the queue has
        // drained well below capacity, so the group doesn't oscillate at
        // the admission boundary.
        let queue_depth = self.groups[g].queue.len();
        if self.groups[g].degraded_mode && queue_depth * 4 <= self.groups[g].queue_cap {
            self.groups[g].degraded_mode = false;
            self.serve_events
                .push(now, g, ServeEventKind::DegradeExit { queue_depth });
        }
        self.try_dispatch(g, now, ctx, deps);
    }

    /// The OOM killer took a serve replica: its in-flight requests are
    /// failed with [`DropKind::Killed`] (they were neither completed nor
    /// answered — the pre-resilience bookkeeping silently leaked them),
    /// retries are scheduled where policy allows, and the replica either
    /// schedules a restart or is ejected.
    pub(crate) fn on_replica_killed(&mut self, pid: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let Some(g) = self.group_of_pid[pid] else {
            return;
        };
        self.busy[pid] = false;
        self.groups[g].free.retain(|&p| p != pid);
        let dead = std::mem::take(&mut self.inflight[pid]);
        let failed_inflight = dead.len();
        for ri in dead {
            self.drop_request(g, ri, DropKind::Killed, now, ctx);
        }
        self.serve_events.push(
            now,
            g,
            ServeEventKind::ReplicaDown {
                pid,
                failed_inflight,
            },
        );
        // A kill mid cold-start cancels the provision (the stale
        // `ScaleUpDone` is generation-gated); the replica returns parked
        // and the autoscaler re-provisions on its own signals — recovery
        // restores the *process*, never serving capacity, so the two
        // supervisors cannot double-provision.
        if matches!(
            self.scale[pid],
            ScaleState::Provisioning | ScaleState::Warming
        ) {
            self.scale[pid] = ScaleState::Parked;
            self.scale_gen[pid] = self.scale_gen[pid].wrapping_add(1);
        }
        match self.groups[g].recovery {
            Some(policy) if self.restarts_used[pid] < policy.max_restarts => {
                self.restarts_used[pid] += 1;
                self.health[pid] = ReplicaHealth::Restarting;
                ctx.queue.schedule(
                    now + policy.restart_cost,
                    Event::Ingress(IngressEvent::RestartDone { pid: pid as u32 }),
                );
            }
            _ => {
                self.health[pid] = ReplicaHealth::Ejected;
                self.serve_events
                    .push(now, g, ServeEventKind::ReplicaEjected { pid });
            }
        }
    }

    /// A killed replica paid its restart cost: re-admit it if its memory
    /// still fits (the board may have tightened since), reset its process
    /// state and hand it back to its group. A revival that does not fit
    /// burns another restart attempt and waits a further restart period —
    /// a supervisor retrying, not giving up — until attempts run out.
    fn on_restart_done(
        &mut self,
        pid: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        if self.health[pid] != ReplicaHealth::Restarting {
            return;
        }
        let Some(g) = self.group_of_pid[pid] else {
            return;
        };
        if !deps.guard.revival_fits(ctx, pid) {
            match self.groups[g].recovery {
                Some(policy) if self.restarts_used[pid] < policy.max_restarts => {
                    self.restarts_used[pid] += 1;
                    ctx.queue.schedule(
                        now + policy.restart_cost,
                        Event::Ingress(IngressEvent::RestartDone { pid: pid as u32 }),
                    );
                }
                _ => {
                    self.health[pid] = ReplicaHealth::Ejected;
                    self.serve_events
                        .push(now, g, ServeEventKind::ReplicaEjected { pid });
                }
            }
            return;
        }
        ctx.alive[pid] = true;
        deps.gpu.clear_ready(pid, ctx);
        let proc = &mut ctx.procs[pid];
        proc.next_launch = 0;
        proc.cur_launch = jetsim_des::SimDuration::ZERO;
        proc.cur_blocking = jetsim_des::SimDuration::ZERO;
        proc.cur_gpu = jetsim_des::SimDuration::ZERO;
        // A restarted process comes up with cold caches, and a bumped
        // scheduler generation invalidates any tick from its former life.
        proc.cache_cold = true;
        let gen = proc.cpu.gen.wrapping_add(1);
        proc.cpu = RqThread::new();
        proc.cpu.gen = gen;
        self.health[pid] = ReplicaHealth::Up;
        self.serve_events
            .push(now, g, ServeEventKind::ReplicaUp { pid });
        // A replica that was parked (or mid-provision) when killed comes
        // back as a healthy *parked* process: the autoscaler, not the
        // supervisor, decides when it serves again.
        if self.scale[pid] == ScaleState::Up {
            self.idle_since[pid] = now;
            self.groups[g].free.push_back(pid);
            self.try_dispatch(g, now, ctx, deps);
        }
    }

    /// Matches free servers against the queue until the batcher says
    /// wait (or everything is busy/empty).
    fn try_dispatch(
        &mut self,
        g: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
        deps: &mut IngressDeps<'_>,
    ) {
        loop {
            // Next live free server (members the OOM killer took are
            // dropped lazily here; restarting/ejected members were
            // removed eagerly but a stale entry is filtered the same way).
            let pid = loop {
                match self.groups[g].free.pop_front() {
                    Some(p)
                        if ctx.alive[p]
                            && self.health[p] == ReplicaHealth::Up
                            && self.scale[p] == ScaleState::Up =>
                    {
                        break p
                    }
                    Some(_) => continue,
                    None => return,
                }
            };
            let grp = &mut self.groups[g];
            let oldest = grp.queue.front().map(|&ri| self.requests.arrival(ri));
            match grp.policy.decide(now, grp.queue.len(), oldest) {
                BatchDecision::Idle => {
                    grp.free.push_front(pid);
                    return;
                }
                BatchDecision::WaitUntil(deadline) => {
                    grp.free.push_front(pid);
                    if grp.flush_at != Some(deadline) {
                        grp.flush_gen += 1;
                        grp.flush_at = Some(deadline);
                        let gen = grp.flush_gen;
                        ctx.queue.schedule(
                            deadline,
                            Event::Ingress(IngressEvent::Flush {
                                group: g as u32,
                                gen,
                            }),
                        );
                    }
                    return;
                }
                BatchDecision::Dispatch(k) => {
                    // Any pending flush is now stale.
                    grp.flush_gen += 1;
                    grp.flush_at = None;
                    let degraded = (grp.degraded_mode || grp.br_forced) && grp.degraded.is_some();
                    let engine = if degraded {
                        Arc::clone(grp.degraded.as_ref().expect("checked"))
                    } else {
                        Arc::clone(&grp.normal)
                    };
                    let oldest = oldest.expect("dispatch implies a queued request");
                    let batch: Vec<usize> = (0..k)
                        .map(|_| grp.queue.pop_front().expect("decide bounded by queue"))
                        .collect();
                    let queue_depth = grp.queue.len();
                    for &ri in &batch {
                        self.requests.mark_dispatched(ri, now, pid, k, degraded);
                    }
                    self.inflight[pid] = batch;
                    self.busy[pid] = true;
                    self.serve_events.push(
                        now,
                        g,
                        ServeEventKind::BatchFormed {
                            pid,
                            size: k,
                            oldest_wait: now.saturating_since(oldest),
                            queue_depth,
                            degraded,
                        },
                    );
                    // Hand the batch to the host thread: a server is idle
                    // between batches (next_launch == 0), so swapping the
                    // engine at this boundary is safe.
                    let proc = &mut ctx.procs[pid];
                    if !Arc::ptr_eq(&proc.engine, &engine) {
                        proc.engine = engine;
                    }
                    proc.cur_queue_delay = now.saturating_since(oldest);
                    proc.ec_start = now;
                    deps.sched.start_launch(pid, now, ctx, deps.gpu);
                }
            }
        }
    }
}
