//! The GPU engine: kernel dispatch, timeslice affinity, MPS packing,
//! in-flight power/utilisation accrual and kernel-event tracing.

use jetsim_des::{SimDuration, SimRng, SimTime};
use jetsim_device::power::GpuLoad;
use jetsim_device::{DeviceSpec, GpuArch};
use jetsim_trt::Engine;

use crate::config::{CpuModel, GpuPolicy, SimConfig};
use crate::soa::{KernelEventColumns, PreemptionColumns};

use super::gpu_policy::{make_policy, GpuSchedPolicy, PolicyView, ReadySet};
use super::sched::{CpuSched, Resume, SchedEvent};
use super::{Component, Ctx, Event};

/// Events consumed by [`GpuEngine`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum GpuEvent {
    /// The GPU finished the kernel dispatched under the given
    /// generation. The calendar queue cannot unschedule, so a preemption
    /// bumps the engine's generation instead and the stale completion is
    /// dropped on delivery.
    Done {
        /// Dispatch generation the kernel was started under.
        gen: u32,
    },
}

/// One kernel currently executing on the GPU.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    pid: usize,
    kernel_index: usize,
    ec_seq: u64,
    start: SimTime,
    end: SimTime,
    /// Power coefficient of the kernel's precision.
    coef: f64,
    /// Tensor-core activity while it runs.
    tc: f64,
    /// Fraction of its span doing datapath work (the launch-gap head is
    /// charged at idle power).
    work_fraction: f64,
    /// DRAM bytes per second while it runs.
    bytes_per_sec: f64,
    /// How far this kernel's window contribution has been accounted.
    accounted_until: SimTime,
}

/// Accumulators over one governor/sampling window.
#[derive(Debug, Clone, Copy, Default)]
struct Window {
    busy: SimDuration,
    coef_weighted: f64,
    tc_weighted: f64,
    bytes: u64,
    cpu_busy: SimDuration,
}

impl Window {
    fn load(&self, interval: SimDuration, device: &DeviceSpec) -> (f64, GpuLoad) {
        let secs = interval.as_secs_f64();
        let busy_secs = self.busy.as_secs_f64();
        let busy_frac = if secs == 0.0 {
            0.0
        } else {
            (busy_secs / secs).min(1.0)
        };
        let load = GpuLoad {
            busy: busy_frac,
            precision_w: if busy_secs == 0.0 {
                0.0
            } else {
                self.coef_weighted / busy_secs
            },
            tc_util: if busy_secs == 0.0 {
                0.0
            } else {
                (self.tc_weighted / busy_secs).min(1.0)
            },
            mem_util: if secs == 0.0 {
                0.0
            } else {
                (self.bytes as f64 / (device.gpu.bytes_per_sec() * secs)).min(1.0)
            },
        };
        let cpu_cores = if secs == 0.0 {
            0.0
        } else {
            self.cpu_busy.as_secs_f64() / secs
        };
        (cpu_cores, load)
    }
}

/// Memoised per-kernel dispatch quantities for one engine at one
/// frequency step. `exec_time`/`tc_activity`/`sm_active`/`issue_slot`
/// are pure roofline math (several `powf` chains) over inputs that only
/// change when the governor moves the clock or the ingress swaps a
/// serving engine — so they are computed once per (engine, step) here
/// instead of on every dispatch. Values are bit-identical to the direct
/// calls: the cache stores the same expressions, evaluated in the same
/// order.
#[derive(Debug, Default)]
struct KernelTimeCache {
    /// Identity of the engine the cache was built against (the `Arc`
    /// address as an integer; engines live for the whole run, so an
    /// address uniquely names one).
    engine_id: usize,
    /// Frequency step the cache was built at.
    step: usize,
    /// Bit pattern of the profiler overhead factor the cache was built
    /// with. Constant per run today, but keyed anyway so a future
    /// per-policy or per-phase overhead cannot silently serve stale
    /// timings.
    overhead_bits: u64,
    /// `exec_time(..) * kernel_overhead_factor`, per kernel.
    exec_scaled: Vec<SimDuration>,
    /// `tc_activity(..)`, per kernel.
    tc: Vec<f64>,
    /// `sm_active(..)`, per kernel (trace-recording path).
    sm: Vec<f64>,
    /// `issue_slot(..)`, per kernel (trace-recording path).
    issue: Vec<f64>,
}

impl KernelTimeCache {
    /// Computes every column for `(engine, step)`.
    fn build(engine: &Engine, gpu: &GpuArch, step: usize, overhead: f64) -> Self {
        let batch = engine.batch();
        let kernels = engine.kernels();
        let mut cache = KernelTimeCache {
            engine_id: engine as *const Engine as usize,
            step,
            overhead_bits: overhead.to_bits(),
            exec_scaled: Vec::with_capacity(kernels.len()),
            tc: Vec::with_capacity(kernels.len()),
            sm: Vec::with_capacity(kernels.len()),
            issue: Vec::with_capacity(kernels.len()),
        };
        for k in kernels {
            cache
                .exec_scaled
                .push(k.exec_time(gpu, batch, step).mul_f64(overhead));
            cache.tc.push(k.tc_activity(gpu, batch, step));
            cache.sm.push(k.sm_active(gpu, batch));
            cache.issue.push(k.issue_slot(gpu, batch, step));
        }
        cache
    }
}

/// A never-evicting memo table of [`KernelTimeCache`] entries, shared
/// across processes: workloads that revisit a clock step (an oscillating
/// governor, a throttle lock releasing) or alternate engines (a serving
/// batcher toggling batch sizes) hit warm entries instead of re-running
/// the roofline math. Bounded by the number of distinct
/// `(engine, step)` pairs a run actually visits — a few kilobytes each.
#[derive(Debug, Default)]
struct KernelTimeCaches {
    entries: Vec<KernelTimeCache>,
}

impl KernelTimeCaches {
    /// The memoised timings for `(engine, step)`, building them on first
    /// sight. The hit entry is swapped to the front so the common
    /// steady-state lookup is one compare.
    #[inline]
    fn get(
        &mut self,
        engine: &Engine,
        gpu: &GpuArch,
        step: usize,
        overhead: f64,
    ) -> &KernelTimeCache {
        let id = engine as *const Engine as usize;
        let overhead_bits = overhead.to_bits();
        if let Some(i) = self
            .entries
            .iter()
            .position(|c| c.engine_id == id && c.step == step && c.overhead_bits == overhead_bits)
        {
            self.entries.swap(0, i);
        } else {
            let built = KernelTimeCache::build(engine, gpu, step, overhead);
            self.entries.insert(0, built);
        }
        &self.entries[0]
    }
}

/// The GPU component: owns execution state, the DVFS/sampling
/// accounting windows, and the kernel-event trace (with its dedicated
/// jitter RNG stream, so toggling recording cannot perturb dynamics).
pub(crate) struct GpuEngine {
    /// Currently executing kernel, if any.
    current: Option<InFlight>,
    /// Process whose queue the GPU is draining (timeslice affinity).
    affinity: Option<usize>,
    /// When the current timeslice started.
    slice_start: SimTime,
    /// Current DVFS frequency step (written by the governor and the
    /// memory guard's throttle locks; read at dispatch time).
    pub(crate) freq_step: usize,
    /// Accumulator drained by the governor each DVFS tick.
    dvfs_window: Window,
    /// Accumulator drained by the sampler each sample tick.
    sample_window: Window,
    /// GPU busy time within the measured window.
    pub(crate) gpu_busy_measured: SimDuration,
    /// Kernel events recorded inside the measured window (columnar; the
    /// hot loop appends word-sized columns, `finalize` materialises the
    /// AoS view once).
    pub(crate) kernel_events: KernelEventColumns,
    /// Independent stream for kernel-event jitter samples, so toggling
    /// `record_kernel_events` cannot perturb the simulation dynamics:
    /// aggregate results are bit-identical with tracing on or off.
    trace_rng: SimRng,
    /// Memoised kernel timings per `(engine, step)` (see
    /// [`KernelTimeCaches`]).
    ktime: KernelTimeCaches,
    /// The scheduling discipline deciding dispatch order and preemption.
    policy: Box<dyn GpuSchedPolicy>,
    /// Whether the policy can ever preempt — hoisted so the enqueue hot
    /// path skips the decision machinery entirely for the common
    /// non-preemptive disciplines.
    can_preempt: bool,
    /// O(1) occupancy index over the per-process ready queues, kept in
    /// lockstep with `Proc::ready` by the enqueue/pop/clear helpers.
    ready_set: ReadySet,
    /// Per-process scheduling priorities (from the config; static).
    priorities: Vec<u8>,
    /// Per-process SM share weights (from the config; static).
    sm_shares: Vec<f64>,
    /// Dispatch generation: bumped on preemption so the cancelled
    /// kernel's already-scheduled `Done` event is dropped on delivery.
    gen: u32,
    /// Stall charged ahead of the next dispatch (set by a preemption,
    /// consumed — and reset — by `try_dispatch`; zero on every
    /// non-preemptive path).
    pending_penalty: SimDuration,
    /// Preemption events recorded inside the measured window.
    pub(crate) preemptions: PreemptionColumns,
}

impl Component for GpuEngine {
    type Event = GpuEvent;
    type Deps<'d> = &'d mut CpuSched;

    #[inline]
    fn handle(&mut self, ev: GpuEvent, now: SimTime, ctx: &mut Ctx<'_>, sched: &mut CpuSched) {
        match ev {
            GpuEvent::Done { gen } => self.on_gpu_done(gen, now, ctx, sched),
        }
    }
}

/// Builds a [`PolicyView`] over `$gpu`'s disjoint fields at `$now`, so a
/// `&mut` policy call can coexist with the immutable view borrows.
macro_rules! policy_view {
    ($gpu:expr, $now:expr, $ctx:expr) => {
        PolicyView {
            now: $now,
            affinity: $gpu.affinity,
            slice_start: $gpu.slice_start,
            timeslice: $ctx.config.device.gpu.timeslice,
            gpu_sharing: $ctx.config.gpu_sharing,
            ready: &$gpu.ready_set,
            priorities: &$gpu.priorities,
            sm_shares: &$gpu.sm_shares,
        }
    };
}

impl GpuEngine {
    /// Creates the GPU engine at the top frequency step with pre-sized
    /// trace storage, running the policy named by `config.gpu_policy`.
    pub(crate) fn new(
        config: &SimConfig,
        top_step: usize,
        trace_rng: SimRng,
        est_events: usize,
    ) -> Self {
        GpuEngine {
            current: None,
            affinity: None,
            slice_start: SimTime::ZERO,
            freq_step: top_step,
            dvfs_window: Window::default(),
            sample_window: Window::default(),
            gpu_busy_measured: SimDuration::ZERO,
            kernel_events: KernelEventColumns::with_capacity(est_events),
            trace_rng,
            ktime: KernelTimeCaches::default(),
            policy: make_policy(&config.gpu_policy),
            can_preempt: matches!(config.gpu_policy, GpuPolicy::Priority { .. }),
            ready_set: ReadySet::new(config.processes.len()),
            priorities: config.processes.iter().map(|p| p.priority).collect(),
            sm_shares: config.processes.iter().map(|p| p.sm_share).collect(),
            gen: 0,
            pending_penalty: SimDuration::ZERO,
            preemptions: PreemptionColumns::default(),
        }
    }

    /// Enqueues a newly launched kernel at the back of `pid`'s ready
    /// queue — the single GPU-queue enqueue point, keeping the occupancy
    /// bitset and the policy's arrival log in lockstep, and giving a
    /// preemptive policy its chance to cancel the in-flight kernel.
    pub(crate) fn enqueue_ready(
        &mut self,
        pid: usize,
        kernel_index: usize,
        now: SimTime,
        ctx: &mut Ctx<'_>,
    ) {
        ctx.procs[pid].ready.push_back(kernel_index);
        self.ready_set.set(pid);
        self.policy.on_ready(pid);
        if self.can_preempt && self.current.is_some() {
            self.maybe_preempt(now, ctx);
        }
    }

    /// Wipes `pid`'s ready queue (OOM kill, replica restart), keeping
    /// the occupancy bitset and the policy's bookkeeping consistent.
    pub(crate) fn clear_ready(&mut self, pid: usize, ctx: &mut Ctx<'_>) {
        ctx.procs[pid].ready.clear();
        self.ready_set.unset(pid);
        self.policy.on_cleared(pid);
    }

    /// Pops the head of `pid`'s ready queue (which the policy guaranteed
    /// non-empty), clearing its occupancy bit on the empty transition.
    fn pop_ready(&mut self, pid: usize, ctx: &mut Ctx<'_>) -> usize {
        let kernel_index = ctx.procs[pid].ready.pop_front().expect("picked non-empty");
        if ctx.procs[pid].ready.is_empty() {
            self.ready_set.unset(pid);
        }
        kernel_index
    }

    /// Charges host CPU busy time into both accounting windows.
    pub(crate) fn charge_cpu(&mut self, cost: SimDuration) {
        self.dvfs_window.cpu_busy += cost;
        self.sample_window.cpu_busy += cost;
    }

    /// Drains the governor's accounting window into a load summary.
    pub(crate) fn drain_dvfs_window(
        &mut self,
        interval: SimDuration,
        device: &DeviceSpec,
    ) -> (f64, GpuLoad) {
        let out = self.dvfs_window.load(interval, device);
        self.dvfs_window = Window::default();
        out
    }

    /// Drains the sampler's accounting window into a load summary.
    pub(crate) fn drain_sample_window(
        &mut self,
        period: SimDuration,
        device: &DeviceSpec,
    ) -> (f64, GpuLoad) {
        let out = self.sample_window.load(period, device);
        self.sample_window = Window::default();
        out
    }

    /// Dispatches the next ready kernel if the GPU is idle.
    pub(crate) fn try_dispatch(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        if self.current.is_some() || self.ready_set.is_empty() {
            return;
        }
        // One immutable view serves all three policy questions; the pick
        // guarantees the chosen queue is non-empty. The hide fraction can
        // be read before the pop because a process is excluded from its
        // own contention scan either way.
        let view = policy_view!(self, now, ctx);
        let Some(pid) = self.policy.pick(&view) else {
            return;
        };
        let spatial = self.policy.spatial(&view);
        let hide = self.policy.hide_fraction(pid, &view);
        // A preemption charges its context-discard stall to whatever runs
        // next; zero on every non-preemptive path.
        let penalty = self.pending_penalty;
        self.pending_penalty = SimDuration::ZERO;
        let mut start = now + penalty;
        if self.affinity != Some(pid) {
            // No MPS on Jetson: crossing processes costs a GPU context
            // switch. Under spatial sharing the switch is free.
            if self.affinity.is_some() && !spatial {
                start += ctx.config.device.gpu.ctx_switch;
            }
            self.affinity = Some(pid);
            self.slice_start = start;
        }
        let kernel_index = self.pop_ready(pid, ctx);
        // Disjoint-field borrows keep the engine referenced in place — no
        // per-dispatch `Arc` refcount traffic on the hot path.
        let engine = &ctx.procs[pid].engine;
        let batch = engine.batch();
        let gpu_arch = &ctx.config.device.gpu;
        let overhead = ctx.config.profiler.kernel_overhead_factor();
        let times = self.ktime.get(engine, gpu_arch, self.freq_step, overhead);
        let (exec_base, tc) = (times.exec_scaled[kernel_index], times.tc[kernel_index]);
        let mut exec = exec_base.mul_f64(ctx.rng.uniform(0.95, 1.05));
        if let Some(hidden) = hide {
            // Spatial sharing packs this kernel against other processes'
            // queued work, hiding part of its span.
            exec = exec.mul_f64(1.0 - hidden);
        }
        let end = start + exec;
        let ec_seq = ctx.procs[pid].ec_seq;
        // Power/governor metadata. Launch-gap time at the front of every
        // kernel keeps the GPU "busy" for the utilisation counter but
        // toggles no datapath, so it is charged at idle power — this is
        // why small-batch runs draw less despite ~100 % GPU utilisation
        // (paper fig 8). Contributions accrue continuously so kernels
        // longer than a governor window are charged to every window they
        // span.
        let kernel = &ctx.procs[pid].engine.kernels()[kernel_index];
        let coef = ctx
            .config
            .device
            .power
            .precision_coefficient(kernel.precision);
        let exec_secs = exec.as_secs_f64();
        let work_fraction =
            1.0 - (gpu_arch.kernel_min_gap.as_secs_f64() / exec_secs.max(f64::EPSILON)).min(1.0);
        let bytes_per_sec = (kernel.bytes * u64::from(batch)) as f64 / exec_secs.max(f64::EPSILON);
        self.current = Some(InFlight {
            pid,
            kernel_index,
            ec_seq,
            start,
            end,
            coef,
            tc,
            work_fraction,
            bytes_per_sec,
            accounted_until: start,
        });
        ctx.queue
            .schedule(end, Event::Gpu(GpuEvent::Done { gen: self.gen }));
    }

    /// Asks a preemptive policy whether the freshly enqueued work should
    /// cancel the in-flight kernel, and performs the cancellation: the
    /// partial occupancy is accrued and charged to the victim's EC (the
    /// work is wasted — the kernel re-runs from scratch), the kernel
    /// returns to the *front* of its owner's queue, the scheduled `Done`
    /// is invalidated by bumping the generation, and the policy's
    /// penalty stalls the next dispatch.
    fn maybe_preempt(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        let Some(snapshot) = self.current else {
            return;
        };
        if snapshot.end <= now {
            // Completing at this very instant: let the Done land.
            return;
        }
        let view = policy_view!(self, now, ctx);
        let Some(by_pid) = self.policy.preempt(snapshot.pid, &view) else {
            return;
        };
        self.accrue_gpu(now);
        let inflight = self.current.take().expect("checked in-flight above");
        // Occupancy until the cut is real GPU time: the victim's EC and
        // the measured busy counter both absorb it.
        // `start` can sit *after* `now`: dispatch pushes it forward by a
        // context switch or a preemption penalty, and a cut can land in
        // that gap. Saturating spans charge zero occupancy then, and the
        // trace clamps `preempted_at` so it never precedes `start`.
        ctx.procs[inflight.pid].cur_gpu += now.saturating_since(inflight.start);
        if now > ctx.warmup_end {
            let clipped = now.saturating_since(ctx.warmup_end.max_of(inflight.start));
            self.gpu_busy_measured += clipped;
            self.preemptions.push(
                inflight.pid,
                inflight.ec_seq,
                inflight.kernel_index,
                inflight.start,
                now.max_of(inflight.start),
                by_pid,
            );
        }
        // The cancelled kernel is still the next thing its stream must
        // run: back to the head of the queue, not the tail.
        ctx.procs[inflight.pid]
            .ready
            .push_front(inflight.kernel_index);
        self.ready_set.set(inflight.pid);
        self.policy.on_requeue_front(inflight.pid);
        self.gen = self.gen.wrapping_add(1);
        self.pending_penalty = self.policy.preempt_penalty();
    }

    /// Accrues the in-flight kernel's power/utilisation contribution up
    /// to `now` into both accounting windows.
    pub(crate) fn accrue_gpu(&mut self, now: SimTime) {
        let Some(inflight) = self.current.as_mut() else {
            return;
        };
        let upto = if now < inflight.end {
            now
        } else {
            inflight.end
        };
        if upto <= inflight.accounted_until {
            return;
        }
        let span = upto.since(inflight.accounted_until);
        let secs = span.as_secs_f64();
        let (coef, tc, wf, bps) = (
            inflight.coef,
            inflight.tc,
            inflight.work_fraction,
            inflight.bytes_per_sec,
        );
        inflight.accounted_until = upto;
        for window in [&mut self.dvfs_window, &mut self.sample_window] {
            window.busy += span;
            window.coef_weighted += coef * secs * wf;
            window.tc_weighted += tc * secs;
            window.bytes += (bps * secs) as u64;
        }
    }

    /// The GPU finished a kernel: emit its event, wake the owner if this
    /// completed an EC, and dispatch the next kernel. Completions from a
    /// generation older than the engine's were preempted after their
    /// `Done` was scheduled and are dropped here.
    fn on_gpu_done(&mut self, gen: u32, now: SimTime, ctx: &mut Ctx<'_>, sched: &mut CpuSched) {
        if gen != self.gen {
            return;
        }
        self.accrue_gpu(now);
        let inflight = self.current.take().expect("GpuDone without kernel");
        let exec = inflight.end.since(inflight.start);
        ctx.procs[inflight.pid].cur_gpu += exec;

        if inflight.end > ctx.warmup_end {
            let clipped = inflight.end.since(ctx.warmup_end.max_of(inflight.start));
            self.gpu_busy_measured += clipped.max_of(SimDuration::ZERO);
        }
        // Disjoint-field borrows: the engine stays referenced in place
        // (no `Arc` clone per completion) while the jitter samples come
        // from the dedicated trace stream, so disabling recording cannot
        // change the dynamics.
        let engine = &ctx.procs[inflight.pid].engine;
        let kernel_count = engine.kernel_count();
        if inflight.end > ctx.warmup_end && ctx.config.record_kernel_events {
            let kernel = &engine.kernels()[inflight.kernel_index];
            let batch = engine.batch();
            // The clock may have moved since dispatch; the utilisation
            // samples always read the *current* step, exactly as the
            // uncached code did.
            let gpu_arch = &ctx.config.device.gpu;
            let overhead = ctx.config.profiler.kernel_overhead_factor();
            let times = self.ktime.get(engine, gpu_arch, self.freq_step, overhead);
            let (sm_base, issue_base, tc_base) = (
                times.sm[inflight.kernel_index],
                times.issue[inflight.kernel_index],
                times.tc[inflight.kernel_index],
            );
            let sm = (sm_base * self.trace_rng.uniform(0.92, 1.08)).clamp(0.0, 1.0);
            let issue = (issue_base * self.trace_rng.uniform(0.85, 1.15)).clamp(0.0, 0.8);
            let tc = (tc_base * self.trace_rng.uniform(0.88, 1.12)).clamp(0.0, 1.0);
            self.kernel_events.push(
                inflight.pid,
                inflight.ec_seq,
                inflight.kernel_index,
                inflight.start,
                inflight.end,
                kernel.precision,
                sm,
                issue,
                tc,
                kernel.bytes * u64::from(batch),
            );
        }

        if inflight.kernel_index + 1 == kernel_count && ctx.alive[inflight.pid] {
            if ctx.config.cpu_model == CpuModel::RunQueue {
                // The spinning thread notices completion once it holds a
                // core; the queue wait *is* the wakeup latency.
                sched.rq_notify_gpu_done(inflight.pid, now, ctx);
            } else {
                // Last kernel of the EC: wake the parked thread.
                let wakeup = ctx
                    .config
                    .device
                    .cpu
                    .wakeup_delay(ctx.n_procs)
                    .mul_f64(ctx.rng.uniform(0.8, 1.2));
                ctx.queue.schedule_after(
                    wakeup,
                    Event::Sched(SchedEvent::ThreadResume {
                        pid: inflight.pid as u32,
                        kind: Resume::SyncReturn,
                    }),
                );
            }
        }
        self.try_dispatch(now, ctx);
    }
}
