//! The GPU engine: kernel dispatch, timeslice affinity, MPS packing,
//! in-flight power/utilisation accrual and kernel-event tracing.

use jetsim_des::{SimDuration, SimRng, SimTime};
use jetsim_device::power::GpuLoad;
use jetsim_device::{DeviceSpec, GpuArch};
use jetsim_trt::Engine;

use crate::config::{CpuModel, GpuSharing};
use crate::soa::KernelEventColumns;

use super::sched::{CpuSched, Resume, SchedEvent};
use super::{Component, Ctx, Event};

/// Events consumed by [`GpuEngine`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum GpuEvent {
    /// The GPU finished its current kernel.
    Done,
}

/// One kernel currently executing on the GPU.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    pid: usize,
    kernel_index: usize,
    ec_seq: u64,
    start: SimTime,
    end: SimTime,
    /// Power coefficient of the kernel's precision.
    coef: f64,
    /// Tensor-core activity while it runs.
    tc: f64,
    /// Fraction of its span doing datapath work (the launch-gap head is
    /// charged at idle power).
    work_fraction: f64,
    /// DRAM bytes per second while it runs.
    bytes_per_sec: f64,
    /// How far this kernel's window contribution has been accounted.
    accounted_until: SimTime,
}

/// Accumulators over one governor/sampling window.
#[derive(Debug, Clone, Copy, Default)]
struct Window {
    busy: SimDuration,
    coef_weighted: f64,
    tc_weighted: f64,
    bytes: u64,
    cpu_busy: SimDuration,
}

impl Window {
    fn load(&self, interval: SimDuration, device: &DeviceSpec) -> (f64, GpuLoad) {
        let secs = interval.as_secs_f64();
        let busy_secs = self.busy.as_secs_f64();
        let busy_frac = if secs == 0.0 {
            0.0
        } else {
            (busy_secs / secs).min(1.0)
        };
        let load = GpuLoad {
            busy: busy_frac,
            precision_w: if busy_secs == 0.0 {
                0.0
            } else {
                self.coef_weighted / busy_secs
            },
            tc_util: if busy_secs == 0.0 {
                0.0
            } else {
                (self.tc_weighted / busy_secs).min(1.0)
            },
            mem_util: if secs == 0.0 {
                0.0
            } else {
                (self.bytes as f64 / (device.gpu.bytes_per_sec() * secs)).min(1.0)
            },
        };
        let cpu_cores = if secs == 0.0 {
            0.0
        } else {
            self.cpu_busy.as_secs_f64() / secs
        };
        (cpu_cores, load)
    }
}

/// Memoised per-kernel dispatch quantities for one engine at one
/// frequency step. `exec_time`/`tc_activity`/`sm_active`/`issue_slot`
/// are pure roofline math (several `powf` chains) over inputs that only
/// change when the governor moves the clock or the ingress swaps a
/// serving engine — so they are computed once per (engine, step) here
/// instead of on every dispatch. Values are bit-identical to the direct
/// calls: the cache stores the same expressions, evaluated in the same
/// order.
#[derive(Debug, Default)]
struct KernelTimeCache {
    /// Identity of the engine the cache was built against (the `Arc`
    /// address as an integer; engines live for the whole run, so an
    /// address uniquely names one).
    engine_id: usize,
    /// Frequency step the cache was built at.
    step: usize,
    /// `exec_time(..) * kernel_overhead_factor`, per kernel.
    exec_scaled: Vec<SimDuration>,
    /// `tc_activity(..)`, per kernel.
    tc: Vec<f64>,
    /// `sm_active(..)`, per kernel (trace-recording path).
    sm: Vec<f64>,
    /// `issue_slot(..)`, per kernel (trace-recording path).
    issue: Vec<f64>,
}

impl KernelTimeCache {
    /// Computes every column for `(engine, step)`.
    fn build(engine: &Engine, gpu: &GpuArch, step: usize, overhead: f64) -> Self {
        let batch = engine.batch();
        let kernels = engine.kernels();
        let mut cache = KernelTimeCache {
            engine_id: engine as *const Engine as usize,
            step,
            exec_scaled: Vec::with_capacity(kernels.len()),
            tc: Vec::with_capacity(kernels.len()),
            sm: Vec::with_capacity(kernels.len()),
            issue: Vec::with_capacity(kernels.len()),
        };
        for k in kernels {
            cache
                .exec_scaled
                .push(k.exec_time(gpu, batch, step).mul_f64(overhead));
            cache.tc.push(k.tc_activity(gpu, batch, step));
            cache.sm.push(k.sm_active(gpu, batch));
            cache.issue.push(k.issue_slot(gpu, batch, step));
        }
        cache
    }
}

/// A never-evicting memo table of [`KernelTimeCache`] entries, shared
/// across processes: workloads that revisit a clock step (an oscillating
/// governor, a throttle lock releasing) or alternate engines (a serving
/// batcher toggling batch sizes) hit warm entries instead of re-running
/// the roofline math. Bounded by the number of distinct
/// `(engine, step)` pairs a run actually visits — a few kilobytes each.
#[derive(Debug, Default)]
struct KernelTimeCaches {
    entries: Vec<KernelTimeCache>,
}

impl KernelTimeCaches {
    /// The memoised timings for `(engine, step)`, building them on first
    /// sight. The hit entry is swapped to the front so the common
    /// steady-state lookup is one compare.
    #[inline]
    fn get(
        &mut self,
        engine: &Engine,
        gpu: &GpuArch,
        step: usize,
        overhead: f64,
    ) -> &KernelTimeCache {
        let id = engine as *const Engine as usize;
        if let Some(i) = self
            .entries
            .iter()
            .position(|c| c.engine_id == id && c.step == step)
        {
            self.entries.swap(0, i);
        } else {
            let built = KernelTimeCache::build(engine, gpu, step, overhead);
            self.entries.insert(0, built);
        }
        &self.entries[0]
    }
}

/// The GPU component: owns execution state, the DVFS/sampling
/// accounting windows, and the kernel-event trace (with its dedicated
/// jitter RNG stream, so toggling recording cannot perturb dynamics).
pub(crate) struct GpuEngine {
    /// Currently executing kernel, if any.
    current: Option<InFlight>,
    /// Process whose queue the GPU is draining (timeslice affinity).
    affinity: Option<usize>,
    /// When the current timeslice started.
    slice_start: SimTime,
    /// Current DVFS frequency step (written by the governor and the
    /// memory guard's throttle locks; read at dispatch time).
    pub(crate) freq_step: usize,
    /// Accumulator drained by the governor each DVFS tick.
    dvfs_window: Window,
    /// Accumulator drained by the sampler each sample tick.
    sample_window: Window,
    /// GPU busy time within the measured window.
    pub(crate) gpu_busy_measured: SimDuration,
    /// Kernel events recorded inside the measured window (columnar; the
    /// hot loop appends word-sized columns, `finalize` materialises the
    /// AoS view once).
    pub(crate) kernel_events: KernelEventColumns,
    /// Independent stream for kernel-event jitter samples, so toggling
    /// `record_kernel_events` cannot perturb the simulation dynamics:
    /// aggregate results are bit-identical with tracing on or off.
    trace_rng: SimRng,
    /// Memoised kernel timings per `(engine, step)` (see
    /// [`KernelTimeCaches`]).
    ktime: KernelTimeCaches,
}

impl Component for GpuEngine {
    type Event = GpuEvent;
    type Deps<'d> = &'d mut CpuSched;

    #[inline]
    fn handle(&mut self, ev: GpuEvent, now: SimTime, ctx: &mut Ctx<'_>, sched: &mut CpuSched) {
        match ev {
            GpuEvent::Done => self.on_gpu_done(now, ctx, sched),
        }
    }
}

impl GpuEngine {
    /// Creates the GPU engine at the top frequency step with pre-sized
    /// trace storage.
    pub(crate) fn new(top_step: usize, trace_rng: SimRng, est_events: usize) -> Self {
        GpuEngine {
            current: None,
            affinity: None,
            slice_start: SimTime::ZERO,
            freq_step: top_step,
            dvfs_window: Window::default(),
            sample_window: Window::default(),
            gpu_busy_measured: SimDuration::ZERO,
            kernel_events: KernelEventColumns::with_capacity(est_events),
            trace_rng,
            ktime: KernelTimeCaches::default(),
        }
    }

    /// Charges host CPU busy time into both accounting windows.
    pub(crate) fn charge_cpu(&mut self, cost: SimDuration) {
        self.dvfs_window.cpu_busy += cost;
        self.sample_window.cpu_busy += cost;
    }

    /// Drains the governor's accounting window into a load summary.
    pub(crate) fn drain_dvfs_window(
        &mut self,
        interval: SimDuration,
        device: &DeviceSpec,
    ) -> (f64, GpuLoad) {
        let out = self.dvfs_window.load(interval, device);
        self.dvfs_window = Window::default();
        out
    }

    /// Drains the sampler's accounting window into a load summary.
    pub(crate) fn drain_sample_window(
        &mut self,
        period: SimDuration,
        device: &DeviceSpec,
    ) -> (f64, GpuLoad) {
        let out = self.sample_window.load(period, device);
        self.sample_window = Window::default();
        out
    }

    /// Dispatches the next ready kernel if the GPU is idle.
    pub(crate) fn try_dispatch(&mut self, now: SimTime, ctx: &mut Ctx<'_>) {
        if self.current.is_some() {
            return;
        }
        let Some(pid) = self.pick_process(now, ctx) else {
            return;
        };
        let mut start = now;
        let mps_overlap = match ctx.config.gpu_sharing {
            GpuSharing::TimeMultiplexed => None,
            GpuSharing::SpatialMps { overlap_efficiency } => {
                Some(overlap_efficiency.clamp(0.0, 0.6))
            }
        };
        if self.affinity != Some(pid) {
            // No MPS on Jetson: crossing processes costs a GPU context
            // switch. Under the MPS ablation the switch is free.
            if self.affinity.is_some() && mps_overlap.is_none() {
                start += ctx.config.device.gpu.ctx_switch;
            }
            self.affinity = Some(pid);
            self.slice_start = start;
        }
        let kernel_index = ctx.procs[pid].ready.pop_front().expect("picked non-empty");
        // Disjoint-field borrows keep the engine referenced in place — no
        // per-dispatch `Arc` refcount traffic on the hot path.
        let engine = &ctx.procs[pid].engine;
        let batch = engine.batch();
        let gpu_arch = &ctx.config.device.gpu;
        let overhead = ctx.config.profiler.kernel_overhead_factor();
        let times = self.ktime.get(engine, gpu_arch, self.freq_step, overhead);
        let (exec_base, tc) = (times.exec_scaled[kernel_index], times.tc[kernel_index]);
        let mut exec = exec_base.mul_f64(ctx.rng.uniform(0.95, 1.05));
        if let Some(overlap) = mps_overlap {
            // Spatial sharing packs this kernel against other processes'
            // queued work, hiding part of its span.
            let others_waiting =
                (0..ctx.procs.len()).any(|p| p != pid && !ctx.procs[p].ready.is_empty());
            if others_waiting {
                exec = exec.mul_f64(1.0 - overlap);
            }
        }
        let end = start + exec;
        let ec_seq = ctx.procs[pid].ec_seq;
        // Power/governor metadata. Launch-gap time at the front of every
        // kernel keeps the GPU "busy" for the utilisation counter but
        // toggles no datapath, so it is charged at idle power — this is
        // why small-batch runs draw less despite ~100 % GPU utilisation
        // (paper fig 8). Contributions accrue continuously so kernels
        // longer than a governor window are charged to every window they
        // span.
        let kernel = &ctx.procs[pid].engine.kernels()[kernel_index];
        let coef = ctx
            .config
            .device
            .power
            .precision_coefficient(kernel.precision);
        let exec_secs = exec.as_secs_f64();
        let work_fraction =
            1.0 - (gpu_arch.kernel_min_gap.as_secs_f64() / exec_secs.max(f64::EPSILON)).min(1.0);
        let bytes_per_sec = (kernel.bytes * u64::from(batch)) as f64 / exec_secs.max(f64::EPSILON);
        self.current = Some(InFlight {
            pid,
            kernel_index,
            ec_seq,
            start,
            end,
            coef,
            tc,
            work_fraction,
            bytes_per_sec,
            accounted_until: start,
        });
        ctx.queue.schedule(end, Event::Gpu(GpuEvent::Done));
    }

    /// Chooses which process's queue the GPU serves next: stay with the
    /// current one until it empties or its timeslice expires, then
    /// round-robin.
    fn pick_process(&self, now: SimTime, ctx: &Ctx<'_>) -> Option<usize> {
        let procs = &ctx.procs;
        let n = procs.len();
        if let Some(cur) = self.affinity {
            let slice_ok = now.saturating_since(self.slice_start) < ctx.config.device.gpu.timeslice;
            let others_waiting = (0..n).any(|p| p != cur && !procs[p].ready.is_empty());
            if !procs[cur].ready.is_empty() && (slice_ok || !others_waiting) {
                return Some(cur);
            }
            // Round-robin from the next process.
            for offset in 1..=n {
                let pid = (cur + offset) % n;
                if !procs[pid].ready.is_empty() {
                    return Some(pid);
                }
            }
            None
        } else {
            (0..n).find(|&pid| !procs[pid].ready.is_empty())
        }
    }

    /// Accrues the in-flight kernel's power/utilisation contribution up
    /// to `now` into both accounting windows.
    pub(crate) fn accrue_gpu(&mut self, now: SimTime) {
        let Some(inflight) = self.current.as_mut() else {
            return;
        };
        let upto = if now < inflight.end {
            now
        } else {
            inflight.end
        };
        if upto <= inflight.accounted_until {
            return;
        }
        let span = upto.since(inflight.accounted_until);
        let secs = span.as_secs_f64();
        let (coef, tc, wf, bps) = (
            inflight.coef,
            inflight.tc,
            inflight.work_fraction,
            inflight.bytes_per_sec,
        );
        inflight.accounted_until = upto;
        for window in [&mut self.dvfs_window, &mut self.sample_window] {
            window.busy += span;
            window.coef_weighted += coef * secs * wf;
            window.tc_weighted += tc * secs;
            window.bytes += (bps * secs) as u64;
        }
    }

    /// The GPU finished a kernel: emit its event, wake the owner if this
    /// completed an EC, and dispatch the next kernel.
    fn on_gpu_done(&mut self, now: SimTime, ctx: &mut Ctx<'_>, sched: &mut CpuSched) {
        self.accrue_gpu(now);
        let inflight = self.current.take().expect("GpuDone without kernel");
        let exec = inflight.end.since(inflight.start);
        ctx.procs[inflight.pid].cur_gpu += exec;

        if inflight.end > ctx.warmup_end {
            let clipped = inflight.end.since(ctx.warmup_end.max_of(inflight.start));
            self.gpu_busy_measured += clipped.max_of(SimDuration::ZERO);
        }
        // Disjoint-field borrows: the engine stays referenced in place
        // (no `Arc` clone per completion) while the jitter samples come
        // from the dedicated trace stream, so disabling recording cannot
        // change the dynamics.
        let engine = &ctx.procs[inflight.pid].engine;
        let kernel_count = engine.kernel_count();
        if inflight.end > ctx.warmup_end && ctx.config.record_kernel_events {
            let kernel = &engine.kernels()[inflight.kernel_index];
            let batch = engine.batch();
            // The clock may have moved since dispatch; the utilisation
            // samples always read the *current* step, exactly as the
            // uncached code did.
            let gpu_arch = &ctx.config.device.gpu;
            let overhead = ctx.config.profiler.kernel_overhead_factor();
            let times = self.ktime.get(engine, gpu_arch, self.freq_step, overhead);
            let (sm_base, issue_base, tc_base) = (
                times.sm[inflight.kernel_index],
                times.issue[inflight.kernel_index],
                times.tc[inflight.kernel_index],
            );
            let sm = (sm_base * self.trace_rng.uniform(0.92, 1.08)).clamp(0.0, 1.0);
            let issue = (issue_base * self.trace_rng.uniform(0.85, 1.15)).clamp(0.0, 0.8);
            let tc = (tc_base * self.trace_rng.uniform(0.88, 1.12)).clamp(0.0, 1.0);
            self.kernel_events.push(
                inflight.pid,
                inflight.ec_seq,
                inflight.kernel_index,
                inflight.start,
                inflight.end,
                kernel.precision,
                sm,
                issue,
                tc,
                kernel.bytes * u64::from(batch),
            );
        }

        if inflight.kernel_index + 1 == kernel_count && ctx.alive[inflight.pid] {
            if ctx.config.cpu_model == CpuModel::RunQueue {
                // The spinning thread notices completion once it holds a
                // core; the queue wait *is* the wakeup latency.
                sched.rq_notify_gpu_done(inflight.pid, now, ctx);
            } else {
                // Last kernel of the EC: wake the parked thread.
                let wakeup = ctx
                    .config
                    .device
                    .cpu
                    .wakeup_delay(ctx.n_procs)
                    .mul_f64(ctx.rng.uniform(0.8, 1.2));
                ctx.queue.schedule_after(
                    wakeup,
                    Event::Sched(SchedEvent::ThreadResume {
                        pid: inflight.pid as u32,
                        kind: Resume::SyncReturn,
                    }),
                );
            }
        }
        self.try_dispatch(now, ctx);
    }
}
