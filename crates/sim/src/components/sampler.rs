//! The `jetson-stats`-style periodic sampler.

use jetsim_des::SimTime;

use crate::trace::PowerSample;

use super::governor::Governor;
use super::gpu::GpuEngine;
use super::{Component, Ctx, Event};

/// Events consumed by [`Sampler`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum SamplerEvent {
    /// Periodic sample.
    Tick,
}

/// Peers a sampling tick reads: the GPU's accounting window and the
/// governor's temperature estimate.
pub(crate) struct SamplerDeps<'d> {
    /// The GPU engine (window drained, frequency read).
    pub gpu: &'d mut GpuEngine,
    /// The governor (temperature read).
    pub governor: &'d Governor,
}

/// The sampling component: owns the recorded power samples.
pub(crate) struct Sampler {
    /// Periodic power samples (measured window only).
    pub(crate) power_samples: Vec<PowerSample>,
}

impl Component for Sampler {
    type Event = SamplerEvent;
    type Deps<'d> = SamplerDeps<'d>;

    #[inline]
    fn handle(&mut self, ev: SamplerEvent, now: SimTime, ctx: &mut Ctx<'_>, deps: SamplerDeps<'_>) {
        match ev {
            SamplerEvent::Tick => self.on_sample_tick(now, ctx, deps),
        }
    }
}

impl Sampler {
    /// Creates an empty sampler.
    pub(crate) fn new() -> Self {
        Sampler {
            power_samples: Vec::new(),
        }
    }

    /// Periodic `jetson-stats` sample.
    fn on_sample_tick(&mut self, now: SimTime, ctx: &mut Ctx<'_>, deps: SamplerDeps<'_>) {
        let SamplerDeps { gpu, governor } = deps;
        gpu.accrue_gpu(now);
        let device = &ctx.config.device;
        let period = ctx.config.sample_period;
        let (cpu_cores, load) = gpu.drain_sample_window(period, device);
        let ratio = device.gpu.freq.ratio(gpu.freq_step);
        let watts = device.power.total_watts(cpu_cores, load, ratio);
        if now > ctx.warmup_end {
            self.power_samples.push(PowerSample {
                time: now,
                watts,
                gpu_utilization: load.busy,
                gpu_freq_mhz: device.gpu.freq.mhz(gpu.freq_step),
                gpu_memory_bytes: ctx.config.gpu_memory_bytes(),
                cpu_busy_cores: cpu_cores,
                temp_c: governor.temp_c,
            });
        }
        ctx.queue
            .schedule_after(period, Event::Sampler(SamplerEvent::Tick));
    }
}
