//! The DVFS governor: thermal integration, power-budget defense and
//! ladder walking — the paper's §6.1.2 non-linear power behaviour.

use jetsim_des::SimTime;

use super::gpu::GpuEngine;
use super::{Component, Ctx, Event};

/// Events consumed by [`Governor`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum GovernorEvent {
    /// Periodic governor evaluation.
    Tick,
}

/// The DVFS governor component: owns the junction-temperature state and
/// any injected throttle lock, and writes the frequency step the GPU
/// dispatches at.
pub(crate) struct Governor {
    /// Estimated junction temperature, °C.
    pub(crate) temp_c: f64,
    /// Active throttle lock: `(until, pinned step)`. Written by the
    /// memory guard when a [`crate::ThrottleLock`] fault fires.
    pub(crate) throttle_lock: Option<(SimTime, usize)>,
}

impl Component for Governor {
    type Event = GovernorEvent;
    type Deps<'d> = &'d mut GpuEngine;

    #[inline]
    fn handle(&mut self, ev: GovernorEvent, now: SimTime, ctx: &mut Ctx<'_>, gpu: &mut GpuEngine) {
        match ev {
            GovernorEvent::Tick => self.on_dvfs_tick(now, ctx, gpu),
        }
    }
}

impl Governor {
    /// Creates the governor at ambient temperature with no lock.
    pub(crate) fn new(ambient_c: f64) -> Self {
        Governor {
            temp_c: ambient_c,
            throttle_lock: None,
        }
    }

    /// Periodic DVFS governor: integrate the thermal model, estimate
    /// draw, walk the ladder. The junction temperature throttles
    /// unconditionally — the "thermal limit" half of the paper's §6.1.2.
    fn on_dvfs_tick(&mut self, now: SimTime, ctx: &mut Ctx<'_>, gpu: &mut GpuEngine) {
        gpu.accrue_gpu(now);
        let device = &ctx.config.device;
        let interval = device.dvfs.interval;
        let (cpu_cores, load) = gpu.drain_dvfs_window(interval, device);
        let ladder = &device.gpu.freq;
        let cur = gpu.freq_step;
        let watts_now = device.power.total_watts(cpu_cores, load, ladder.ratio(cur));
        self.temp_c = device
            .thermal
            .step(self.temp_c, watts_now, interval.as_secs_f64());
        // An injected throttle lock (`crate::ThrottleLock`) overrides the
        // governor: the clock stays pinned until the lock's window ends,
        // whatever the power budget says. Thermal state still integrates.
        let locked = match self.throttle_lock {
            Some((until, step)) if now <= until => {
                gpu.freq_step = step;
                true
            }
            _ => false,
        };
        if !locked && device.dvfs.enabled {
            let watts_at = |step: usize| {
                device
                    .power
                    .total_watts(cpu_cores, load, ladder.ratio(step))
            };
            let budget = device.power.budget_w;
            let over_limit = device.thermal.throttles(self.temp_c) || watts_at(cur) > budget;
            gpu.freq_step = if over_limit {
                ladder.step_down(cur)
            } else {
                let up = ladder.step_up(cur);
                // Predictive up-step: only raise the clock if the draw at
                // the higher step would still respect the budget (with
                // hysteresis), otherwise the governor would oscillate.
                if up != cur
                    && watts_at(up) < budget * device.dvfs.up_hysteresis
                    && !device.thermal.throttles(self.temp_c)
                {
                    up
                } else {
                    cur
                }
            };
        }
        ctx.queue
            .schedule_after(interval, Event::Governor(GovernorEvent::Tick));
    }
}
