//! Pluggable GPU scheduling policies.
//!
//! The dispatch *decision* — which process's kernel queue the GPU
//! serves next — used to be hard-wired into `GpuEngine::pick_process`
//! as timeslice-affinity round-robin. It is now a [`GpuSchedPolicy`]
//! trait over a narrow [`PolicyView`] (per-process ready occupancy,
//! priorities, SM shares, the current affinity and slice age, and the
//! clock), selected by [`crate::config::GpuPolicy`]:
//!
//! * [`TimesliceRR`] — the default, bit-for-bit identical to the
//!   pre-trait behaviour (the golden-parity suite is the referee);
//! * [`Fifo`] — global kernel-arrival order, no timeslice affinity;
//! * [`PriorityPreemptive`] — strict priority levels with in-flight
//!   kernel cancellation (see `GpuEngine::maybe_preempt`);
//! * [`FractionalMps`] — per-process SM shares with weighted overlap
//!   packing, generalising [`GpuSharing::SpatialMps`].
//!
//! Policies decide *who* runs and *how* kernels pack; the physics —
//! kernel timing, context-switch costs, power accrual, tracing — stays
//! in `GpuEngine` and is shared by every policy.

use jetsim_des::{SimDuration, SimTime};

use crate::config::GpuSharing;

/// O(1) occupancy index over the per-process ready queues: one bit per
/// process, set while that process has launched kernels waiting for the
/// GPU, plus a count of set bits. Replaces the two O(n) full scans the
/// legacy `pick_process` did per dispatch (idle check and
/// `others_waiting`); kept in sync by `GpuEngine` at the four queue
/// mutation sites (enqueue, dispatch pop, preemption re-queue, and the
/// kill/restart clears).
#[derive(Debug, Clone)]
pub(crate) struct ReadySet {
    words: Vec<u64>,
    nonempty: u32,
    n: usize,
}

impl ReadySet {
    /// An empty set over `n` processes.
    pub(crate) fn new(n: usize) -> Self {
        ReadySet {
            words: vec![0; n.div_ceil(64)],
            nonempty: 0,
            n,
        }
    }

    /// Marks `pid` as having ready work (idempotent).
    #[inline]
    pub(crate) fn set(&mut self, pid: usize) {
        let (w, b) = (pid / 64, pid % 64);
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.nonempty += 1;
        }
    }

    /// Marks `pid` as drained (idempotent).
    #[inline]
    pub(crate) fn unset(&mut self, pid: usize) {
        let (w, b) = (pid / 64, pid % 64);
        if self.words[w] & (1 << b) != 0 {
            self.words[w] &= !(1 << b);
            self.nonempty -= 1;
        }
    }

    /// Whether `pid` has ready work.
    #[inline]
    pub(crate) fn contains(&self, pid: usize) -> bool {
        self.words[pid / 64] & (1 << (pid % 64)) != 0
    }

    /// Whether any process *other than* `pid` has ready work — the
    /// legacy `others_waiting` scan, now one subtract.
    #[inline]
    pub(crate) fn any_other(&self, pid: usize) -> bool {
        self.nonempty > u32::from(self.contains(pid))
    }

    /// Whether no process has ready work.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.nonempty == 0
    }

    /// The lowest-indexed process with ready work — the legacy
    /// no-affinity `(0..n).find(..)` scan.
    #[inline]
    pub(crate) fn first(&self) -> Option<usize> {
        if self.nonempty == 0 {
            return None;
        }
        self.first_in_range(0, self.n)
    }

    /// The first ready process after `cur` in cyclic order, wrapping
    /// round to `cur` itself as the final candidate — exactly the legacy
    /// `for offset in 1..=n { (cur + offset) % n }` probe.
    #[inline]
    pub(crate) fn next_cyclic(&self, cur: usize) -> Option<usize> {
        if self.nonempty == 0 {
            return None;
        }
        self.first_in_range(cur + 1, self.n)
            .or_else(|| self.first_in_range(0, (cur + 1).min(self.n)))
    }

    /// First set bit in `[lo, hi)`.
    fn first_in_range(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let (lo_w, hi_w) = (lo / 64, (hi - 1) / 64);
        for w in lo_w..=hi_w {
            let mut word = self.words[w];
            if w == lo_w {
                word &= !0u64 << (lo % 64);
            }
            if w == hi_w && !hi.is_multiple_of(64) {
                word &= !0u64 >> (64 - hi % 64);
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates the ready process ids in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }
}

/// The narrow, read-only window a policy sees at each decision point.
/// Policies must base decisions only on this view — never on trace or
/// RNG state — so the default path stays byte-identical and every
/// policy is replayable.
pub(crate) struct PolicyView<'a> {
    /// The decision instant.
    pub now: SimTime,
    /// Process whose queue the GPU last served (timeslice affinity).
    pub affinity: Option<usize>,
    /// When the current timeslice started.
    pub slice_start: SimTime,
    /// The device's GPU timeslice length.
    pub timeslice: SimDuration,
    /// The configured sharing discipline (legacy MPS ablation knob).
    pub gpu_sharing: GpuSharing,
    /// Per-process ready occupancy.
    pub ready: &'a ReadySet,
    /// Per-process priority levels (higher wins; from the config).
    pub priorities: &'a [u8],
    /// Per-process SM share weights (from the config; default 1.0).
    pub sm_shares: &'a [f64],
}

/// One GPU scheduling discipline. Object-safe; `GpuEngine` holds a
/// `Box<dyn GpuSchedPolicy>` chosen from [`crate::config::GpuPolicy`].
///
/// The contract, in dispatch order:
///
/// 1. [`GpuSchedPolicy::pick`] names the process to serve (its ready
///    queue is guaranteed non-empty on return);
/// 2. [`GpuSchedPolicy::spatial`] decides whether crossing processes
///    costs a context switch (`false`, Jetson's time multiplexing) or
///    is free (`true`, MPS-style spatial sharing);
/// 3. [`GpuSchedPolicy::hide_fraction`] returns the span fraction
///    hidden by co-scheduling, evaluated after the kernel is popped;
/// 4. [`GpuSchedPolicy::preempt`] (consulted while a kernel is in
///    flight) may name a process whose ready work justifies cancelling
///    it — see `GpuEngine::maybe_preempt` for the accounting.
///
/// The `on_*` hooks mirror every ready-queue mutation so order-keeping
/// policies ([`Fifo`]) can maintain their own arrival log.
pub(crate) trait GpuSchedPolicy: std::fmt::Debug + Send {
    /// Chooses which process's queue the GPU serves next.
    fn pick(&mut self, view: &PolicyView<'_>) -> Option<usize>;

    /// Whether kernels from different processes share the GPU spatially
    /// (no context-switch cost on crossing). The default mirrors the
    /// legacy [`GpuSharing`] knob.
    fn spatial(&self, view: &PolicyView<'_>) -> bool {
        matches!(view.gpu_sharing, GpuSharing::SpatialMps { .. })
    }

    /// Fraction of the dispatched kernel's span hidden by co-scheduling
    /// against other processes' queued work, or `None` to run it whole.
    /// The default mirrors the legacy [`GpuSharing::SpatialMps`] shrink.
    fn hide_fraction(&self, pid: usize, view: &PolicyView<'_>) -> Option<f64> {
        match view.gpu_sharing {
            GpuSharing::TimeMultiplexed => None,
            GpuSharing::SpatialMps { overlap_efficiency } => {
                if view.ready.any_other(pid) {
                    Some(overlap_efficiency)
                } else {
                    None
                }
            }
        }
    }

    /// While `inflight_pid`'s kernel runs: the process whose ready work
    /// should cancel it, if any. Policies returning `Some` must also
    /// report a [`GpuSchedPolicy::preempt_penalty`].
    fn preempt(&self, _inflight_pid: usize, _view: &PolicyView<'_>) -> Option<usize> {
        None
    }

    /// Stall charged ahead of the next dispatch after a cancellation
    /// (context save/discard of the cancelled kernel).
    fn preempt_penalty(&self) -> SimDuration {
        SimDuration::ZERO
    }

    /// A kernel of `pid` was enqueued at the back of its ready queue.
    fn on_ready(&mut self, _pid: usize) {}

    /// A cancelled kernel of `pid` was re-queued at the *front* of its
    /// ready queue (it is the next kernel its stream must run).
    fn on_requeue_front(&mut self, _pid: usize) {}

    /// `pid`'s ready queue was wiped (OOM kill or replica restart).
    fn on_cleared(&mut self, _pid: usize) {}
}

/// Timeslice-affinity round-robin — the pre-trait behaviour, extracted
/// decision-for-decision: stay with the current process until its queue
/// empties or its timeslice expires while others wait, then rotate.
#[derive(Debug, Default)]
pub(crate) struct TimesliceRR;

impl GpuSchedPolicy for TimesliceRR {
    fn pick(&mut self, view: &PolicyView<'_>) -> Option<usize> {
        if let Some(cur) = view.affinity {
            let slice_ok = view.now.saturating_since(view.slice_start) < view.timeslice;
            let others_waiting = view.ready.any_other(cur);
            if view.ready.contains(cur) && (slice_ok || !others_waiting) {
                return Some(cur);
            }
            view.ready.next_cyclic(cur)
        } else {
            view.ready.first()
        }
    }
}

/// Global kernel-arrival order: the GPU drains launches strictly in the
/// order host threads issued them, with no timeslice affinity. Crossing
/// processes still costs a context switch (time multiplexing is a
/// hardware property, not a policy choice).
#[derive(Debug, Default)]
pub(crate) struct Fifo {
    /// One entry per enqueued kernel, in launch order.
    order: std::collections::VecDeque<u32>,
}

impl GpuSchedPolicy for Fifo {
    fn pick(&mut self, view: &PolicyView<'_>) -> Option<usize> {
        // Entries for wiped queues (kills, restarts) are removed by
        // `on_cleared`; the occupancy check below is belt-and-braces.
        while let Some(pid) = self.order.pop_front() {
            if view.ready.contains(pid as usize) {
                return Some(pid as usize);
            }
        }
        None
    }

    fn on_ready(&mut self, pid: usize) {
        self.order.push_back(pid as u32);
    }

    fn on_requeue_front(&mut self, pid: usize) {
        self.order.push_front(pid as u32);
    }

    fn on_cleared(&mut self, pid: usize) {
        self.order.retain(|&p| p as usize != pid);
    }
}

/// Strict priority levels with preemption: the GPU always serves the
/// highest-priority process with ready work (ties rotate round-robin
/// from the last-served process), and a higher-priority arrival cancels
/// the in-flight kernel — it is re-queued to run again from scratch and
/// the GPU stalls for `preempt_penalty` (context save/discard) before
/// the next dispatch. Saturated high-priority work starves lower levels
/// by design; that is the policy's contract.
#[derive(Debug)]
pub(crate) struct PriorityPreemptive {
    penalty: SimDuration,
}

impl PriorityPreemptive {
    pub(crate) fn new(penalty: SimDuration) -> Self {
        PriorityPreemptive { penalty }
    }

    /// Highest-priority ready process; ties go to the next such process
    /// after `affinity` in cyclic order (fair within a level).
    fn best(view: &PolicyView<'_>) -> Option<usize> {
        let best_prio = view.ready.iter().map(|p| view.priorities[p]).max()?;
        let start = view.affinity.unwrap_or(0);
        let n = view.priorities.len();
        (1..=n)
            .map(|offset| (start + offset) % n)
            .find(|&pid| view.ready.contains(pid) && view.priorities[pid] == best_prio)
    }
}

impl GpuSchedPolicy for PriorityPreemptive {
    fn pick(&mut self, view: &PolicyView<'_>) -> Option<usize> {
        Self::best(view)
    }

    fn preempt(&self, inflight_pid: usize, view: &PolicyView<'_>) -> Option<usize> {
        let best = Self::best(view)?;
        (view.priorities[best] > view.priorities[inflight_pid]).then_some(best)
    }

    fn preempt_penalty(&self) -> SimDuration {
        self.penalty
    }
}

/// MPS-style fractional spatial sharing with per-process SM shares:
/// context switches vanish, dispatch rotates round-robin (serialising
/// what real hardware runs concurrently), and each kernel's span is
/// shrunk by the overlap efficiency weighted by the share mass of the
/// *other* ready processes — a process holding most of the SMs leaves
/// little room for co-scheduling and packs poorly; a small-share tenant
/// overlaps almost fully. Generalises [`GpuSharing::SpatialMps`], which
/// this reproduces when every share is equal and exactly one other
/// process waits.
#[derive(Debug)]
pub(crate) struct FractionalMps {
    overlap_efficiency: f64,
}

impl FractionalMps {
    pub(crate) fn new(overlap_efficiency: f64) -> Self {
        FractionalMps { overlap_efficiency }
    }
}

impl GpuSchedPolicy for FractionalMps {
    fn pick(&mut self, view: &PolicyView<'_>) -> Option<usize> {
        match view.affinity {
            Some(cur) => view.ready.next_cyclic(cur),
            None => view.ready.first(),
        }
    }

    fn spatial(&self, _view: &PolicyView<'_>) -> bool {
        true
    }

    fn hide_fraction(&self, pid: usize, view: &PolicyView<'_>) -> Option<f64> {
        let own = view.sm_shares[pid];
        let others: f64 = view
            .ready
            .iter()
            .filter(|&q| q != pid)
            .map(|q| view.sm_shares[q])
            .sum();
        if others <= 0.0 {
            return None;
        }
        let contending = others / (own + others);
        Some(self.overlap_efficiency * contending)
    }
}

/// Builds the runtime policy object for a configured
/// [`crate::config::GpuPolicy`].
pub(crate) fn make_policy(policy: &crate::config::GpuPolicy) -> Box<dyn GpuSchedPolicy> {
    use crate::config::GpuPolicy;
    match *policy {
        GpuPolicy::TimesliceRR => Box::new(TimesliceRR),
        GpuPolicy::Fifo => Box::new(Fifo::default()),
        GpuPolicy::Priority { preempt_penalty } => {
            Box::new(PriorityPreemptive::new(preempt_penalty))
        }
        GpuPolicy::FractionalMps { overlap_efficiency } => {
            Box::new(FractionalMps::new(overlap_efficiency))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        ready: &'a ReadySet,
        priorities: &'a [u8],
        shares: &'a [f64],
        affinity: Option<usize>,
        slice_age_ns: u64,
    ) -> PolicyView<'a> {
        PolicyView {
            now: SimTime::from_nanos(1_000_000 + slice_age_ns),
            affinity,
            slice_start: SimTime::from_nanos(1_000_000),
            timeslice: SimDuration::from_micros(500),
            gpu_sharing: GpuSharing::TimeMultiplexed,
            ready,
            priorities,
            sm_shares: shares,
        }
    }

    #[test]
    fn ready_set_tracks_occupancy() {
        let mut s = ReadySet::new(130);
        assert!(s.is_empty() && s.first().is_none());
        s.set(0);
        s.set(129);
        s.set(129); // idempotent
        assert_eq!(s.first(), Some(0));
        assert!(s.contains(129) && !s.contains(64));
        assert!(s.any_other(0) && s.any_other(5));
        s.unset(0);
        assert_eq!(s.first(), Some(129));
        assert!(!s.any_other(129));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
        s.unset(129);
        s.unset(129); // idempotent
        assert!(s.is_empty());
    }

    #[test]
    fn next_cyclic_wraps_and_includes_cur_last() {
        let mut s = ReadySet::new(4);
        s.set(1);
        assert_eq!(s.next_cyclic(1), Some(1), "cur is the final candidate");
        s.set(3);
        assert_eq!(s.next_cyclic(1), Some(3));
        assert_eq!(s.next_cyclic(3), Some(1), "wraps past the end");
        assert_eq!(s.next_cyclic(0), Some(1));
    }

    #[test]
    fn timeslice_rr_sticks_within_slice() {
        let mut s = ReadySet::new(3);
        s.set(0);
        s.set(1);
        let prios = [0u8; 3];
        let shares = [1.0; 3];
        let mut p = TimesliceRR;
        // Within the slice the GPU stays with its process even though
        // another waits.
        assert_eq!(p.pick(&view(&s, &prios, &shares, Some(0), 0)), Some(0));
        // Slice expired with others waiting: rotate.
        assert_eq!(
            p.pick(&view(&s, &prios, &shares, Some(0), 600_000)),
            Some(1)
        );
        // Slice expired but nobody else waits: stay.
        s.unset(1);
        assert_eq!(
            p.pick(&view(&s, &prios, &shares, Some(0), 600_000)),
            Some(0)
        );
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut s = ReadySet::new(3);
        let prios = [0u8; 3];
        let shares = [1.0; 3];
        let mut p = Fifo::default();
        for pid in [2usize, 0, 2] {
            s.set(pid);
            p.on_ready(pid);
        }
        let v = view(&s, &prios, &shares, None, 0);
        assert_eq!(p.pick(&v), Some(2));
        assert_eq!(p.pick(&v), Some(0));
        assert_eq!(p.pick(&v), Some(2));
    }

    #[test]
    fn fifo_drops_cleared_entries() {
        let mut s = ReadySet::new(2);
        let prios = [0u8; 2];
        let shares = [1.0; 2];
        let mut p = Fifo::default();
        s.set(0);
        p.on_ready(0);
        s.set(1);
        p.on_ready(1);
        // Process 0 is killed: its queue is wiped.
        s.unset(0);
        p.on_cleared(0);
        assert_eq!(p.pick(&view(&s, &prios, &shares, None, 0)), Some(1));
    }

    #[test]
    fn priority_picks_highest_and_preempts_lower() {
        let mut s = ReadySet::new(3);
        let prios = [0u8, 5, 1];
        let shares = [1.0; 3];
        let mut p = PriorityPreemptive::new(SimDuration::from_micros(20));
        s.set(0);
        s.set(2);
        let v = view(&s, &prios, &shares, None, 0);
        assert_eq!(p.pick(&v), Some(2));
        // Higher-priority work arrives: it both wins the pick and
        // justifies cancelling an in-flight lower-priority kernel.
        s.set(1);
        let v = view(&s, &prios, &shares, None, 0);
        assert_eq!(p.pick(&v), Some(1));
        assert_eq!(p.preempt(0, &v), Some(1));
        assert_eq!(p.preempt(1, &v), None, "equal priority never preempts");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// The exact pre-trait `GpuEngine::pick_process` scan,
        /// re-implemented naively as the reference: stay with the
        /// affine process while its queue is non-empty and either its
        /// slice is fresh or nobody else waits, else probe `(cur +
        /// offset) % n` for `offset in 1..=n`; with no affinity, take
        /// the lowest ready pid.
        fn legacy_pick(ready: &[bool], view: &PolicyView<'_>) -> Option<usize> {
            let n = ready.len();
            if let Some(cur) = view.affinity {
                let slice_ok = view.now.saturating_since(view.slice_start) < view.timeslice;
                let others_waiting = (0..n).any(|p| p != cur && ready[p]);
                if ready[cur] && (slice_ok || !others_waiting) {
                    return Some(cur);
                }
                (1..=n).map(|o| (cur + o) % n).find(|&p| ready[p])
            } else {
                (0..n).find(|&p| ready[p])
            }
        }

        fn ready_set(flags: &[bool]) -> ReadySet {
            let mut s = ReadySet::new(flags.len());
            for (pid, &r) in flags.iter().enumerate() {
                if r {
                    s.set(pid);
                }
            }
            s
        }

        proptest! {
            /// [`TimesliceRR`] over the bitset matches the legacy scan
            /// decision-for-decision on every (occupancy, affinity,
            /// slice-age) state — including sets wider than one word.
            #[test]
            fn timeslice_rr_matches_legacy(
                flags in proptest::collection::vec(any::<bool>(), 1..130),
                affinity_seed in any::<usize>(),
                slice_age_ns in 0u64..1_000_000,
            ) {
                let n = flags.len();
                let slot = affinity_seed % (n + 1);
                let affinity = (slot < n).then_some(slot);
                let s = ready_set(&flags);
                let prios = vec![0u8; n];
                let shares = vec![1.0; n];
                let v = view(&s, &prios, &shares, affinity, slice_age_ns);
                prop_assert_eq!(TimesliceRR.pick(&v), legacy_pick(&flags, &v));
            }

            /// [`PriorityPreemptive`] never names a process while some
            /// higher-priority process has ready work — for the pick
            /// and for the preemption question alike.
            #[test]
            fn priority_never_runs_lower_while_higher_ready(
                flags in proptest::collection::vec(any::<bool>(), 1..40),
                prios in proptest::collection::vec(0u8..8, 40),
                affinity_seed in any::<usize>(),
            ) {
                let n = flags.len();
                let slot = affinity_seed % (n + 1);
                let affinity = (slot < n).then_some(slot);
                let s = ready_set(&flags);
                let prios = &prios[..n];
                let shares = vec![1.0; n];
                let v = view(&s, prios, &shares, affinity, 0);
                let best_ready = (0..n).filter(|&p| flags[p]).map(|p| prios[p]).max();
                let mut policy = PriorityPreemptive::new(SimDuration::from_micros(20));
                if let Some(picked) = policy.pick(&v) {
                    prop_assert!(flags[picked], "picked a drained queue");
                    prop_assert_eq!(Some(prios[picked]), best_ready);
                }
                for inflight in 0..n {
                    if let Some(by) = policy.preempt(inflight, &v) {
                        prop_assert!(prios[by] > prios[inflight]);
                        prop_assert_eq!(Some(prios[by]), best_ready);
                    } else if let Some(best) = best_ready {
                        prop_assert!(
                            best <= prios[inflight],
                            "declined to preempt {inflight} though priority {best} waits"
                        );
                    }
                }
            }

            /// [`ReadySet`] agrees with a naive `Vec<bool>` model under
            /// arbitrary set/unset interleavings, on every query.
            #[test]
            fn ready_set_matches_boolean_model(
                n in 1usize..200,
                ops in proptest::collection::vec((any::<bool>(), any::<usize>()), 0..64),
                probe in any::<usize>(),
            ) {
                let mut s = ReadySet::new(n);
                let mut model = vec![false; n];
                for (set, pid_seed) in ops {
                    let pid = pid_seed % n;
                    if set { s.set(pid); model[pid] = true; }
                    else { s.unset(pid); model[pid] = false; }
                }
                let probe = probe % n;
                prop_assert_eq!(s.is_empty(), model.iter().all(|&r| !r));
                prop_assert_eq!(s.contains(probe), model[probe]);
                prop_assert_eq!(
                    s.any_other(probe),
                    (0..n).any(|p| p != probe && model[p])
                );
                prop_assert_eq!(s.first(), (0..n).find(|&p| model[p]));
                prop_assert_eq!(
                    s.next_cyclic(probe),
                    (1..=n).map(|o| (probe + o) % n).find(|&p| model[p])
                );
                prop_assert_eq!(
                    s.iter().collect::<Vec<_>>(),
                    (0..n).filter(|&p| model[p]).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn fractional_mps_weights_overlap_by_contending_share() {
        let mut s = ReadySet::new(2);
        s.set(0);
        s.set(1);
        let prios = [0u8; 2];
        let shares = [3.0, 1.0];
        let p = FractionalMps::new(0.4);
        let v = view(&s, &prios, &shares, None, 0);
        // The big-share process sees little contention mass…
        let big = p.hide_fraction(0, &v).unwrap();
        assert!((big - 0.4 * 0.25).abs() < 1e-12, "{big}");
        // …the small-share one overlaps against three times its mass.
        let small = p.hide_fraction(1, &v).unwrap();
        assert!((small - 0.4 * 0.75).abs() < 1e-12, "{small}");
        // Alone, nothing to pack against.
        s.unset(0);
        assert_eq!(
            p.hide_fraction(1, &view(&s, &prios, &shares, None, 0)),
            None
        );
    }
}
