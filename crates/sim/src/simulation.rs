//! The discrete-event simulation loop.

use std::collections::VecDeque;
use std::sync::Arc;

use jetsim_des::{CalendarQueue, SimDuration, SimRng, SimTime};
use jetsim_device::power::GpuLoad;
use jetsim_device::DeviceSpec;
use jetsim_trt::Engine;

use crate::config::{ArrivalModel, CpuModel, SimConfig};
use crate::error::SimError;
use crate::faults::{FaultEvent, FaultKind, OomPolicy};
use crate::trace::{EcRecord, KernelEvent, PowerSample, ProcessStats, RunTrace};

/// Events driving the simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A host thread finished one kernel-launch call.
    LaunchDone { pid: usize },
    /// A host thread resumes after blocking or a sync wakeup.
    ThreadResume { pid: usize, kind: Resume },
    /// The GPU finished its current kernel.
    GpuDone,
    /// DVFS governor evaluation.
    DvfsTick,
    /// `jetson-stats`-style sampling.
    SampleTick,
    /// A run-queue CPU grant ends (burst completion or quantum expiry).
    CpuTick {
        /// Thread whose grant ends.
        pid: usize,
        /// Generation stamp; stale ticks are ignored.
        gen: u64,
    },
    /// An injected fault fires (index into the precomputed timeline).
    Fault { index: usize },
}

/// One entry of the precomputed fault timeline (derived from the
/// config's [`crate::FaultPlan`] at construction, so injection costs
/// nothing when the plan is empty and draws nothing from the run RNG).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    /// A background memory spike appears.
    SpikeStart { bytes: u64 },
    /// A background memory spike is released.
    SpikeEnd { bytes: u64 },
    /// The DVFS governor gets pinned to `step` until `until`.
    LockStart { until: SimTime, step: usize },
    /// A throttle lock may release (ignored while a longer lock holds).
    LockEnd,
}

#[derive(Debug, Clone, Copy)]
enum Resume {
    /// Continue launching kernels after a preemption.
    ContinueLaunch,
    /// Return from `cudaStreamSynchronize`; the EC is complete.
    SyncReturn,
}

/// Per-process simulation state.
struct Proc {
    name: String,
    engine: Arc<Engine>,
    /// Next kernel index the host thread will launch.
    next_launch: usize,
    /// Sequence number of the current EC.
    ec_seq: u64,
    /// When the current EC's enqueue phase began.
    ec_start: SimTime,
    /// When the last launch of the current EC completed.
    enqueue_done_at: SimTime,
    /// Accumulated launch CPU time this EC.
    cur_launch: SimDuration,
    /// Accumulated blocking this EC.
    cur_blocking: SimDuration,
    /// Accumulated GPU time this EC.
    cur_gpu: SimDuration,
    /// Whether the thread recently migrated cores (cold caches).
    cache_cold: bool,
    /// How work arrives at this process.
    arrivals: ArrivalModel,
    /// Arrival time of the next unconsumed batch (open-loop modes).
    next_arrival: SimTime,
    /// Queueing delay of the EC currently in flight.
    cur_queue_delay: SimDuration,
    /// Run-queue scheduler state for this thread.
    cpu: RqThread,
    /// Kernels launched and ready for the GPU, FIFO.
    ready: VecDeque<usize>,
    /// Completed EC records (all; filtered to the measured window later).
    ecs: Vec<EcRecord>,
}

/// Per-thread state of the explicit run-queue CPU scheduler
/// ([`CpuModel::RunQueue`]).
#[derive(Debug, Clone, Copy)]
struct RqThread {
    state: RqState,
    job: RqJob,
    /// Remaining work in the current burst; `None` while spin-waiting on
    /// the GPU (CUDA's default busy-wait synchronisation).
    remaining: Option<SimDuration>,
    /// Generation stamp invalidating stale `CpuTick` events.
    gen: u64,
    /// When the thread entered the ready queue.
    queued_since: SimTime,
    /// When the current running segment began.
    seg_start: SimTime,
    /// When the current quantum expires.
    slice_end: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RqState {
    /// Not runnable (waiting for a frame arrival).
    Idle,
    /// Runnable, waiting for a heavy core.
    Queued,
    /// Holding a heavy core.
    Running,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RqJob {
    /// Issuing kernel-launch calls.
    Launch,
    /// Processing a completed synchronisation.
    SyncReturn,
    /// Spin-waiting in `cudaStreamSynchronize`.
    Spin,
}

impl RqThread {
    fn new() -> Self {
        RqThread {
            state: RqState::Idle,
            job: RqJob::Spin,
            remaining: None,
            gen: 0,
            queued_since: SimTime::ZERO,
            seg_start: SimTime::ZERO,
            slice_end: SimTime::ZERO,
        }
    }
}

/// GPU execution state.
struct Gpu {
    /// Currently executing kernel, if any.
    current: Option<InFlight>,
    /// Process whose queue the GPU is draining (timeslice affinity).
    affinity: Option<usize>,
    /// When the current timeslice started.
    slice_start: SimTime,
    /// Current DVFS frequency step.
    freq_step: usize,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    pid: usize,
    kernel_index: usize,
    ec_seq: u64,
    start: SimTime,
    end: SimTime,
    /// Power coefficient of the kernel's precision.
    coef: f64,
    /// Tensor-core activity while it runs.
    tc: f64,
    /// Fraction of its span doing datapath work (the launch-gap head is
    /// charged at idle power).
    work_fraction: f64,
    /// DRAM bytes per second while it runs.
    bytes_per_sec: f64,
    /// How far this kernel's window contribution has been accounted.
    accounted_until: SimTime,
}

/// Accumulators over one governor/sampling window.
#[derive(Debug, Clone, Copy, Default)]
struct Window {
    busy: SimDuration,
    coef_weighted: f64,
    tc_weighted: f64,
    bytes: u64,
    cpu_busy: SimDuration,
}

impl Window {
    fn load(&self, interval: SimDuration, device: &DeviceSpec) -> (f64, GpuLoad) {
        let secs = interval.as_secs_f64();
        let busy_secs = self.busy.as_secs_f64();
        let busy_frac = if secs == 0.0 {
            0.0
        } else {
            (busy_secs / secs).min(1.0)
        };
        let load = GpuLoad {
            busy: busy_frac,
            precision_w: if busy_secs == 0.0 {
                0.0
            } else {
                self.coef_weighted / busy_secs
            },
            tc_util: if busy_secs == 0.0 {
                0.0
            } else {
                (self.tc_weighted / busy_secs).min(1.0)
            },
            mem_util: if secs == 0.0 {
                0.0
            } else {
                (self.bytes as f64 / (device.gpu.bytes_per_sec() * secs)).min(1.0)
            },
        };
        let cpu_cores = if secs == 0.0 {
            0.0
        } else {
            self.cpu_busy.as_secs_f64() / secs
        };
        (cpu_cores, load)
    }
}

/// A configured, runnable simulation.
///
/// # Examples
///
/// ```
/// use jetsim_des::SimDuration;
/// use jetsim_device::presets;
/// use jetsim_dnn::{zoo, Precision};
/// use jetsim_sim::{SimConfig, Simulation};
///
/// let config = SimConfig::builder(presets::jetson_nano())
///     .add_model(&zoo::yolov8n(), Precision::Fp16, 1)?
///     .warmup(SimDuration::from_millis(100))
///     .measure(SimDuration::from_millis(900))
///     .build()?;
/// let trace = Simulation::new(config)?.run();
/// // Paper §6.1.1: YoloV8n fp16 ≈ 20 img/s on the Jetson Nano.
/// assert!((14.0..30.0).contains(&trace.total_throughput()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Prepares a simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoProcesses`] or [`SimError::OutOfMemory`] for
    /// invalid deployments (the builder normally catches these already;
    /// they are re-checked here for hand-assembled configs).
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        if config.processes.is_empty() {
            return Err(SimError::NoProcesses);
        }
        if config.faults.oom == OomPolicy::Strict {
            let footprint = config
                .total_footprint_bytes()
                .saturating_add(config.faults.peak_spike_bytes());
            if config.device.memory.would_oom(footprint) {
                return Err(SimError::OutOfMemory {
                    required_bytes: footprint,
                    usable_bytes: config.device.memory.usable_bytes(),
                });
            }
        }
        Ok(Simulation { config })
    }

    /// The configuration the simulation will run.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns its trace.
    pub fn run(self) -> RunTrace {
        Runner::new(self.config).run()
    }
}

/// The actual event-loop state (separate from `Simulation` so `run` can
/// consume the config once).
struct Runner {
    config: SimConfig,
    rng: SimRng,
    /// Independent stream for kernel-event jitter samples, so toggling
    /// `record_kernel_events` cannot perturb the simulation dynamics:
    /// aggregate results are bit-identical with tracing on or off.
    trace_rng: SimRng,
    queue: CalendarQueue<Event>,
    procs: Vec<Proc>,
    gpu: Gpu,
    n_procs: u32,
    warmup_end: SimTime,
    sim_end: SimTime,
    dvfs_window: Window,
    sample_window: Window,
    kernel_events: Vec<KernelEvent>,
    power_samples: Vec<PowerSample>,
    gpu_busy_measured: SimDuration,
    /// Events processed by the DES loop (for the sweep benchmarks'
    /// events/sec figure).
    events_processed: u64,
    /// Estimated junction temperature, °C.
    temp_c: f64,
    /// Threads currently holding heavy cores (run-queue mode).
    rq_running: u32,
    /// Ready queue of thread ids (run-queue mode).
    rq_ready: VecDeque<usize>,
    /// Precomputed fault schedule, sorted by time (releases before
    /// arrivals at equal timestamps).
    fault_timeline: Vec<(SimTime, FaultAction)>,
    /// Which processes are still running (`false` once the OOM killer
    /// fires under [`OomPolicy::KillLargest`]).
    alive: Vec<bool>,
    /// When each process was killed, if it was.
    killed_at: Vec<Option<SimTime>>,
    /// Background spike bytes currently resident.
    spike_bytes: u64,
    /// Active throttle lock: `(until, pinned step)`.
    throttle_lock: Option<(SimTime, usize)>,
    /// Faults injected and their consequences, in event order.
    fault_events: Vec<FaultEvent>,
    /// Whether the event-budget watchdog aborted the run.
    budget_exceeded: bool,
}

impl Runner {
    fn new(config: SimConfig) -> Self {
        let rng = SimRng::seed_from(config.seed);
        // Derived with a distinct stream constant so the jitter samples
        // attached to kernel events never share draws with the main
        // dynamics stream.
        let trace_rng = SimRng::seed_from(
            config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x7472_6163_655F_726E, // "trace_rn"
        );
        let top = config.device.gpu.freq.top();
        // Expected per-process EC iterations at the top clock: used to
        // pre-size the per-process EC records and the kernel-event trace
        // so the hot loop never regrows them.
        let total_secs = config.total_time().as_secs_f64();
        let n = config.processes.len().max(1) as f64;
        let est_ecs: Vec<usize> = config
            .processes
            .iter()
            .map(|p| {
                let ideal = p
                    .engine
                    .ideal_ec_time(&config.device.gpu, top)
                    .as_secs_f64()
                    .max(1e-6);
                // The GPU time-multiplexes processes, so each gets ~1/n of
                // its standalone rate; 25% slack absorbs jitter.
                ((total_secs / (ideal * n)) * 1.25).ceil().min(2e6) as usize
            })
            .collect();
        let est_events: usize = if config.record_kernel_events {
            config
                .processes
                .iter()
                .zip(&est_ecs)
                .map(|(p, &ecs)| p.engine.kernel_count().saturating_mul(ecs))
                .sum::<usize>()
                .min(8 << 20)
        } else {
            0
        };
        let procs = config
            .processes
            .iter()
            .zip(&est_ecs)
            .map(|(p, &ecs)| Proc {
                name: p.name.clone(),
                engine: Arc::clone(&p.engine),
                next_launch: 0,
                ec_seq: 0,
                ec_start: SimTime::ZERO,
                enqueue_done_at: SimTime::ZERO,
                cur_launch: SimDuration::ZERO,
                cur_blocking: SimDuration::ZERO,
                cur_gpu: SimDuration::ZERO,
                cache_cold: false,
                arrivals: p.arrivals,
                next_arrival: SimTime::ZERO,
                cur_queue_delay: SimDuration::ZERO,
                cpu: RqThread::new(),
                ready: VecDeque::new(),
                ecs: Vec::with_capacity(ecs),
            })
            .collect::<Vec<_>>();
        let n_procs = procs.len() as u32;
        let warmup_end = SimTime::ZERO + config.warmup;
        let sim_end = SimTime::ZERO + config.total_time();
        let ambient_c = config.device.thermal.ambient_c;
        // The pending-event population is tiny (a couple of events per
        // process plus the periodic ticks); the capacity hint sizes the
        // calendar buckets so they never reallocate mid-run.
        let queue = CalendarQueue::with_capacity(4 * procs.len() + 16);
        let kernel_events = Vec::with_capacity(est_events);
        // Flatten the fault plan into a timeline of point actions.
        // Releases sort before arrivals at equal timestamps so a spike
        // ending exactly when another starts never double-counts.
        let ladder_top = config.device.gpu.freq.top();
        let mut fault_timeline: Vec<(SimTime, FaultAction)> = Vec::with_capacity(
            2 * (config.faults.memory_spikes.len() + config.faults.throttle_locks.len()),
        );
        for spike in &config.faults.memory_spikes {
            fault_timeline.push((spike.at, FaultAction::SpikeStart { bytes: spike.bytes }));
            fault_timeline.push((spike.end(), FaultAction::SpikeEnd { bytes: spike.bytes }));
        }
        for lock in &config.faults.throttle_locks {
            let step = lock.step.min(ladder_top);
            fault_timeline.push((
                lock.at,
                FaultAction::LockStart {
                    until: lock.end(),
                    step,
                },
            ));
            fault_timeline.push((lock.end(), FaultAction::LockEnd));
        }
        fault_timeline.sort_by_key(|&(at, action)| {
            let release_first = match action {
                FaultAction::SpikeEnd { .. } | FaultAction::LockEnd => 0u8,
                FaultAction::SpikeStart { .. } | FaultAction::LockStart { .. } => 1,
            };
            (at.as_nanos(), release_first)
        });
        let proc_count = procs.len();
        Runner {
            config,
            rng,
            trace_rng,
            queue,
            procs,
            gpu: Gpu {
                current: None,
                affinity: None,
                slice_start: SimTime::ZERO,
                freq_step: top,
            },
            n_procs,
            warmup_end,
            sim_end,
            dvfs_window: Window::default(),
            sample_window: Window::default(),
            kernel_events,
            power_samples: Vec::new(),
            gpu_busy_measured: SimDuration::ZERO,
            events_processed: 0,
            temp_c: ambient_c,
            rq_running: 0,
            rq_ready: VecDeque::new(),
            fault_timeline,
            alive: vec![true; proc_count],
            killed_at: vec![None; proc_count],
            spike_bytes: 0,
            throttle_lock: None,
            fault_events: Vec::new(),
            budget_exceeded: false,
        }
    }

    fn run_queue_mode(&self) -> bool {
        self.config.cpu_model == CpuModel::RunQueue
    }

    fn run(mut self) -> RunTrace {
        // Resolve a start-of-run overcommit first: under
        // `OomPolicy::KillLargest` the OOM killer culls the deployment
        // until the survivors fit (the §6.2.1 "reboot" as an outcome).
        self.enforce_memory(SimTime::ZERO);
        // Schedule the fault timeline (no-op for an empty plan, so
        // fault-free runs stay byte-identical to the pre-fault loop).
        for index in 0..self.fault_timeline.len() {
            let at = self.fault_timeline[index].0;
            if at <= self.sim_end {
                self.queue.schedule(at, Event::Fault { index });
            }
        }
        // Start every surviving process's first EC, the governor and the
        // sampler.
        for pid in 0..self.procs.len() {
            if self.alive[pid] {
                self.begin_next_ec(pid, SimTime::ZERO);
            }
        }
        let dvfs_interval = self.config.device.dvfs.interval;
        self.queue
            .schedule(SimTime::ZERO + dvfs_interval, Event::DvfsTick);
        self.queue
            .schedule(SimTime::ZERO + self.config.sample_period, Event::SampleTick);

        let budget = self.config.event_budget.unwrap_or(u64::MAX);
        while let Some((now, event)) = self.queue.pop() {
            if now > self.sim_end {
                break;
            }
            if self.events_processed >= budget {
                // Watchdog: a runaway cell (livelocked queue, absurd
                // grid point) aborts instead of spinning forever; the
                // trace reports what ran and flags the abort.
                self.budget_exceeded = true;
                break;
            }
            self.events_processed += 1;
            match event {
                Event::LaunchDone { pid } => self.on_launch_done(pid, now),
                Event::ThreadResume { pid, kind } => match kind {
                    Resume::ContinueLaunch => self.start_launch(pid, now),
                    Resume::SyncReturn => self.on_sync_return(pid, now),
                },
                Event::GpuDone => self.on_gpu_done(now),
                Event::DvfsTick => self.on_dvfs_tick(now),
                Event::SampleTick => self.on_sample_tick(now),
                Event::CpuTick { pid, gen } => self.rq_tick(pid, gen, now),
                Event::Fault { index } => self.on_fault(index, now),
            }
        }
        self.finalize()
    }

    // ----- fault injection (`crate::FaultPlan`) ------------------------

    /// Applies one scheduled fault action.
    fn on_fault(&mut self, index: usize, now: SimTime) {
        let (_, action) = self.fault_timeline[index];
        match action {
            FaultAction::SpikeStart { bytes } => {
                self.spike_bytes += bytes;
                self.fault_events.push(FaultEvent {
                    time: now,
                    kind: FaultKind::MemorySpikeStart { bytes },
                });
                self.enforce_memory(now);
            }
            FaultAction::SpikeEnd { bytes } => {
                self.spike_bytes = self.spike_bytes.saturating_sub(bytes);
                self.fault_events.push(FaultEvent {
                    time: now,
                    kind: FaultKind::MemorySpikeEnd { bytes },
                });
            }
            FaultAction::LockStart { until, step } => {
                self.throttle_lock = Some((until, step));
                self.gpu.freq_step = step;
                self.fault_events.push(FaultEvent {
                    time: now,
                    kind: FaultKind::ThrottleLockStart {
                        step,
                        mhz: self.config.device.gpu.freq.mhz(step),
                    },
                });
            }
            FaultAction::LockEnd => {
                // Only release when no longer-running lock superseded
                // this one (overlapping locks keep the latest window).
                if let Some((until, _)) = self.throttle_lock {
                    if now >= until {
                        self.throttle_lock = None;
                        self.fault_events.push(FaultEvent {
                            time: now,
                            kind: FaultKind::ThrottleLockEnd,
                        });
                    }
                }
            }
        }
    }

    /// Live unified-memory footprint of the alive processes, optionally
    /// excluding one (to compute how much its death would free). Mirrors
    /// [`SimConfig::total_footprint_bytes`] including memory-group
    /// sharing: killing one stream of a shared group frees only its
    /// per-context buffers unless it was the group's last member.
    fn footprint_excluding(&self, excluded: Option<usize>) -> u64 {
        use std::collections::HashSet;
        let memory = &self.config.device.memory;
        let mut seen: HashSet<usize> = HashSet::new();
        self.config
            .processes
            .iter()
            .enumerate()
            .filter(|&(pid, _)| self.alive[pid] && Some(pid) != excluded)
            .map(|(_, p)| {
                let per_context = p.engine.io_bytes() + p.engine.workspace_bytes();
                if seen.insert(p.memory_group) {
                    memory.per_process_host_bytes
                        + memory.cuda_context_bytes
                        + p.engine.engine_bytes()
                        + per_context
                } else {
                    per_context
                }
            })
            .sum()
    }

    /// Kills processes (largest memory freed first, ties to the lowest
    /// pid) until the live footprint plus background spikes fits in
    /// usable memory. No-op under [`OomPolicy::Strict`], where the
    /// pre-flight check already guaranteed fit.
    fn enforce_memory(&mut self, now: SimTime) {
        if self.config.faults.oom != OomPolicy::KillLargest {
            return;
        }
        loop {
            let current = self.footprint_excluding(None);
            if !self
                .config
                .device
                .memory
                .would_oom(current.saturating_add(self.spike_bytes))
            {
                break;
            }
            let mut victim: Option<(u64, usize)> = None;
            for pid in 0..self.procs.len() {
                if !self.alive[pid] {
                    continue;
                }
                let freed = current - self.footprint_excluding(Some(pid));
                if victim.is_none_or(|(best, _)| freed > best) {
                    victim = Some((freed, pid));
                }
            }
            let Some((freed, pid)) = victim else {
                break; // everyone is dead; the spike alone overcommits
            };
            self.kill_process(pid, freed, now);
        }
    }

    /// Terminates `pid`: its queued kernels vanish, pending events for
    /// it become stale, and (in run-queue mode) its core is released.
    /// Its in-flight GPU kernel, if any, completes — the driver does not
    /// revoke work already submitted to the hardware.
    fn kill_process(&mut self, pid: usize, freed_bytes: u64, now: SimTime) {
        self.alive[pid] = false;
        self.killed_at[pid] = Some(now);
        self.procs[pid].ready.clear();
        if self.run_queue_mode() {
            match self.procs[pid].cpu.state {
                RqState::Running => self.rq_release(pid, now),
                RqState::Queued => {
                    self.rq_ready.retain(|&p| p != pid);
                    let thread = &mut self.procs[pid].cpu;
                    thread.state = RqState::Idle;
                    thread.gen += 1;
                }
                RqState::Idle => {
                    self.procs[pid].cpu.gen += 1;
                }
            }
        }
        self.fault_events.push(FaultEvent {
            time: now,
            kind: FaultKind::ProcessKilled {
                pid,
                name: self.procs[pid].name.clone(),
                freed_bytes,
            },
        });
    }

    /// Starts the next EC: immediately in saturated mode, otherwise when
    /// the next batch has arrived. Records the batch's queueing delay.
    fn begin_next_ec(&mut self, pid: usize, now: SimTime) {
        if !self.alive[pid] {
            return;
        }
        let proc = &mut self.procs[pid];
        match proc.arrivals {
            ArrivalModel::Saturated => {
                proc.cur_queue_delay = SimDuration::ZERO;
                proc.ec_start = now;
                self.start_launch(pid, now);
            }
            ArrivalModel::Periodic { fps } | ArrivalModel::Poisson { fps } => {
                let arrival = proc.next_arrival;
                let gap = match proc.arrivals {
                    ArrivalModel::Poisson { .. } => {
                        // Exponential inter-arrival with mean 1/fps.
                        let u = self.rng.uniform(f64::EPSILON, 1.0);
                        SimDuration::from_secs_f64(-u.ln() / fps)
                    }
                    _ => SimDuration::from_secs_f64(1.0 / fps),
                };
                self.procs[pid].next_arrival = arrival + gap;
                let proc = &mut self.procs[pid];
                if arrival <= now {
                    proc.cur_queue_delay = now.saturating_since(arrival);
                    proc.ec_start = now;
                    self.start_launch(pid, now);
                } else {
                    proc.cur_queue_delay = SimDuration::ZERO;
                    proc.ec_start = arrival;
                    if self.run_queue_mode() && self.procs[pid].cpu.state == RqState::Running {
                        // Nothing to do until the frame arrives: yield the
                        // core instead of spinning on an empty queue.
                        self.rq_release(pid, now);
                    }
                    self.queue.schedule(
                        arrival,
                        Event::ThreadResume {
                            pid,
                            kind: Resume::ContinueLaunch,
                        },
                    );
                }
            }
        }
    }

    /// The host thread spends CPU time issuing the next kernel launch.
    fn start_launch(&mut self, pid: usize, now: SimTime) {
        if !self.alive[pid] {
            return; // stale resume for a process the OOM killer took
        }
        let cpu = &self.config.device.cpu;
        let contention = 1.0 + 0.25 * f64::from(self.n_procs.saturating_sub(1));
        let launch_call_us = (self.rng.uniform(18.0, 40.0) * contention).min(110.0);
        let mut cost = cpu.enqueue_cost + SimDuration::from_micros_f64(launch_call_us);
        cost = cost.mul_f64(self.config.profiler.launch_overhead_factor());
        if self.procs[pid].cache_cold {
            cost = cost.mul_f64(cpu.migration_cache_penalty);
        }
        let proc = &mut self.procs[pid];
        proc.cur_launch += cost;
        if self.run_queue_mode() {
            self.rq_request(pid, now, cost, RqJob::Launch);
        } else {
            self.charge_cpu(cost);
            self.queue.schedule_after(cost, Event::LaunchDone { pid });
        }
    }

    // ----- explicit run-queue CPU scheduler (CpuModel::RunQueue) -------

    /// Submits a CPU burst for `pid`. If the thread already holds a core
    /// the burst continues within its quantum; otherwise it queues for
    /// one of the heavy cores.
    fn rq_request(&mut self, pid: usize, now: SimTime, work: SimDuration, job: RqJob) {
        let thread = &mut self.procs[pid].cpu;
        thread.job = job;
        thread.remaining = Some(work);
        match thread.state {
            RqState::Running => self.rq_reschedule(pid, now),
            RqState::Queued => {} // keeps its queue position, new work noted
            RqState::Idle => {
                if self.rq_running < self.config.device.cpu.heavy_cores {
                    self.rq_grant(pid, now);
                } else {
                    let thread = &mut self.procs[pid].cpu;
                    thread.state = RqState::Queued;
                    thread.queued_since = now;
                    self.rq_ready.push_back(pid);
                }
            }
        }
    }

    /// Gives `pid` a heavy core and a fresh quantum.
    fn rq_grant(&mut self, pid: usize, now: SimTime) {
        let waited = {
            let thread = &mut self.procs[pid].cpu;
            let waited = if thread.state == RqState::Queued {
                Some(now.saturating_since(thread.queued_since))
            } else {
                None
            };
            thread.state = RqState::Running;
            thread.slice_end = now + self.config.device.cpu.quantum;
            waited
        };
        self.rq_running += 1;
        if let Some(wait) = waited {
            // Queue waits with launch work pending are the paper's B_l;
            // waits while spinning surface as synchronisation time.
            if self.procs[pid].cpu.job == RqJob::Launch && !wait.is_zero() {
                self.procs[pid].cur_blocking += wait;
            }
            if !wait.is_zero() && self.rng.chance(0.6) {
                self.procs[pid].cache_cold = true;
            }
        }
        self.rq_reschedule(pid, now);
    }

    /// (Re)schedules the running thread's next tick: burst completion or
    /// quantum expiry, whichever comes first.
    fn rq_reschedule(&mut self, pid: usize, now: SimTime) {
        let thread = &mut self.procs[pid].cpu;
        debug_assert_eq!(thread.state, RqState::Running);
        thread.gen += 1;
        thread.seg_start = now;
        let tick_at = match thread.remaining {
            Some(work) => (now + work).min(thread.slice_end),
            None => thread.slice_end,
        };
        let gen = thread.gen;
        self.queue
            .schedule(tick_at.max_of(now), Event::CpuTick { pid, gen });
    }

    /// Releases `pid`'s core (thread goes idle) and dispatches the next
    /// queued thread.
    fn rq_release(&mut self, pid: usize, now: SimTime) {
        debug_assert_eq!(self.procs[pid].cpu.state, RqState::Running);
        self.procs[pid].cpu.state = RqState::Idle;
        self.procs[pid].cpu.gen += 1;
        self.rq_running -= 1;
        if let Some(next) = self.rq_ready.pop_front() {
            self.rq_grant(next, now);
        }
    }

    /// A running thread's grant ended: either its burst completed or its
    /// quantum expired.
    fn rq_tick(&mut self, pid: usize, gen: u64, now: SimTime) {
        {
            let thread = &self.procs[pid].cpu;
            if !self.alive[pid] || thread.state != RqState::Running || thread.gen != gen {
                return; // stale (or the thread's process was killed)
            }
        }
        let ran = now.saturating_since(self.procs[pid].cpu.seg_start);
        // Spinning or working, the core burns power the whole segment.
        self.charge_cpu(ran);
        let finished = {
            let thread = &mut self.procs[pid].cpu;
            match thread.remaining {
                Some(work) => {
                    let left = work.saturating_sub(ran);
                    thread.remaining = Some(left);
                    left.is_zero()
                }
                None => false,
            }
        };
        if finished {
            let job = self.procs[pid].cpu.job;
            // The thread keeps its core through the continuation; the
            // continuation decides whether to submit more work, spin, or
            // go idle.
            self.procs[pid].cpu.remaining = None;
            self.procs[pid].cpu.job = RqJob::Spin;
            match job {
                RqJob::Launch => self.on_launch_done(pid, now),
                RqJob::SyncReturn => self.on_sync_return(pid, now),
                RqJob::Spin => unreachable!("spin bursts never finish"),
            }
            // If the continuation left the thread running (spin or more
            // work was already rescheduled by rq_request), make sure a
            // tick exists; rq_request/rq_set_spin handled it.
            return;
        }
        // Quantum expired with work left (or spinning).
        if self.rq_ready.is_empty() {
            let thread = &mut self.procs[pid].cpu;
            thread.slice_end = now + self.config.device.cpu.quantum;
            self.rq_reschedule(pid, now);
        } else {
            let thread = &mut self.procs[pid].cpu;
            thread.state = RqState::Queued;
            thread.queued_since = now;
            thread.gen += 1;
            self.rq_ready.push_back(pid);
            self.rq_running -= 1;
            let next = self.rq_ready.pop_front().expect("non-empty");
            self.rq_grant(next, now);
        }
    }

    /// Parks a running thread in spin-wait (`cudaStreamSynchronize`
    /// busy-polls by default, keeping the thread runnable — the root of
    /// the paper's §7 oversubscription collapse).
    fn rq_set_spin(&mut self, pid: usize, now: SimTime) {
        let thread = &mut self.procs[pid].cpu;
        debug_assert_eq!(thread.state, RqState::Running);
        thread.job = RqJob::Spin;
        thread.remaining = None;
        self.rq_reschedule(pid, now);
    }

    /// The GPU finished `pid`'s EC: convert its spin into sync-return
    /// work. If the thread is queued out, the remaining queue wait
    /// becomes visible synchronisation latency.
    fn rq_notify_gpu_done(&mut self, pid: usize, now: SimTime) {
        let sync_cost = SimDuration::from_micros(30) + self.config.device.cpu.wakeup_base;
        let state = self.procs[pid].cpu.state;
        match state {
            RqState::Running => {
                let thread = &mut self.procs[pid].cpu;
                thread.job = RqJob::SyncReturn;
                thread.remaining = Some(sync_cost);
                self.rq_reschedule(pid, now);
            }
            RqState::Queued => {
                let thread = &mut self.procs[pid].cpu;
                thread.job = RqJob::SyncReturn;
                thread.remaining = Some(sync_cost);
            }
            RqState::Idle => {
                // Should not happen (the thread spins during sync), but
                // recover gracefully.
                self.rq_request(pid, now, sync_cost, RqJob::SyncReturn);
            }
        }
    }

    /// A launch call returned: the kernel is now visible to the GPU.
    fn on_launch_done(&mut self, pid: usize, now: SimTime) {
        if !self.alive[pid] {
            return; // the launch call died with its process
        }
        let kernel_index = self.procs[pid].next_launch;
        self.procs[pid].ready.push_back(kernel_index);
        self.procs[pid].next_launch += 1;
        self.try_dispatch(now);

        let kernel_count = self.procs[pid].engine.kernel_count();
        if self.procs[pid].next_launch >= kernel_count {
            // Whole EC enqueued; the thread parks in cudaStreamSynchronize.
            self.procs[pid].enqueue_done_at = now;
            if self.run_queue_mode() {
                // CUDA's default sync spin-waits: the thread stays
                // runnable on its core.
                self.rq_set_spin(pid, now);
            }
            return;
        }
        if self.run_queue_mode() {
            // The explicit scheduler produces preemption organically.
            self.start_launch(pid, now);
            return;
        }
        // Between launches the scheduler may preempt the thread — the
        // paper's per-launch blocking intervals B_l (§7 observation 1).
        let p = self.config.device.cpu.preemption_probability(self.n_procs);
        if self.rng.chance(p) {
            let blocking = SimDuration::from_micros_f64(self.rng.uniform(1000.0, 2000.0));
            self.procs[pid].cur_blocking += blocking;
            // Losing the core usually means landing on another one cold.
            if self.rng.chance(0.6) {
                self.procs[pid].cache_cold = true;
            }
            self.queue.schedule_after(
                blocking,
                Event::ThreadResume {
                    pid,
                    kind: Resume::ContinueLaunch,
                },
            );
        } else {
            self.start_launch(pid, now);
        }
    }

    /// Dispatches the next ready kernel if the GPU is idle.
    fn try_dispatch(&mut self, now: SimTime) {
        if self.gpu.current.is_some() {
            return;
        }
        let Some(pid) = self.pick_process(now) else {
            return;
        };
        let mut start = now;
        let mps_overlap = match self.config.gpu_sharing {
            crate::config::GpuSharing::TimeMultiplexed => None,
            crate::config::GpuSharing::SpatialMps { overlap_efficiency } => {
                Some(overlap_efficiency.clamp(0.0, 0.6))
            }
        };
        if self.gpu.affinity != Some(pid) {
            // No MPS on Jetson: crossing processes costs a GPU context
            // switch. Under the MPS ablation the switch is free.
            if self.gpu.affinity.is_some() && mps_overlap.is_none() {
                start += self.config.device.gpu.ctx_switch;
            }
            self.gpu.affinity = Some(pid);
            self.gpu.slice_start = start;
        }
        let kernel_index = self.procs[pid].ready.pop_front().expect("picked non-empty");
        // Disjoint-field borrows keep the engine referenced in place — no
        // per-dispatch `Arc` refcount traffic on the hot path.
        let engine = &self.procs[pid].engine;
        let batch = engine.batch();
        let kernel = &engine.kernels()[kernel_index];
        let gpu_arch = &self.config.device.gpu;
        let mut exec = kernel
            .exec_time(gpu_arch, batch, self.gpu.freq_step)
            .mul_f64(self.config.profiler.kernel_overhead_factor())
            .mul_f64(self.rng.uniform(0.95, 1.05));
        if let Some(overlap) = mps_overlap {
            // Spatial sharing packs this kernel against other processes'
            // queued work, hiding part of its span.
            let others_waiting =
                (0..self.procs.len()).any(|p| p != pid && !self.procs[p].ready.is_empty());
            if others_waiting {
                exec = exec.mul_f64(1.0 - overlap);
            }
        }
        let end = start + exec;
        let ec_seq = self.procs[pid].ec_seq;
        // Power/governor metadata. Launch-gap time at the front of every
        // kernel keeps the GPU "busy" for the utilisation counter but
        // toggles no datapath, so it is charged at idle power — this is
        // why small-batch runs draw less despite ~100 % GPU utilisation
        // (paper fig 8). Contributions accrue continuously so kernels
        // longer than a governor window are charged to every window they
        // span.
        let coef = self
            .config
            .device
            .power
            .precision_coefficient(kernel.precision);
        let tc = kernel.tc_activity(gpu_arch, batch, self.gpu.freq_step);
        let exec_secs = exec.as_secs_f64();
        let work_fraction =
            1.0 - (gpu_arch.kernel_min_gap.as_secs_f64() / exec_secs.max(f64::EPSILON)).min(1.0);
        let bytes_per_sec = (kernel.bytes * u64::from(batch)) as f64 / exec_secs.max(f64::EPSILON);
        self.gpu.current = Some(InFlight {
            pid,
            kernel_index,
            ec_seq,
            start,
            end,
            coef,
            tc,
            work_fraction,
            bytes_per_sec,
            accounted_until: start,
        });
        self.queue.schedule(end, Event::GpuDone);
    }

    /// Chooses which process's queue the GPU serves next: stay with the
    /// current one until it empties or its timeslice expires, then
    /// round-robin.
    fn pick_process(&self, now: SimTime) -> Option<usize> {
        let n = self.procs.len();
        if let Some(cur) = self.gpu.affinity {
            let slice_ok =
                now.saturating_since(self.gpu.slice_start) < self.config.device.gpu.timeslice;
            let others_waiting = (0..n).any(|p| p != cur && !self.procs[p].ready.is_empty());
            if !self.procs[cur].ready.is_empty() && (slice_ok || !others_waiting) {
                return Some(cur);
            }
            // Round-robin from the next process.
            for offset in 1..=n {
                let pid = (cur + offset) % n;
                if !self.procs[pid].ready.is_empty() {
                    return Some(pid);
                }
            }
            None
        } else {
            (0..n).find(|&pid| !self.procs[pid].ready.is_empty())
        }
    }

    /// Accrues the in-flight kernel's power/utilisation contribution up
    /// to `now` into both accounting windows.
    fn accrue_gpu(&mut self, now: SimTime) {
        let Some(inflight) = self.gpu.current.as_mut() else {
            return;
        };
        let upto = if now < inflight.end {
            now
        } else {
            inflight.end
        };
        if upto <= inflight.accounted_until {
            return;
        }
        let span = upto.since(inflight.accounted_until);
        let secs = span.as_secs_f64();
        let (coef, tc, wf, bps) = (
            inflight.coef,
            inflight.tc,
            inflight.work_fraction,
            inflight.bytes_per_sec,
        );
        inflight.accounted_until = upto;
        for window in [&mut self.dvfs_window, &mut self.sample_window] {
            window.busy += span;
            window.coef_weighted += coef * secs * wf;
            window.tc_weighted += tc * secs;
            window.bytes += (bps * secs) as u64;
        }
    }

    /// The GPU finished a kernel: emit its event, wake the owner if this
    /// completed an EC, and dispatch the next kernel.
    fn on_gpu_done(&mut self, now: SimTime) {
        self.accrue_gpu(now);
        let inflight = self.gpu.current.take().expect("GpuDone without kernel");
        let exec = inflight.end.since(inflight.start);
        self.procs[inflight.pid].cur_gpu += exec;

        if inflight.end > self.warmup_end {
            let clipped = inflight.end.since(self.warmup_end.max_of(inflight.start));
            self.gpu_busy_measured += clipped.max_of(SimDuration::ZERO);
        }
        // Disjoint-field borrows: the engine stays referenced in place
        // (no `Arc` clone per completion) while the jitter samples come
        // from the dedicated trace stream, so disabling recording cannot
        // change the dynamics.
        let engine = &self.procs[inflight.pid].engine;
        let kernel_count = engine.kernel_count();
        if inflight.end > self.warmup_end && self.config.record_kernel_events {
            let kernel = &engine.kernels()[inflight.kernel_index];
            let gpu_arch = &self.config.device.gpu;
            let batch = engine.batch();
            let sm = (kernel.sm_active(gpu_arch, batch) * self.trace_rng.uniform(0.92, 1.08))
                .clamp(0.0, 1.0);
            let issue = (kernel.issue_slot(gpu_arch, batch, self.gpu.freq_step)
                * self.trace_rng.uniform(0.85, 1.15))
            .clamp(0.0, 0.8);
            let tc = (kernel.tc_activity(gpu_arch, batch, self.gpu.freq_step)
                * self.trace_rng.uniform(0.88, 1.12))
            .clamp(0.0, 1.0);
            self.kernel_events.push(KernelEvent {
                pid: inflight.pid,
                ec_seq: inflight.ec_seq,
                kernel_index: inflight.kernel_index,
                start: inflight.start,
                end: inflight.end,
                precision: kernel.precision,
                sm_active: sm,
                issue_slot: issue,
                tc_activity: tc,
                bytes: kernel.bytes * u64::from(batch),
            });
        }

        if inflight.kernel_index + 1 == kernel_count && self.alive[inflight.pid] {
            if self.run_queue_mode() {
                // The spinning thread notices completion once it holds a
                // core; the queue wait *is* the wakeup latency.
                self.rq_notify_gpu_done(inflight.pid, now);
            } else {
                // Last kernel of the EC: wake the parked thread.
                let wakeup = self
                    .config
                    .device
                    .cpu
                    .wakeup_delay(self.n_procs)
                    .mul_f64(self.rng.uniform(0.8, 1.2));
                self.queue.schedule_after(
                    wakeup,
                    Event::ThreadResume {
                        pid: inflight.pid,
                        kind: Resume::SyncReturn,
                    },
                );
            }
        }
        self.try_dispatch(now);
    }

    /// The thread returned from synchronize: record the EC and start the
    /// next one.
    fn on_sync_return(&mut self, pid: usize, now: SimTime) {
        if !self.alive[pid] {
            return; // wakeup raced the OOM killer
        }
        if !self.run_queue_mode() {
            // In run-queue mode the sync-return burst was already charged
            // by the scheduler.
            let sync_cost = SimDuration::from_micros(30);
            self.charge_cpu(sync_cost);
        }
        let proc = &mut self.procs[pid];
        let record = EcRecord {
            start: proc.ec_start,
            end: now,
            launch_time: proc.cur_launch,
            blocking_time: proc.cur_blocking,
            sync_time: now.saturating_since(proc.enqueue_done_at),
            gpu_time: proc.cur_gpu,
            queue_delay: proc.cur_queue_delay,
        };
        proc.ecs.push(record);
        proc.ec_seq += 1;
        proc.next_launch = 0;
        proc.cur_launch = SimDuration::ZERO;
        proc.cur_blocking = SimDuration::ZERO;
        proc.cur_gpu = SimDuration::ZERO;
        proc.cache_cold = false;
        self.begin_next_ec(pid, now);
    }

    /// Periodic DVFS governor: integrate the thermal model, estimate
    /// draw, walk the ladder. The junction temperature throttles
    /// unconditionally — the "thermal limit" half of the paper's §6.1.2.
    fn on_dvfs_tick(&mut self, now: SimTime) {
        self.accrue_gpu(now);
        let device = &self.config.device;
        let interval = device.dvfs.interval;
        let (cpu_cores, load) = self.dvfs_window.load(interval, device);
        self.dvfs_window = Window::default();
        let ladder = &device.gpu.freq;
        let cur = self.gpu.freq_step;
        let watts_now = device.power.total_watts(cpu_cores, load, ladder.ratio(cur));
        self.temp_c = device
            .thermal
            .step(self.temp_c, watts_now, interval.as_secs_f64());
        // An injected throttle lock (`crate::ThrottleLock`) overrides the
        // governor: the clock stays pinned until the lock's window ends,
        // whatever the power budget says. Thermal state still integrates.
        let locked = match self.throttle_lock {
            Some((until, step)) if now <= until => {
                self.gpu.freq_step = step;
                true
            }
            _ => false,
        };
        if !locked && device.dvfs.enabled {
            let watts_at = |step: usize| {
                device
                    .power
                    .total_watts(cpu_cores, load, ladder.ratio(step))
            };
            let budget = device.power.budget_w;
            let over_limit = device.thermal.throttles(self.temp_c) || watts_at(cur) > budget;
            self.gpu.freq_step = if over_limit {
                ladder.step_down(cur)
            } else {
                let up = ladder.step_up(cur);
                // Predictive up-step: only raise the clock if the draw at
                // the higher step would still respect the budget (with
                // hysteresis), otherwise the governor would oscillate.
                if up != cur
                    && watts_at(up) < budget * device.dvfs.up_hysteresis
                    && !device.thermal.throttles(self.temp_c)
                {
                    up
                } else {
                    cur
                }
            };
        }
        self.queue.schedule_after(interval, Event::DvfsTick);
    }

    /// Periodic `jetson-stats` sample.
    fn on_sample_tick(&mut self, now: SimTime) {
        self.accrue_gpu(now);
        let device = &self.config.device;
        let period = self.config.sample_period;
        let (cpu_cores, load) = self.sample_window.load(period, device);
        self.sample_window = Window::default();
        let ratio = device.gpu.freq.ratio(self.gpu.freq_step);
        let watts = device.power.total_watts(cpu_cores, load, ratio);
        if now > self.warmup_end {
            self.power_samples.push(PowerSample {
                time: now,
                watts,
                gpu_utilization: load.busy,
                gpu_freq_mhz: device.gpu.freq.mhz(self.gpu.freq_step),
                gpu_memory_bytes: self.config.gpu_memory_bytes(),
                cpu_busy_cores: cpu_cores,
                temp_c: self.temp_c,
            });
        }
        self.queue.schedule_after(period, Event::SampleTick);
    }

    fn charge_cpu(&mut self, cost: SimDuration) {
        self.dvfs_window.cpu_busy += cost;
        self.sample_window.cpu_busy += cost;
    }

    fn finalize(mut self) -> RunTrace {
        let measure_secs = self.config.measure.as_secs_f64();
        let mut processes = Vec::with_capacity(self.procs.len());
        let mut ec_records = Vec::with_capacity(self.procs.len());
        for (pid, proc) in self.procs.iter_mut().enumerate() {
            let measured: Vec<EcRecord> = proc
                .ecs
                .iter()
                .filter(|r| r.end > self.warmup_end)
                .copied()
                .collect();
            let completed = measured.len() as u64;
            let images = completed * u64::from(proc.engine.batch());
            let mean = |f: fn(&EcRecord) -> SimDuration| -> SimDuration {
                if completed == 0 {
                    SimDuration::ZERO
                } else {
                    measured.iter().map(f).sum::<SimDuration>() / completed
                }
            };
            let mut durations: Vec<SimDuration> = measured.iter().map(|r| r.duration()).collect();
            durations.sort_unstable();
            let percentile = |q: f64| -> SimDuration {
                if durations.is_empty() {
                    SimDuration::ZERO
                } else {
                    durations[((durations.len() - 1) as f64 * q).round() as usize]
                }
            };
            processes.push(ProcessStats {
                name: proc.name.clone(),
                engine_name: proc.engine.name().to_string(),
                batch: proc.engine.batch(),
                completed_ecs: completed,
                images,
                throughput: if measure_secs == 0.0 {
                    0.0
                } else {
                    images as f64 / measure_secs
                },
                mean_ec_time: mean(|r| r.duration()),
                p50_ec_time: percentile(0.5),
                p95_ec_time: percentile(0.95),
                p99_ec_time: percentile(0.99),
                mean_launch_time: mean(|r| r.launch_time),
                mean_blocking_time: mean(|r| r.blocking_time),
                mean_sync_time: mean(|r| r.sync_time),
                mean_gpu_time: mean(|r| r.gpu_time),
                mean_queue_delay: mean(|r| r.queue_delay),
                killed_at: self.killed_at[pid],
            });
            ec_records.push(measured);
        }
        let gpu_memory_bytes = self.config.gpu_memory_bytes();
        // Intern one name table per distinct engine: processes sharing an
        // engine share one `Arc`, so an 8-process sweep cell clones each
        // kernel name once instead of eight times.
        let mut interned: Vec<(Arc<Engine>, Arc<Vec<String>>)> = Vec::new();
        let kernel_names: Vec<Arc<Vec<String>>> = self
            .procs
            .iter()
            .map(|p| {
                if let Some((_, names)) = interned.iter().find(|(e, _)| Arc::ptr_eq(e, &p.engine)) {
                    Arc::clone(names)
                } else {
                    let names: Arc<Vec<String>> =
                        Arc::new(p.engine.kernels().iter().map(|k| k.name.clone()).collect());
                    interned.push((Arc::clone(&p.engine), Arc::clone(&names)));
                    names
                }
            })
            .collect();
        RunTrace {
            device_name: self.config.device.name.clone(),
            measured: self.config.measure,
            processes,
            kernel_names,
            ec_records,
            kernel_events: std::mem::take(&mut self.kernel_events),
            power_samples: std::mem::take(&mut self.power_samples),
            fault_events: std::mem::take(&mut self.fault_events),
            budget_exceeded: self.budget_exceeded,
            sim_events: self.events_processed,
            gpu_busy: self.gpu_busy_measured,
            gpu_memory_bytes,
            gpu_memory_percent: self.config.device.memory.gpu_percent(gpu_memory_bytes),
            final_freq_mhz: self.config.device.gpu.freq.mhz(self.gpu.freq_step),
            top_freq_mhz: self.config.device.gpu.freq.max_mhz(),
            mem_bandwidth_bytes_per_sec: self.config.device.gpu.bytes_per_sec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProfilerMode;
    use jetsim_device::presets;
    use jetsim_dnn::{zoo, Precision};

    fn quick_config(
        device: DeviceSpec,
        model: &jetsim_dnn::ModelGraph,
        precision: Precision,
        batch: u32,
        procs: u32,
    ) -> SimConfig {
        SimConfig::builder(device)
            .add_model_processes(model, precision, batch, procs)
            .expect("engine builds")
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_millis(1000))
            .build()
            .expect("config builds")
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let config = quick_config(
                presets::orin_nano(),
                &zoo::resnet50(),
                Precision::Int8,
                1,
                2,
            );
            Simulation::new(config).unwrap().run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_throughput(), b.total_throughput());
        assert_eq!(a.kernel_events.len(), b.kernel_events.len());
        assert_eq!(a.mean_power(), b.mean_power());
    }

    #[test]
    fn different_seed_changes_details_not_shape() {
        let config = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        );
        let mut config2 = config.clone();
        config2.seed = 99;
        let a = Simulation::new(config).unwrap().run();
        let b = Simulation::new(config2).unwrap().run();
        assert_ne!(a.kernel_events.len(), 0);
        let ratio = a.total_throughput() / b.total_throughput();
        assert!(
            (0.9..1.1).contains(&ratio),
            "seeds change jitter only: {ratio}"
        );
    }

    #[test]
    fn single_process_resnet_int8_orin_throughput() {
        let config = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        );
        let trace = Simulation::new(config).unwrap().run();
        let tput = trace.total_throughput();
        assert!((250.0..700.0).contains(&tput), "tput = {tput}");
    }

    #[test]
    fn throughput_per_process_falls_with_concurrency() {
        let t1 = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::yolov8n(),
            Precision::Int8,
            1,
            1,
        ))
        .unwrap()
        .run();
        let t8 = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::yolov8n(),
            Precision::Int8,
            1,
            8,
        ))
        .unwrap()
        .run();
        assert!(
            t8.throughput_per_process() < t1.throughput_per_process() / 3.0,
            "T/P must collapse: {} vs {}",
            t8.throughput_per_process(),
            t1.throughput_per_process()
        );
    }

    #[test]
    fn blocking_negligible_when_cores_suffice() {
        let trace = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            2,
        ))
        .unwrap()
        .run();
        for p in &trace.processes {
            assert!(
                p.mean_blocking_time < SimDuration::from_micros(100),
                "{}: blocking {}",
                p.name,
                p.mean_blocking_time
            );
        }
    }

    #[test]
    fn blocking_dominates_when_oversubscribed() {
        let trace = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            8,
        ))
        .unwrap()
        .run();
        for p in &trace.processes {
            assert!(
                p.mean_blocking_time > SimDuration::from_millis(5),
                "{}: blocking {}",
                p.name,
                p.mean_blocking_time
            );
        }
    }

    #[test]
    fn power_respects_budget_with_dvfs() {
        for (device, model) in [
            (presets::orin_nano(), zoo::fcn_resnet50()),
            (presets::jetson_nano(), zoo::fcn_resnet50()),
        ] {
            let budget = device.power.budget_w;
            let config = quick_config(device, &model, Precision::Fp32, 4, 1);
            let trace = Simulation::new(config).unwrap().run();
            assert!(
                trace.mean_power() <= budget * 1.08,
                "mean power {} exceeds budget {budget}",
                trace.mean_power()
            );
        }
    }

    #[test]
    fn fp32_triggers_downclock_on_orin() {
        let config = quick_config(
            presets::orin_nano(),
            &zoo::fcn_resnet50(),
            Precision::Fp32,
            4,
            1,
        );
        let trace = Simulation::new(config).unwrap().run();
        assert!(
            trace.final_freq_mhz < 625,
            "DVFS should throttle fp32: {} MHz",
            trace.final_freq_mhz
        );
    }

    #[test]
    fn int8_leaves_clock_at_top() {
        let config = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        );
        let trace = Simulation::new(config).unwrap().run();
        assert_eq!(trace.final_freq_mhz, 625);
    }

    #[test]
    fn nsight_profiler_halves_throughput() {
        let base = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        );
        let mut nsight = base.clone();
        nsight.profiler = ProfilerMode::Nsight;
        let light = Simulation::new(base).unwrap().run().total_throughput();
        let heavy = Simulation::new(nsight).unwrap().run().total_throughput();
        let reduction = 1.0 - heavy / light;
        assert!(
            (0.3..0.7).contains(&reduction),
            "paper §4: ~50% intrusion, got {reduction:.2}"
        );
    }

    #[test]
    fn kernel_events_cover_all_processes() {
        let trace = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Fp16,
            1,
            2,
        ))
        .unwrap()
        .run();
        assert!(trace.kernel_events.iter().any(|e| e.pid == 0));
        assert!(trace.kernel_events.iter().any(|e| e.pid == 1));
        for e in &trace.kernel_events {
            assert!(e.end > e.start);
            assert!((0.0..=1.0).contains(&e.sm_active));
            assert!((0.0..=0.8).contains(&e.issue_slot));
            assert!((0.0..=1.0).contains(&e.tc_activity));
        }
    }

    #[test]
    fn gpu_busy_never_exceeds_wall() {
        let trace = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::fcn_resnet50(),
            Precision::Fp16,
            1,
            2,
        ))
        .unwrap()
        .run();
        assert!(trace.gpu_utilization() <= 1.0);
        assert!(
            trace.gpu_utilization() > 0.5,
            "two FCN procs saturate the GPU"
        );
    }

    #[test]
    fn ec_decomposition_parts_bounded_by_total() {
        let trace = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            4,
        ))
        .unwrap()
        .run();
        for records in &trace.ec_records {
            for r in records {
                assert!(
                    r.launch_time + r.blocking_time <= r.duration() + SimDuration::from_micros(1)
                );
            }
        }
    }

    #[test]
    fn batch_raises_throughput_per_process() {
        let b1 = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::yolov8n(),
            Precision::Int8,
            1,
            1,
        ))
        .unwrap()
        .run();
        let b16 = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::yolov8n(),
            Precision::Int8,
            16,
            1,
        ))
        .unwrap()
        .run();
        assert!(
            b16.throughput_per_process() > b1.throughput_per_process() * 1.1,
            "batch must help: {} vs {}",
            b16.throughput_per_process(),
            b1.throughput_per_process()
        );
    }

    #[test]
    fn mps_sharing_recovers_concurrent_throughput() {
        // The MPS ablation: spatial sharing should beat Jetson's
        // time-multiplexing for multi-process workloads (paper §2 explains
        // Jetson lacks MPS; this quantifies the cost).
        let base = quick_config(
            presets::orin_nano(),
            &zoo::fcn_resnet50(),
            Precision::Fp16,
            1,
            4,
        );
        let mut mps = base.clone();
        mps.gpu_sharing = crate::config::GpuSharing::SpatialMps {
            overlap_efficiency: 0.3,
        };
        let tm = Simulation::new(base).unwrap().run().total_throughput();
        let sp = Simulation::new(mps).unwrap().run().total_throughput();
        assert!(sp > tm * 1.1, "MPS {sp} vs time-multiplexed {tm}");
    }

    #[test]
    fn latency_percentiles_ordered() {
        let trace = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            4,
        ))
        .unwrap()
        .run();
        for p in &trace.processes {
            assert!(p.p50_ec_time <= p.p95_ec_time);
            assert!(p.p95_ec_time <= p.p99_ec_time);
            assert!(p.p99_ec_time > SimDuration::ZERO);
        }
    }

    fn rq_config(procs: u32) -> SimConfig {
        let mut config = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            procs,
        );
        config.cpu_model = crate::config::CpuModel::RunQueue;
        config
    }

    #[test]
    fn run_queue_single_process_matches_stochastic_regime() {
        let stochastic = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        ))
        .unwrap()
        .run();
        let rq = Simulation::new(rq_config(1)).unwrap().run();
        // With a dedicated core the scheduler is irrelevant: both models
        // must land in the same throughput regime.
        let ratio = rq.total_throughput() / stochastic.total_throughput();
        assert!((0.8..1.25).contains(&ratio), "ratio = {ratio}");
        assert!(
            rq.processes[0].mean_blocking_time < SimDuration::from_micros(200),
            "{}",
            rq.processes[0].mean_blocking_time
        );
    }

    #[test]
    fn run_queue_oversubscription_collapses_mechanically() {
        // 8 spin-waiting threads on 3 heavy cores: quantum time-sharing
        // alone must blow the EC up — no tuned probabilities involved.
        let p2 = Simulation::new(rq_config(2)).unwrap().run();
        let p8 = Simulation::new(rq_config(8)).unwrap().run();
        let ec2 = p2.mean_ec_time();
        let ec8 = p8.mean_ec_time();
        assert!(
            ec8 > ec2 * 3,
            "EC must explode past the heavy cores: {ec2} -> {ec8}"
        );
        assert!(
            p8.throughput_per_process() < p2.throughput_per_process() / 2.5,
            "{} vs {}",
            p8.throughput_per_process(),
            p2.throughput_per_process()
        );
    }

    #[test]
    fn run_queue_blocking_appears_only_when_oversubscribed() {
        let p3 = Simulation::new(rq_config(3)).unwrap().run();
        for p in &p3.processes {
            assert!(
                p.mean_blocking_time < SimDuration::from_millis(1),
                "{}: {}",
                p.name,
                p.mean_blocking_time
            );
        }
        let p6 = Simulation::new(rq_config(6)).unwrap().run();
        let any_blocked = p6
            .processes
            .iter()
            .any(|p| p.mean_blocking_time > SimDuration::from_millis(1));
        assert!(any_blocked, "queue waits must surface as blocking");
    }

    #[test]
    fn run_queue_is_deterministic() {
        let a = Simulation::new(rq_config(4)).unwrap().run();
        let b = Simulation::new(rq_config(4)).unwrap().run();
        assert_eq!(a.total_throughput(), b.total_throughput());
        assert_eq!(a.kernel_events.len(), b.kernel_events.len());
    }

    #[test]
    fn periodic_arrivals_throttle_throughput() {
        // A 30 fps camera feeding a 400+ img/s engine: throughput pins to
        // the offered rate and the GPU goes mostly idle.
        let engine = std::sync::Arc::new(
            jetsim_trt::EngineBuilder::new(&presets::orin_nano())
                .precision(Precision::Int8)
                .build(&zoo::resnet50())
                .unwrap(),
        );
        let config_for = |arrivals| {
            SimConfig::builder(presets::orin_nano())
                .add_engine_with_arrivals(std::sync::Arc::clone(&engine), arrivals)
                .warmup(SimDuration::from_millis(200))
                .measure(SimDuration::from_millis(1000))
                .build()
                .unwrap()
        };
        let open = Simulation::new(config_for(crate::config::ArrivalModel::Periodic {
            fps: 30.0,
        }))
        .unwrap()
        .run();
        assert!(
            (24.0..33.0).contains(&open.total_throughput()),
            "pinned to offered rate: {}",
            open.total_throughput()
        );
        assert!(open.gpu_utilization() < 0.4, "mostly idle GPU");
        // Queue delay stays ~0: the engine drains each frame instantly.
        assert!(
            open.processes[0].mean_queue_delay < SimDuration::from_millis(1),
            "{}",
            open.processes[0].mean_queue_delay
        );
    }

    #[test]
    fn overloaded_open_loop_builds_queue_delay() {
        // Offer 60 fps to an FCN engine that only sustains ~18 img/s:
        // the backlog grows and queueing delay dwarfs service time.
        let engine = std::sync::Arc::new(
            jetsim_trt::EngineBuilder::new(&presets::orin_nano())
                .precision(Precision::Fp16)
                .build(&zoo::fcn_resnet50())
                .unwrap(),
        );
        let config = SimConfig::builder(presets::orin_nano())
            .add_engine_with_arrivals(
                std::sync::Arc::clone(&engine),
                crate::config::ArrivalModel::Periodic { fps: 60.0 },
            )
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_millis(1500))
            .build()
            .unwrap();
        let trace = Simulation::new(config).unwrap().run();
        assert!(
            trace.processes[0].mean_queue_delay > SimDuration::from_millis(100),
            "backlog must accumulate: {}",
            trace.processes[0].mean_queue_delay
        );
    }

    #[test]
    fn poisson_arrivals_average_the_offered_rate() {
        let engine = std::sync::Arc::new(
            jetsim_trt::EngineBuilder::new(&presets::orin_nano())
                .precision(Precision::Int8)
                .build(&zoo::resnet50())
                .unwrap(),
        );
        let config = SimConfig::builder(presets::orin_nano())
            .add_engine_with_arrivals(
                std::sync::Arc::clone(&engine),
                crate::config::ArrivalModel::Poisson { fps: 100.0 },
            )
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_secs(2))
            .build()
            .unwrap();
        let trace = Simulation::new(config).unwrap().run();
        let t = trace.total_throughput();
        assert!((75.0..125.0).contains(&t), "mean rate ≈100: {t}");
    }

    #[test]
    fn temperature_rises_under_load_but_stays_safe() {
        let trace = Simulation::new(quick_config(
            presets::orin_nano(),
            &zoo::fcn_resnet50(),
            Precision::Fp16,
            1,
            1,
        ))
        .unwrap()
        .run();
        let first = trace.power_samples.first().unwrap().temp_c;
        let last = trace.power_samples.last().unwrap().temp_c;
        assert!(last > first, "junction must warm up: {first} -> {last}");
        assert!(last < 60.0, "short runs stay far from the throttle point");
    }

    #[test]
    fn tiny_thermal_mass_forces_throttling() {
        // An artificial device with negligible thermal capacitance and a
        // low ceiling hits the thermal limit within the run, forcing the
        // governor down even though power is within budget.
        let mut device = presets::orin_nano();
        device.thermal.capacitance_j_per_c = 0.05;
        device.thermal.throttle_c = 45.0;
        device.power.budget_w = 50.0; // power limit out of the picture
        let config = SimConfig::builder(device)
            .add_model(&zoo::resnet50(), Precision::Fp16, 4)
            .unwrap()
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_millis(1000))
            .build()
            .unwrap();
        let trace = Simulation::new(config).unwrap().run();
        assert!(
            trace.final_freq_mhz < 625,
            "thermal throttle must engage: {} MHz at {:.1} C",
            trace.final_freq_mhz,
            trace.power_samples.last().unwrap().temp_c
        );
    }

    #[test]
    fn oom_killer_resolves_fcn_overdeployment_on_nano() {
        // Paper §6.2.1: 4 × FCN_ResNet50 reboots the Jetson Nano. Under
        // `OomPolicy::KillLargest` the reboot becomes a simulated
        // outcome: the OOM killer culls the deployment at admission and
        // the survivors report real throughput.
        use crate::faults::{FaultKind, FaultPlan};
        let config = SimConfig::builder(presets::jetson_nano())
            .add_model_processes(&zoo::fcn_resnet50(), Precision::Fp16, 1, 4)
            .unwrap()
            // FCN on the Nano takes ~0.7 s per EC solo and ~2 s when the
            // survivors share the GPU, so give the window room to breathe.
            .warmup(SimDuration::from_millis(500))
            .measure(SimDuration::from_millis(8000))
            .faults(FaultPlan::kill_largest_on_oom())
            .build()
            .expect("kill policy admits the overcommit");
        let trace = Simulation::new(config).unwrap().run();
        assert!(trace.killed_processes() >= 1, "someone must die");
        assert!(trace.killed_processes() < 4, "someone must survive");
        assert!(trace.surviving_throughput() > 0.0, "survivors keep working");
        let kills = trace
            .fault_events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::ProcessKilled { .. }))
            .count();
        assert_eq!(kills, trace.killed_processes(), "one event per casualty");
        for p in &trace.processes {
            if p.killed_at.is_some() {
                assert_eq!(p.completed_ecs, 0, "killed at t=0, never ran");
            }
        }
    }

    #[test]
    fn midrun_memory_spike_triggers_oom_kill() {
        use crate::faults::{FaultKind, FaultPlan};
        // 4 ResNet50 processes fit on the Nano; a 3 GiB background
        // allocation 500 ms in does not.
        let spike_at = SimTime::from_nanos(500_000_000);
        let config = SimConfig::builder(presets::jetson_nano())
            .add_model_processes(&zoo::resnet50(), Precision::Fp16, 1, 4)
            .unwrap()
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_millis(1000))
            .faults(FaultPlan::kill_largest_on_oom().memory_spike(
                spike_at,
                SimDuration::from_millis(300),
                3 << 30,
            ))
            .build()
            .unwrap();
        let trace = Simulation::new(config).unwrap().run();
        assert!(trace.killed_processes() >= 1, "spike must force a kill");
        for p in &trace.processes {
            if let Some(at) = p.killed_at {
                assert!(at >= spike_at, "kills happen when the spike lands");
            }
        }
        assert!(trace
            .fault_events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::MemorySpikeStart { .. })));
        assert!(trace
            .fault_events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::MemorySpikeEnd { .. })));
    }

    #[test]
    fn throttle_lock_pins_the_clock_low() {
        use crate::faults::{FaultKind, FaultPlan};
        // Int8 ResNet50 normally leaves the Orin clock at the top
        // (`int8_leaves_clock_at_top`); a lock covering the whole run
        // pins it to the bottom ladder step instead.
        let mut config = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        );
        let base = Simulation::new(config.clone()).unwrap().run();
        config.faults =
            FaultPlan::new().throttle_lock(SimTime::ZERO, SimDuration::from_secs(30), 0);
        let locked = Simulation::new(config).unwrap().run();
        assert!(
            locked.final_freq_mhz < base.final_freq_mhz,
            "{} !< {}",
            locked.final_freq_mhz,
            base.final_freq_mhz
        );
        assert!(
            locked.total_throughput() < base.total_throughput() * 0.8,
            "pinned clock must cost throughput: {} vs {}",
            locked.total_throughput(),
            base.total_throughput()
        );
        assert!(locked
            .fault_events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::ThrottleLockStart { .. })));
    }

    #[test]
    fn throttle_lock_releases_and_governor_recovers() {
        use crate::faults::{FaultKind, FaultPlan};
        let mut config = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            1,
        );
        // Lock only the first 300 ms of a 1.2 s run.
        config.faults =
            FaultPlan::new().throttle_lock(SimTime::ZERO, SimDuration::from_millis(300), 0);
        let trace = Simulation::new(config).unwrap().run();
        assert!(trace
            .fault_events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::ThrottleLockEnd)));
        assert_eq!(
            trace.final_freq_mhz, 625,
            "int8 load climbs back to the top after release"
        );
    }

    #[test]
    fn event_budget_watchdog_aborts_runaway_runs() {
        let mut config = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Int8,
            1,
            2,
        );
        config.event_budget = Some(500);
        let trace = Simulation::new(config.clone()).unwrap().run();
        assert!(trace.budget_exceeded, "500 events cannot finish this run");
        assert!(trace.sim_events <= 500);
        config.event_budget = Some(u64::MAX);
        let full = Simulation::new(config).unwrap().run();
        assert!(!full.budget_exceeded);
        assert!(full.sim_events > 500);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        use crate::faults::FaultPlan;
        let base = quick_config(
            presets::orin_nano(),
            &zoo::resnet50(),
            Precision::Fp16,
            2,
            2,
        );
        let mut with_plan = base.clone();
        with_plan.faults = FaultPlan::new(); // explicitly attached, still empty
        let a = Simulation::new(base).unwrap().run();
        let b = Simulation::new(with_plan).unwrap().run();
        assert_eq!(a.total_throughput(), b.total_throughput());
        assert_eq!(a.kernel_events, b.kernel_events);
        assert_eq!(a.power_samples, b.power_samples);
        assert_eq!(a.sim_events, b.sim_events);
        assert!(b.fault_events.is_empty());
    }

    #[test]
    fn fault_injection_is_deterministic() {
        use crate::faults::FaultPlan;
        let run = || {
            let mut config = quick_config(
                presets::jetson_nano(),
                &zoo::resnet50(),
                Precision::Fp16,
                1,
                4,
            );
            config.faults = FaultPlan::seeded(42, config.total_time(), 3, 2)
                .oom_policy(crate::faults::OomPolicy::KillLargest);
            Simulation::new(config).unwrap().run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.fault_events, b.fault_events);
        assert_eq!(a.total_throughput(), b.total_throughput());
        assert_eq!(a.kernel_events.len(), b.kernel_events.len());
        assert_eq!(
            a.processes.iter().map(|p| p.killed_at).collect::<Vec<_>>(),
            b.processes.iter().map(|p| p.killed_at).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn power_samples_present_and_positive() {
        let trace = Simulation::new(quick_config(
            presets::jetson_nano(),
            &zoo::resnet50(),
            Precision::Fp16,
            1,
            1,
        ))
        .unwrap()
        .run();
        assert!(trace.power_samples.len() >= 3);
        for s in &trace.power_samples {
            assert!(s.watts > 1.0 && s.watts < 6.0, "watts = {}", s.watts);
        }
    }
}
