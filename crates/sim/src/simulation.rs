//! The discrete-event simulation loop: a slim event router over the
//! typed components in the crate-private `components` module.

use std::collections::VecDeque;
use std::sync::Arc;

use jetsim_des::{CalendarQueue, SimDuration, SimRng, SimTime};
use jetsim_trt::Engine;

use crate::components::governor::{Governor, GovernorEvent};
use crate::components::gpu::GpuEngine;
use crate::components::ingress::{Ingress, IngressDeps};
use crate::components::memory_guard::{GuardDeps, MemoryGuard};
use crate::components::sampler::{Sampler, SamplerDeps, SamplerEvent};
use crate::components::sched::{CpuSched, RqThread};
use crate::components::{Component, Ctx, Event, Proc};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::faults::OomPolicy;
use crate::soa::EcColumns;
use crate::trace::{EcRecord, ProcessStats, RunTrace};

/// A configured, runnable simulation.
///
/// # Examples
///
/// ```
/// use jetsim_des::SimDuration;
/// use jetsim_device::presets;
/// use jetsim_dnn::{zoo, Precision};
/// use jetsim_sim::{SimConfig, Simulation};
///
/// let config = SimConfig::builder(presets::jetson_nano())
///     .add_model(&zoo::yolov8n(), Precision::Fp16, 1)?
///     .warmup(SimDuration::from_millis(100))
///     .measure(SimDuration::from_millis(900))
///     .build()?;
/// let trace = Simulation::new(config)?.run();
/// // Paper §6.1.1: YoloV8n fp16 ≈ 20 img/s on the Jetson Nano.
/// assert!((14.0..30.0).contains(&trace.total_throughput()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Prepares a simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoProcesses`], [`SimError::InvalidConfig`] or
    /// [`SimError::OutOfMemory`] for invalid deployments (the builder
    /// normally catches these already; they are re-checked here for
    /// hand-assembled configs).
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        if config.processes.is_empty() {
            return Err(SimError::NoProcesses);
        }
        config.validate_dynamics()?;
        if config.faults.oom == OomPolicy::Strict {
            let footprint = config
                .total_footprint_bytes()
                .saturating_add(config.faults.peak_spike_bytes());
            if config.device.memory.would_oom(footprint) {
                return Err(SimError::OutOfMemory {
                    required_bytes: footprint,
                    usable_bytes: config.device.memory.usable_bytes(),
                });
            }
        }
        Ok(Simulation { config })
    }

    /// The configuration the simulation will run.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns its trace.
    pub fn run(self) -> RunTrace {
        Runner::new(self.config).run()
    }
}

/// Builds a [`Ctx`] over the runner's shared state with disjoint field
/// borrows, so the components being driven can be borrowed alongside it.
macro_rules! ctx {
    ($self:ident) => {
        Ctx {
            config: &$self.config,
            queue: &mut $self.queue,
            rng: &mut $self.rng,
            procs: &mut $self.procs,
            alive: &mut $self.alive,
            killed_at: &mut $self.killed_at,
            n_procs: $self.n_procs,
            warmup_end: $self.warmup_end,
        }
    };
}

/// The event loop: owns the `jetsim-des` queue and the shared state,
/// routes each typed event to the component that consumes it, and
/// aggregates the final [`RunTrace`]. All subsystem behavior lives in
/// the components themselves.
struct Runner {
    config: SimConfig,
    rng: SimRng,
    queue: CalendarQueue<Event>,
    procs: Vec<Proc>,
    n_procs: u32,
    warmup_end: SimTime,
    sim_end: SimTime,
    /// Which processes are still running (`false` once the OOM killer
    /// fires under [`OomPolicy::KillLargest`]).
    alive: Vec<bool>,
    /// When each process was killed, if it was.
    killed_at: Vec<Option<SimTime>>,
    /// Events processed by the DES loop (for the sweep benchmarks'
    /// events/sec figure).
    events_processed: u64,
    /// Whether the event-budget watchdog aborted the run.
    budget_exceeded: bool,
    // --- components -----------------------------------------------------
    sched: CpuSched,
    gpu: GpuEngine,
    governor: Governor,
    guard: MemoryGuard,
    sampler: Sampler,
    ingress: Ingress,
}

impl Runner {
    fn new(config: SimConfig) -> Self {
        let rng = SimRng::seed_from(config.seed);
        // Derived with a distinct stream constant so the jitter samples
        // attached to kernel events never share draws with the main
        // dynamics stream.
        let trace_rng = SimRng::seed_from(
            config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x7472_6163_655F_726E, // "trace_rn"
        );
        let top = config.device.gpu.freq.top();
        // Expected per-process EC iterations at the top clock: used to
        // pre-size the per-process EC records and the kernel-event trace
        // so the hot loop never regrows them.
        let total_secs = config.total_time().as_secs_f64();
        let n = config.processes.len().max(1) as f64;
        let est_ecs: Vec<usize> = config
            .processes
            .iter()
            .map(|p| {
                let ideal = p
                    .engine
                    .ideal_ec_time(&config.device.gpu, top)
                    .as_secs_f64()
                    .max(1e-6);
                // The GPU time-multiplexes processes, so each gets ~1/n of
                // its standalone rate; 25% slack absorbs jitter.
                ((total_secs / (ideal * n)) * 1.25).ceil().min(2e6) as usize
            })
            .collect();
        let est_events: usize = if config.record_kernel_events {
            config
                .processes
                .iter()
                .zip(&est_ecs)
                .map(|(p, &ecs)| p.engine.kernel_count().saturating_mul(ecs))
                .sum::<usize>()
                .min(8 << 20)
        } else {
            0
        };
        let mut serve_group = vec![None; config.processes.len()];
        if let Some(plan) = &config.serve {
            for (g, sg) in plan.groups.iter().enumerate() {
                for &pid in &sg.members {
                    serve_group[pid] = Some(g);
                }
            }
        }
        let procs = config
            .processes
            .iter()
            .zip(&est_ecs)
            .zip(&serve_group)
            .map(|((p, &ecs), &group)| Proc {
                name: p.name.clone(),
                engine: Arc::clone(&p.engine),
                next_launch: 0,
                ec_seq: 0,
                ec_start: SimTime::ZERO,
                enqueue_done_at: SimTime::ZERO,
                cur_launch: SimDuration::ZERO,
                cur_blocking: SimDuration::ZERO,
                cur_gpu: SimDuration::ZERO,
                cache_cold: false,
                arrivals: p.arrivals,
                next_arrival: SimTime::ZERO,
                cur_queue_delay: SimDuration::ZERO,
                serve_group: group,
                cpu: RqThread::new(),
                ready: VecDeque::new(),
                ecs: EcColumns::with_capacity(ecs),
            })
            .collect::<Vec<_>>();
        // Expected event density for the calendar geometry: every kernel
        // costs a GpuDone plus a couple of sched events per EC, so the
        // mean inter-event gap is roughly total_time / total events. The
        // estimate only tunes bucket width/count — pop order (and thus
        // every trace byte) is geometry-independent.
        let est_total_events: f64 = config
            .processes
            .iter()
            .zip(&est_ecs)
            .map(|(p, &ecs)| (2 * p.engine.kernel_count() + 4) as f64 * ecs as f64)
            .sum::<f64>()
            .max(1.0);
        let expected_gap = SimDuration::from_secs_f64(total_secs.max(1e-9) / est_total_events);
        let n_procs = procs.len() as u32;
        let warmup_end = SimTime::ZERO + config.warmup;
        let sim_end = SimTime::ZERO + config.total_time();
        let ambient_c = config.device.thermal.ambient_c;
        // The pending-event population is tiny (a couple of events per
        // process plus the periodic ticks); the expected gap sizes the
        // bucket width so consecutive events land in distinct days.
        let queue = CalendarQueue::with_tuned(expected_gap, 4 * procs.len() + 16);
        let guard = MemoryGuard::new(&config);
        let ingress = Ingress::new(&config);
        let proc_count = procs.len();
        Runner {
            rng,
            queue,
            n_procs,
            warmup_end,
            sim_end,
            alive: vec![true; proc_count],
            killed_at: vec![None; proc_count],
            events_processed: 0,
            budget_exceeded: false,
            sched: CpuSched::new(),
            gpu: GpuEngine::new(&config, top, trace_rng, est_events),
            governor: Governor::new(ambient_c),
            guard,
            sampler: Sampler::new(),
            ingress,
            procs,
            config,
        }
    }

    fn run(mut self) -> RunTrace {
        // Resolve a start-of-run overcommit first: under
        // `OomPolicy::KillLargest` the OOM killer culls the deployment
        // until the survivors fit (the §6.2.1 "reboot" as an outcome).
        self.guard.enforce_memory(
            SimTime::ZERO,
            &mut ctx!(self),
            &mut self.sched,
            &mut self.gpu,
            &mut self.ingress,
        );
        // Schedule the fault timeline (no-op for an empty plan, so
        // fault-free runs stay byte-identical to the pre-fault loop).
        self.guard.schedule_timeline(&mut self.queue, self.sim_end);
        // Start every surviving closed-loop process's first EC, the
        // governor and the sampler. Server processes idle until the
        // ingress component hands them a batch.
        for pid in 0..self.procs.len() {
            if self.alive[pid] && !self.ingress.serves(pid) {
                self.sched
                    .begin_next_ec(pid, SimTime::ZERO, &mut ctx!(self), &mut self.gpu);
            }
        }
        self.ingress.start(&mut ctx!(self));
        let dvfs_interval = self.config.device.dvfs.interval;
        self.queue.schedule_batch([
            (
                SimTime::ZERO + dvfs_interval,
                Event::Governor(GovernorEvent::Tick),
            ),
            (
                SimTime::ZERO + self.config.sample_period,
                Event::Sampler(SamplerEvent::Tick),
            ),
        ]);

        // Monomorphise the drive loop on whether a budget watchdog is
        // armed: the common (unbudgeted) loop carries no per-event
        // compare against the budget at all.
        match self.config.event_budget {
            Some(budget) => self.drive::<true>(budget),
            None => self.drive::<false>(u64::MAX),
        }
        self.finalize()
    }

    /// The hot loop: pop, route, repeat. `BUDGETED` folds the watchdog
    /// check away when no [`SimConfig::event_budget`] is set.
    #[inline]
    fn drive<const BUDGETED: bool>(&mut self, budget: u64) {
        while let Some((now, event)) = self.queue.pop() {
            if now > self.sim_end {
                break;
            }
            if BUDGETED && self.events_processed >= budget {
                // Watchdog: a runaway cell (livelocked queue, absurd
                // grid point) aborts instead of spinning forever; the
                // trace reports what ran and flags the abort.
                self.budget_exceeded = true;
                break;
            }
            self.events_processed += 1;
            self.dispatch(event, now);
        }
    }

    /// Routes one event to its component. The [`Ctx`] is built once per
    /// event from field borrows disjoint to every component, so each arm
    /// borrows its peer components alongside it without re-borrowing.
    #[inline]
    fn dispatch(&mut self, event: Event, now: SimTime) {
        let mut ctx = ctx!(self);
        match event {
            Event::Sched(ev) => self.sched.handle(ev, now, &mut ctx, &mut self.gpu),
            Event::Gpu(ev) => self.gpu.handle(ev, now, &mut ctx, &mut self.sched),
            Event::Governor(ev) => self.governor.handle(ev, now, &mut ctx, &mut self.gpu),
            Event::Memory(ev) => self.guard.handle(
                ev,
                now,
                &mut ctx,
                GuardDeps {
                    sched: &mut self.sched,
                    gpu: &mut self.gpu,
                    governor: &mut self.governor,
                    ingress: &mut self.ingress,
                },
            ),
            Event::Sampler(ev) => self.sampler.handle(
                ev,
                now,
                &mut ctx,
                SamplerDeps {
                    gpu: &mut self.gpu,
                    governor: &self.governor,
                },
            ),
            Event::Ingress(ev) => self.ingress.handle(
                ev,
                now,
                &mut ctx,
                IngressDeps {
                    sched: &mut self.sched,
                    gpu: &mut self.gpu,
                    guard: &mut self.guard,
                },
            ),
        }
    }

    fn finalize(mut self) -> RunTrace {
        let measure_secs = self.config.measure.as_secs_f64();
        let mut processes = Vec::with_capacity(self.procs.len());
        let mut ec_records = Vec::with_capacity(self.procs.len());
        for (pid, proc) in self.procs.iter_mut().enumerate() {
            let measured: Vec<EcRecord> = proc
                .ecs
                .iter()
                .filter(|r| r.end > self.warmup_end)
                .collect();
            let completed = measured.len() as u64;
            let images = completed * u64::from(proc.engine.batch());
            let mean = |f: fn(&EcRecord) -> SimDuration| -> SimDuration {
                if completed == 0 {
                    SimDuration::ZERO
                } else {
                    measured.iter().map(f).sum::<SimDuration>() / completed
                }
            };
            let mut durations: Vec<SimDuration> = measured.iter().map(|r| r.duration()).collect();
            durations.sort_unstable();
            let percentile = |q: f64| -> SimDuration {
                if durations.is_empty() {
                    SimDuration::ZERO
                } else {
                    durations[((durations.len() - 1) as f64 * q).round() as usize]
                }
            };
            processes.push(ProcessStats {
                name: proc.name.clone(),
                engine_name: proc.engine.name().to_string(),
                batch: proc.engine.batch(),
                completed_ecs: completed,
                images,
                throughput: if measure_secs == 0.0 {
                    0.0
                } else {
                    images as f64 / measure_secs
                },
                mean_ec_time: mean(|r| r.duration()),
                p50_ec_time: percentile(0.5),
                p95_ec_time: percentile(0.95),
                p99_ec_time: percentile(0.99),
                mean_launch_time: mean(|r| r.launch_time),
                mean_blocking_time: mean(|r| r.blocking_time),
                mean_sync_time: mean(|r| r.sync_time),
                mean_gpu_time: mean(|r| r.gpu_time),
                mean_queue_delay: mean(|r| r.queue_delay),
                killed_at: self.killed_at[pid],
            });
            ec_records.push(measured);
        }
        let gpu_memory_bytes = self.config.gpu_memory_bytes();
        // Intern one name table per distinct engine: processes sharing an
        // engine share one `Arc`, so an 8-process sweep cell clones each
        // kernel name once instead of eight times.
        let mut interned: Vec<(Arc<Engine>, Arc<Vec<String>>)> = Vec::new();
        let kernel_names: Vec<Arc<Vec<String>>> = self
            .procs
            .iter()
            .map(|p| {
                if let Some((_, names)) = interned.iter().find(|(e, _)| Arc::ptr_eq(e, &p.engine)) {
                    Arc::clone(names)
                } else {
                    let names: Arc<Vec<String>> =
                        Arc::new(p.engine.kernels().iter().map(|k| k.name.clone()).collect());
                    interned.push((Arc::clone(&p.engine), Arc::clone(&names)));
                    names
                }
            })
            .collect();
        RunTrace {
            device_name: self.config.device.name.clone(),
            measured: self.config.measure,
            processes,
            kernel_names,
            ec_records,
            kernel_events: std::mem::take(&mut self.gpu.kernel_events).into_vec(),
            preemptions: std::mem::take(&mut self.gpu.preemptions).into_vec(),
            power_samples: std::mem::take(&mut self.sampler.power_samples),
            fault_events: std::mem::take(&mut self.guard.fault_events).into_vec(),
            requests: std::mem::take(&mut self.ingress.requests).into_vec(),
            serve_events: std::mem::take(&mut self.ingress.serve_events).into_vec(),
            serve_group_labels: self
                .config
                .serve
                .as_ref()
                .map(|plan| plan.groups.iter().map(|g| g.label.clone()).collect())
                .unwrap_or_default(),
            budget_exceeded: self.budget_exceeded,
            sim_events: self.events_processed,
            gpu_busy: self.gpu.gpu_busy_measured,
            gpu_memory_bytes,
            gpu_memory_percent: self.config.device.memory.gpu_percent(gpu_memory_bytes),
            final_freq_mhz: self.config.device.gpu.freq.mhz(self.gpu.freq_step),
            top_freq_mhz: self.config.device.gpu.freq.max_mhz(),
            mem_bandwidth_bytes_per_sec: self.config.device.gpu.bytes_per_sec(),
        }
    }
}
