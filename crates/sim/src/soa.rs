//! Columnar (structure-of-arrays) trace buffers for the DES hot loop.
//!
//! Trace recording happens millions of times per run — once per kernel,
//! once per EC, once per request-lifecycle step. Pushing whole AoS
//! structs (`Vec<KernelEvent>` entries are 96 bytes, `EcRecord` 56)
//! moves every field through the store buffer on each append and drags
//! cold fields (jitter samples, drop records) through cache lines the
//! hot loop never reads back. The columns here keep each append to a
//! handful of word-sized stores on independently growing vectors, and
//! defer struct materialisation to `finalize`, where the public
//! [`crate::RunTrace`] shape (plain `Vec<struct>`) is rebuilt exactly
//! once per run.
//!
//! Every column type has an `into_vec` compatibility view producing the
//! same AoS vector the pre-SoA code built, so `finalize`, the chrome
//! tracer and the golden-parity hashes are byte-identical.

use jetsim_des::{SimDuration, SimTime};
use jetsim_dnn::Precision;

use crate::faults::{FaultEvent, FaultKind};
use crate::serving::{DropRecord, RequestRecord, ServeEvent, ServeEventKind};
use crate::trace::{EcRecord, KernelEvent, KernelPreempted};

/// Columnar [`KernelEvent`] storage — the highest-volume trace stream
/// (one push per GPU kernel).
#[derive(Debug, Default)]
pub(crate) struct KernelEventColumns {
    pid: Vec<u32>,
    ec_seq: Vec<u64>,
    kernel_index: Vec<u32>,
    start: Vec<SimTime>,
    end: Vec<SimTime>,
    precision: Vec<Precision>,
    sm_active: Vec<f64>,
    issue_slot: Vec<f64>,
    tc_activity: Vec<f64>,
    bytes: Vec<u64>,
}

impl KernelEventColumns {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        KernelEventColumns {
            pid: Vec::with_capacity(capacity),
            ec_seq: Vec::with_capacity(capacity),
            kernel_index: Vec::with_capacity(capacity),
            start: Vec::with_capacity(capacity),
            end: Vec::with_capacity(capacity),
            precision: Vec::with_capacity(capacity),
            sm_active: Vec::with_capacity(capacity),
            issue_slot: Vec::with_capacity(capacity),
            tc_activity: Vec::with_capacity(capacity),
            bytes: Vec::with_capacity(capacity),
        }
    }

    /// Records one kernel execution.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub(crate) fn push(
        &mut self,
        pid: usize,
        ec_seq: u64,
        kernel_index: usize,
        start: SimTime,
        end: SimTime,
        precision: Precision,
        sm_active: f64,
        issue_slot: f64,
        tc_activity: f64,
        bytes: u64,
    ) {
        self.pid.push(pid as u32);
        self.ec_seq.push(ec_seq);
        self.kernel_index.push(kernel_index as u32);
        self.start.push(start);
        self.end.push(end);
        self.precision.push(precision);
        self.sm_active.push(sm_active);
        self.issue_slot.push(issue_slot);
        self.tc_activity.push(tc_activity);
        self.bytes.push(bytes);
    }

    /// Materialises the AoS view consumed by [`crate::RunTrace`].
    pub(crate) fn into_vec(self) -> Vec<KernelEvent> {
        let mut out = Vec::with_capacity(self.pid.len());
        for i in 0..self.pid.len() {
            out.push(KernelEvent {
                pid: self.pid[i] as usize,
                ec_seq: self.ec_seq[i],
                kernel_index: self.kernel_index[i] as usize,
                start: self.start[i],
                end: self.end[i],
                precision: self.precision[i],
                sm_active: self.sm_active[i],
                issue_slot: self.issue_slot[i],
                tc_activity: self.tc_activity[i],
                bytes: self.bytes[i],
            });
        }
        out
    }
}

/// Columnar [`EcRecord`] storage: one column per timing component, one
/// push per completed execution context.
#[derive(Debug, Default)]
pub(crate) struct EcColumns {
    start: Vec<SimTime>,
    end: Vec<SimTime>,
    launch_time: Vec<SimDuration>,
    blocking_time: Vec<SimDuration>,
    sync_time: Vec<SimDuration>,
    gpu_time: Vec<SimDuration>,
    queue_delay: Vec<SimDuration>,
}

impl EcColumns {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        EcColumns {
            start: Vec::with_capacity(capacity),
            end: Vec::with_capacity(capacity),
            launch_time: Vec::with_capacity(capacity),
            blocking_time: Vec::with_capacity(capacity),
            sync_time: Vec::with_capacity(capacity),
            gpu_time: Vec::with_capacity(capacity),
            queue_delay: Vec::with_capacity(capacity),
        }
    }

    /// Scatters one record across the columns.
    #[inline]
    pub(crate) fn push(&mut self, r: EcRecord) {
        self.start.push(r.start);
        self.end.push(r.end);
        self.launch_time.push(r.launch_time);
        self.blocking_time.push(r.blocking_time);
        self.sync_time.push(r.sync_time);
        self.gpu_time.push(r.gpu_time);
        self.queue_delay.push(r.queue_delay);
    }

    /// Gathers records back, in push order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = EcRecord> + '_ {
        (0..self.start.len()).map(move |i| EcRecord {
            start: self.start[i],
            end: self.end[i],
            launch_time: self.launch_time[i],
            blocking_time: self.blocking_time[i],
            sync_time: self.sync_time[i],
            gpu_time: self.gpu_time[i],
            queue_delay: self.queue_delay[i],
        })
    }
}

/// Columnar [`FaultEvent`] storage (rare events, but the `String` in
/// [`FaultKind::ProcessKilled`] made the AoS struct non-`Copy`, which
/// poisoned the hot-path push with clone machinery).
#[derive(Debug, Default)]
pub(crate) struct FaultColumns {
    time: Vec<SimTime>,
    kind: Vec<FaultKind>,
}

impl FaultColumns {
    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, kind: FaultKind) {
        self.time.push(time);
        self.kind.push(kind);
    }

    pub(crate) fn into_vec(self) -> Vec<FaultEvent> {
        self.time
            .into_iter()
            .zip(self.kind)
            .map(|(time, kind)| FaultEvent { time, kind })
            .collect()
    }
}

/// Columnar [`KernelPreempted`] storage (one push per cancelled
/// kernel; only preemptive policies ever append).
#[derive(Debug, Default)]
pub(crate) struct PreemptionColumns {
    pid: Vec<u32>,
    ec_seq: Vec<u64>,
    kernel_index: Vec<u32>,
    start: Vec<SimTime>,
    preempted_at: Vec<SimTime>,
    by_pid: Vec<u32>,
}

impl PreemptionColumns {
    /// Records one cancelled kernel.
    #[inline]
    pub(crate) fn push(
        &mut self,
        pid: usize,
        ec_seq: u64,
        kernel_index: usize,
        start: SimTime,
        preempted_at: SimTime,
        by_pid: usize,
    ) {
        self.pid.push(pid as u32);
        self.ec_seq.push(ec_seq);
        self.kernel_index.push(kernel_index as u32);
        self.start.push(start);
        self.preempted_at.push(preempted_at);
        self.by_pid.push(by_pid as u32);
    }

    /// Materialises the AoS view consumed by [`crate::RunTrace`].
    pub(crate) fn into_vec(self) -> Vec<KernelPreempted> {
        let mut out = Vec::with_capacity(self.pid.len());
        for i in 0..self.pid.len() {
            out.push(KernelPreempted {
                pid: self.pid[i] as usize,
                ec_seq: self.ec_seq[i],
                kernel_index: self.kernel_index[i] as usize,
                start: self.start[i],
                preempted_at: self.preempted_at[i],
                by_pid: self.by_pid[i] as usize,
            });
        }
        out
    }
}

/// Columnar [`ServeEvent`] storage (one push per batch formation or
/// degradation flip).
#[derive(Debug, Default)]
pub(crate) struct ServeEventColumns {
    time: Vec<SimTime>,
    group: Vec<u32>,
    kind: Vec<ServeEventKind>,
}

impl ServeEventColumns {
    #[inline]
    pub(crate) fn push(&mut self, time: SimTime, group: usize, kind: ServeEventKind) {
        self.time.push(time);
        self.group.push(group as u32);
        self.kind.push(kind);
    }

    pub(crate) fn into_vec(self) -> Vec<ServeEvent> {
        self.time
            .into_iter()
            .zip(self.group)
            .zip(self.kind)
            .map(|((time, group), kind)| ServeEvent {
                time,
                group: group as usize,
                kind,
            })
            .collect()
    }
}

/// Columnar [`RequestRecord`] storage. Requests mutate in place as they
/// move through their lifecycle (arrive → dispatch → complete, or
/// drop), so this exposes indexed setters instead of whole-struct
/// writes: each lifecycle step touches only the columns it changes.
#[derive(Debug, Default)]
pub(crate) struct RequestColumns {
    group: Vec<u32>,
    seq: Vec<u64>,
    arrival: Vec<SimTime>,
    dispatched: Vec<Option<SimTime>>,
    completed: Vec<Option<SimTime>>,
    dropped: Vec<Option<DropRecord>>,
    pid: Vec<Option<u32>>,
    batch_size: Vec<u32>,
    degraded: Vec<bool>,
    attempt: Vec<u32>,
    retry_of: Vec<Option<u32>>,
    hedge_of: Vec<Option<u32>>,
}

impl RequestColumns {
    /// Appends a freshly arrived request and returns its index.
    #[inline]
    pub(crate) fn push_arrival(&mut self, group: usize, seq: u64, arrival: SimTime) -> usize {
        let ri = self.group.len();
        self.group.push(group as u32);
        self.seq.push(seq);
        self.arrival.push(arrival);
        self.dispatched.push(None);
        self.completed.push(None);
        self.dropped.push(None);
        self.pid.push(None);
        self.batch_size.push(0);
        self.degraded.push(false);
        self.attempt.push(0);
        self.retry_of.push(None);
        self.hedge_of.push(None);
        ri
    }

    #[inline]
    pub(crate) fn arrival(&self, ri: usize) -> SimTime {
        self.arrival[ri]
    }

    #[inline]
    pub(crate) fn group(&self, ri: usize) -> usize {
        self.group[ri] as usize
    }

    #[inline]
    pub(crate) fn attempt(&self, ri: usize) -> u32 {
        self.attempt[ri]
    }

    /// `true` while the request is still waiting in its admission queue.
    #[inline]
    pub(crate) fn is_queued(&self, ri: usize) -> bool {
        self.dispatched[ri].is_none() && self.dropped[ri].is_none() && self.completed[ri].is_none()
    }

    /// `true` while the request is dispatched but not yet terminal.
    #[inline]
    pub(crate) fn is_in_flight(&self, ri: usize) -> bool {
        self.dispatched[ri].is_some() && self.dropped[ri].is_none() && self.completed[ri].is_none()
    }

    /// Marks `ri` as attempt `attempt` retrying the earlier record
    /// `parent`.
    #[inline]
    pub(crate) fn mark_retry(&mut self, ri: usize, attempt: u32, parent: usize) {
        self.attempt[ri] = attempt;
        self.retry_of[ri] = Some(parent as u32);
    }

    /// Marks `ri` as the hedge duplicate of the in-flight `primary`.
    #[inline]
    pub(crate) fn mark_hedge(&mut self, ri: usize, primary: usize) {
        self.hedge_of[ri] = Some(primary as u32);
    }

    /// `true` when `ri` is a hedge duplicate.
    #[inline]
    pub(crate) fn is_hedge(&self, ri: usize) -> bool {
        self.hedge_of[ri].is_some()
    }

    #[inline]
    pub(crate) fn mark_dropped(&mut self, ri: usize, record: DropRecord) {
        self.dropped[ri] = Some(record);
    }

    #[inline]
    pub(crate) fn mark_completed(&mut self, ri: usize, at: SimTime) {
        self.completed[ri] = Some(at);
    }

    /// Records a batch dispatch for one member request.
    #[inline]
    pub(crate) fn mark_dispatched(
        &mut self,
        ri: usize,
        at: SimTime,
        pid: usize,
        batch_size: u32,
        degraded: bool,
    ) {
        self.dispatched[ri] = Some(at);
        self.pid[ri] = Some(pid as u32);
        self.batch_size[ri] = batch_size;
        self.degraded[ri] = degraded;
    }

    /// Materialises the AoS view consumed by [`crate::RunTrace`].
    pub(crate) fn into_vec(self) -> Vec<RequestRecord> {
        let mut out = Vec::with_capacity(self.group.len());
        for i in 0..self.group.len() {
            out.push(RequestRecord {
                group: self.group[i] as usize,
                seq: self.seq[i],
                arrival: self.arrival[i],
                dispatched: self.dispatched[i],
                completed: self.completed[i],
                dropped: self.dropped[i],
                pid: self.pid[i].map(|p| p as usize),
                batch_size: self.batch_size[i],
                degraded: self.degraded[i],
                attempt: self.attempt[i],
                retry_of: self.retry_of[i].map(|p| p as usize),
                hedge_of: self.hedge_of[i].map(|p| p as usize),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::DropKind;

    #[test]
    fn kernel_columns_round_trip() {
        let mut cols = KernelEventColumns::with_capacity(2);
        cols.push(
            3,
            7,
            1,
            SimTime::from_nanos(10),
            SimTime::from_nanos(30),
            Precision::Int8,
            0.9,
            0.3,
            0.5,
            4096,
        );
        let v = cols.into_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pid, 3);
        assert_eq!(v[0].ec_seq, 7);
        assert_eq!(v[0].kernel_index, 1);
        assert_eq!(v[0].duration(), SimDuration::from_nanos(20));
        assert_eq!(v[0].bytes, 4096);
    }

    #[test]
    fn ec_columns_round_trip_in_push_order() {
        let mut cols = EcColumns::with_capacity(4);
        let rec = |n: u64| EcRecord {
            start: SimTime::from_nanos(n),
            end: SimTime::from_nanos(n + 5),
            launch_time: SimDuration::from_nanos(1),
            blocking_time: SimDuration::from_nanos(2),
            sync_time: SimDuration::from_nanos(3),
            gpu_time: SimDuration::from_nanos(4),
            queue_delay: SimDuration::ZERO,
        };
        cols.push(rec(100));
        cols.push(rec(50));
        let back: Vec<EcRecord> = cols.iter().collect();
        assert_eq!(back, vec![rec(100), rec(50)], "push order preserved");
    }

    #[test]
    fn request_columns_lifecycle() {
        let mut cols = RequestColumns::default();
        let a = cols.push_arrival(0, 0, SimTime::from_nanos(5));
        let b = cols.push_arrival(1, 1, SimTime::from_nanos(6));
        assert_eq!((a, b), (0, 1));
        assert_eq!(cols.arrival(b), SimTime::from_nanos(6));
        cols.mark_dispatched(a, SimTime::from_nanos(9), 2, 4, true);
        cols.mark_completed(a, SimTime::from_nanos(20));
        cols.mark_dropped(
            b,
            DropRecord {
                at: SimTime::from_nanos(7),
                kind: DropKind::Shed,
            },
        );
        let v = cols.into_vec();
        assert_eq!(v[0].pid, Some(2));
        assert_eq!(v[0].batch_size, 4);
        assert!(v[0].degraded);
        assert!(v[0].is_root());
        assert_eq!(v[0].latency(), Some(SimDuration::from_nanos(15)));
        assert_eq!(
            v[1].dropped.as_ref().map(|d| d.at),
            Some(SimTime::from_nanos(7))
        );
        assert_eq!(v[1].pid, None);
    }

    #[test]
    fn request_columns_track_retry_and_hedge_links() {
        let mut cols = RequestColumns::default();
        let root = cols.push_arrival(0, 0, SimTime::from_nanos(1));
        let retry = cols.push_arrival(0, 1, SimTime::from_nanos(10));
        cols.mark_retry(retry, 1, root);
        let hedge = cols.push_arrival(0, 2, SimTime::from_nanos(20));
        cols.mark_hedge(hedge, retry);
        assert_eq!(cols.group(hedge), 0);
        assert_eq!(cols.attempt(retry), 1);
        assert!(cols.is_queued(root));
        cols.mark_dispatched(root, SimTime::from_nanos(5), 0, 1, false);
        assert!(!cols.is_queued(root));
        assert!(cols.is_in_flight(root));
        cols.mark_completed(root, SimTime::from_nanos(9));
        assert!(!cols.is_in_flight(root));
        let v = cols.into_vec();
        assert_eq!(v[retry].retry_of, Some(root));
        assert_eq!(v[retry].attempt, 1);
        assert_eq!(v[hedge].hedge_of, Some(retry));
        assert!(v[root].is_root() && !v[retry].is_root() && !v[hedge].is_root());
    }

    #[test]
    fn preemption_columns_round_trip() {
        let mut cols = PreemptionColumns::default();
        cols.push(
            2,
            11,
            4,
            SimTime::from_nanos(100),
            SimTime::from_nanos(160),
            0,
        );
        let v = cols.into_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pid, 2);
        assert_eq!(v[0].ec_seq, 11);
        assert_eq!(v[0].kernel_index, 4);
        assert_eq!(v[0].by_pid, 0);
        assert_eq!(v[0].wasted(), SimDuration::from_nanos(60));
    }

    #[test]
    fn serve_and_fault_columns_round_trip() {
        let mut serve = ServeEventColumns::default();
        serve.push(
            SimTime::from_nanos(1),
            3,
            ServeEventKind::DegradeEnter { queue_depth: 9 },
        );
        let v = serve.into_vec();
        assert_eq!(v[0].group, 3);
        assert_eq!(v[0].kind, ServeEventKind::DegradeEnter { queue_depth: 9 });

        let mut faults = FaultColumns::default();
        faults.push(
            SimTime::from_nanos(2),
            FaultKind::MemorySpikeStart { bytes: 64 },
        );
        let v = faults.into_vec();
        assert_eq!(v[0].time, SimTime::from_nanos(2));
        assert_eq!(v[0].kind, FaultKind::MemorySpikeStart { bytes: 64 });
    }
}
