//! Simulation errors.

use std::fmt;

/// Errors surfaced when configuring or starting a simulation.
///
/// Marked `#[non_exhaustive]`: future fault-model variants can be added
/// without breaking downstream matches, so match with a `_` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration contains no processes.
    NoProcesses,
    /// The combined process footprint exceeds usable unified memory — on
    /// a real board this deployment thrashes and reboots the device
    /// (paper §6.2.1, 4 × FCN_ResNet50 on the Jetson Nano).
    OutOfMemory {
        /// Bytes the deployment needs.
        required_bytes: u64,
        /// Bytes the board can actually provide.
        usable_bytes: u64,
    },
    /// The serving plan references processes that don't exist, claims a
    /// process for two groups, or contains an empty group.
    InvalidServePlan {
        /// Which rule the plan broke.
        reason: String,
    },
    /// A configuration parameter is out of its valid range (e.g. an MPS
    /// overlap efficiency outside `[0, 0.6]`, or a non-positive SM
    /// share). Raised at build time so bad values fail loudly instead of
    /// being silently clamped in the dispatch hot path.
    InvalidConfig {
        /// Which parameter is invalid and why.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoProcesses => f.write_str("simulation needs at least one process"),
            SimError::OutOfMemory {
                required_bytes,
                usable_bytes,
            } => write!(
                f,
                "deployment needs {:.0} MiB but only {:.0} MiB of unified memory is usable \
                 (the board would thrash and reboot)",
                *required_bytes as f64 / (1024.0 * 1024.0),
                *usable_bytes as f64 / (1024.0 * 1024.0),
            ),
            SimError::InvalidServePlan { reason } => {
                write!(f, "invalid serve plan: {reason}")
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_message_carries_sizes() {
        let e = SimError::OutOfMemory {
            required_bytes: 3 * 1024 * 1024 * 1024,
            usable_bytes: 2 * 1024 * 1024 * 1024,
        };
        let text = e.to_string();
        assert!(text.contains("3072") && text.contains("2048"), "{text}");
    }

    #[test]
    fn no_processes_message() {
        assert!(SimError::NoProcesses.to_string().contains("at least one"));
    }
}
