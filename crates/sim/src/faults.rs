//! Deterministic fault injection: the paper's failure modes as
//! first-class, schedulable events.
//!
//! The paper's sharpest observations are *failure behaviors* — the 4 ×
//! FCN_ResNet50 over-deployment that thrashes and reboots the Jetson Nano
//! (§6.2.1), DVFS throttling under the power budget (§6.1.2). A
//! [`FaultPlan`] turns those from pre-flight errors into simulated
//! outcomes: background memory-pressure spikes against unified memory,
//! throttle locks that pin the DVFS ladder low for a window, and
//! OOM-killer semantics that kill the largest process instead of refusing
//! to run.
//!
//! Every fault is scheduled at plan-construction time, so injection is
//! fully deterministic: the same seed and plan reproduce the same
//! [`crate::RunTrace`] bit for bit, and an empty plan leaves a run
//! byte-identical to one without any fault machinery at all.

use jetsim_des::{SimDuration, SimRng, SimTime};

/// What the simulator does when the live footprint exceeds usable
/// unified memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum OomPolicy {
    /// Refuse to simulate ([`crate::SimError::OutOfMemory`]): the
    /// paper-faithful behavior, since the real board thrashes and
    /// reboots (§6.2.1). The default.
    #[default]
    Strict,
    /// Linux OOM-killer semantics: when the footprint crosses
    /// `usable_bytes()` (at start or mid-run), kill the process whose
    /// death frees the most memory, record a
    /// [`FaultKind::ProcessKilled`] event, and keep simulating with the
    /// survivors.
    KillLargest,
}

/// A transient background allocation against unified memory (another
/// tenant, a camera pipeline, a burst of page-cache pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySpike {
    /// When the allocation appears.
    pub at: SimTime,
    /// How long it stays resident.
    pub duration: SimDuration,
    /// Its size.
    pub bytes: u64,
}

impl MemorySpike {
    /// When the allocation is released.
    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }
}

/// A window during which the DVFS governor is pinned to a low frequency
/// step — a thermal trip or an externally imposed power-limit lock
/// (`nvpmodel` switching budgets under the simulator's feet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThrottleLock {
    /// When the lock engages.
    pub at: SimTime,
    /// How long the governor stays pinned.
    pub duration: SimDuration,
    /// Frequency-ladder step the clock is pinned to (clamped to the
    /// device's ladder; `0` is the lowest step).
    pub step: usize,
}

impl ThrottleLock {
    /// When the lock releases (the governor resumes on its next tick).
    pub fn end(&self) -> SimTime {
        self.at + self.duration
    }
}

/// The full fault schedule for one simulation run.
///
/// The default plan is empty and [`OomPolicy::Strict`]: simulations
/// behave exactly as if no fault machinery existed.
///
/// # Examples
///
/// ```
/// use jetsim_des::{SimDuration, SimTime};
/// use jetsim_sim::{FaultPlan, OomPolicy};
///
/// let plan = FaultPlan::new()
///     .oom_policy(OomPolicy::KillLargest)
///     .memory_spike(
///         SimTime::from_nanos(500_000_000),
///         SimDuration::from_millis(200),
///         512 << 20,
///     )
///     .throttle_lock(SimTime::from_nanos(100_000_000), SimDuration::from_millis(300), 0);
/// assert!(!plan.is_empty());
/// assert_eq!(plan.peak_spike_bytes(), 512 << 20);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Background memory-pressure spikes.
    pub memory_spikes: Vec<MemorySpike>,
    /// DVFS throttle-lock windows.
    pub throttle_locks: Vec<ThrottleLock>,
    /// What to do when the live footprint exceeds usable memory.
    pub oom: OomPolicy,
}

impl FaultPlan {
    /// An empty plan with [`OomPolicy::Strict`] — fault injection off.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan changes nothing about a run: no scheduled
    /// events and the strict OOM policy.
    pub fn is_empty(&self) -> bool {
        self.memory_spikes.is_empty()
            && self.throttle_locks.is_empty()
            && self.oom == OomPolicy::Strict
    }

    /// Sets the OOM policy.
    pub fn oom_policy(mut self, oom: OomPolicy) -> Self {
        self.oom = oom;
        self
    }

    /// Shorthand for a plan whose only deviation is OOM-killer
    /// semantics (no scheduled fault events).
    pub fn kill_largest_on_oom() -> Self {
        FaultPlan::new().oom_policy(OomPolicy::KillLargest)
    }

    /// Adds one memory-pressure spike.
    pub fn memory_spike(mut self, at: SimTime, duration: SimDuration, bytes: u64) -> Self {
        self.memory_spikes.push(MemorySpike {
            at,
            duration,
            bytes,
        });
        self
    }

    /// Adds one throttle-lock window pinning the clock to `step`.
    pub fn throttle_lock(mut self, at: SimTime, duration: SimDuration, step: usize) -> Self {
        self.throttle_locks
            .push(ThrottleLock { at, duration, step });
        self
    }

    /// Derives a random-but-deterministic plan over `[0, horizon)`:
    /// `spikes` memory spikes of 128–768 MiB lasting 5–20 % of the
    /// horizon, and `locks` throttle locks to the bottom ladder step
    /// lasting 10–25 % of the horizon.
    ///
    /// The RNG is seeded from `seed` alone (independent of the run's
    /// dynamics stream), so the same `(seed, horizon, spikes, locks)`
    /// always yields the same plan, and attaching a seeded plan never
    /// perturbs the run's own random draws.
    pub fn seeded(seed: u64, horizon: SimDuration, spikes: usize, locks: usize) -> Self {
        // Distinct stream constant so a fault plan seeded from the run
        // seed still draws from its own sequence ("faultpln").
        let mut rng = SimRng::seed_from(seed ^ 0x6661_756C_7470_6C6E);
        let horizon_ns = horizon.as_nanos().max(1) - 1;
        let mut plan = FaultPlan::new();
        for _ in 0..spikes {
            let at = SimTime::from_nanos(rng.uniform_u64(0, horizon_ns));
            let frac = rng.uniform(0.05, 0.20);
            let bytes = rng.uniform_u64(128 << 20, 768 << 20);
            plan = plan.memory_spike(at, horizon.mul_f64(frac), bytes);
        }
        for _ in 0..locks {
            let at = SimTime::from_nanos(rng.uniform_u64(0, horizon_ns));
            let frac = rng.uniform(0.10, 0.25);
            plan = plan.throttle_lock(at, horizon.mul_f64(frac), 0);
        }
        plan
    }

    /// The largest number of spike bytes ever resident at once — what a
    /// [`OomPolicy::Strict`] pre-flight check must budget for.
    pub fn peak_spike_bytes(&self) -> u64 {
        // Sweep-line over spike starts (+bytes) and ends (-bytes). Ends
        // sort before starts at equal times: a spike released exactly
        // when another appears never overlaps it.
        let mut edges: Vec<(u64, bool, u64)> = Vec::with_capacity(self.memory_spikes.len() * 2);
        for spike in &self.memory_spikes {
            edges.push((spike.at.as_nanos(), true, spike.bytes));
            edges.push((spike.end().as_nanos(), false, spike.bytes));
        }
        edges.sort_by_key(|&(t, is_start, _)| (t, is_start));
        let mut live = 0u64;
        let mut peak = 0u64;
        for (_, is_start, bytes) in edges {
            if is_start {
                live += bytes;
                peak = peak.max(live);
            } else {
                live = live.saturating_sub(bytes);
            }
        }
        peak
    }
}

/// One injected fault (or its consequence), as recorded in
/// [`crate::RunTrace::fault_events`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: FaultKind,
}

/// What kind of fault event occurred.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A background memory spike appeared.
    MemorySpikeStart {
        /// Spike size.
        bytes: u64,
    },
    /// A background memory spike was released.
    MemorySpikeEnd {
        /// Spike size.
        bytes: u64,
    },
    /// The DVFS governor was pinned low.
    ThrottleLockStart {
        /// Ladder step the clock is pinned to.
        step: usize,
        /// That step's frequency in MHz.
        mhz: u32,
    },
    /// The throttle lock released; the governor resumes on its next
    /// tick.
    ThrottleLockEnd,
    /// The OOM killer terminated a process
    /// ([`OomPolicy::KillLargest`]).
    ProcessKilled {
        /// Index of the killed process.
        pid: usize,
        /// Its configured name.
        name: String,
        /// Unified-memory bytes its death freed.
        freed_bytes: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_strict() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.oom, OomPolicy::Strict);
        assert_eq!(plan.peak_spike_bytes(), 0);
    }

    #[test]
    fn kill_policy_alone_makes_plan_non_empty() {
        assert!(!FaultPlan::kill_largest_on_oom().is_empty());
    }

    #[test]
    fn seeded_plans_reproduce_and_depend_on_seed() {
        let horizon = SimDuration::from_secs(2);
        let a = FaultPlan::seeded(7, horizon, 3, 2);
        let b = FaultPlan::seeded(7, horizon, 3, 2);
        let c = FaultPlan::seeded(8, horizon, 3, 2);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.memory_spikes.len(), 3);
        assert_eq!(a.throttle_locks.len(), 2);
        for spike in &a.memory_spikes {
            assert!(spike.at.as_nanos() < horizon.as_nanos());
            assert!((128 << 20..=768 << 20).contains(&spike.bytes));
        }
    }

    #[test]
    fn peak_counts_only_concurrent_spikes() {
        let s = |at_ms: u64, dur_ms: u64, bytes: u64| MemorySpike {
            at: SimTime::from_nanos(at_ms * 1_000_000),
            duration: SimDuration::from_millis(dur_ms),
            bytes,
        };
        let plan = FaultPlan {
            // [0,10) and [10,20) never overlap; [5,15) overlaps both.
            memory_spikes: vec![s(0, 10, 100), s(10, 10, 200), s(5, 10, 50)],
            throttle_locks: vec![],
            oom: OomPolicy::Strict,
        };
        assert_eq!(plan.peak_spike_bytes(), 250, "200 + 50 at t=10..15");
    }

    #[test]
    fn spike_and_lock_ends_derive_from_duration() {
        let spike = MemorySpike {
            at: SimTime::from_nanos(100),
            duration: SimDuration::from_nanos(50),
            bytes: 1,
        };
        assert_eq!(spike.end(), SimTime::from_nanos(150));
        let lock = ThrottleLock {
            at: SimTime::from_nanos(7),
            duration: SimDuration::from_nanos(3),
            step: 0,
        };
        assert_eq!(lock.end(), SimTime::from_nanos(10));
    }
}
