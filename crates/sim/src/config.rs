//! Simulation configuration: which processes run what, for how long,
//! under which profiler.

use std::sync::Arc;

use jetsim_des::SimDuration;
use jetsim_device::DeviceSpec;
use jetsim_dnn::{ModelGraph, Precision};
use jetsim_trt::{BuildError, Engine, EngineBuilder};

use crate::error::SimError;
use crate::faults::{FaultPlan, OomPolicy};
use crate::serving::ServePlan;

/// How concurrent processes share the GPU.
///
/// Jetson boards lack NVIDIA's Multi-Process Service (paper §2), so they
/// time-multiplex the GPU at kernel granularity — the default here. The
/// [`GpuSharing::SpatialMps`] variant models what an MPS-capable part
/// would recover: no inter-process context switches and partial spatial
/// overlap between small kernels. It exists for the `ablation_mps` bench.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GpuSharing {
    /// Kernel-granularity time multiplexing with context-switch costs
    /// (what Jetson hardware actually does).
    #[default]
    TimeMultiplexed,
    /// MPS-style spatial sharing: context switches vanish and kernels
    /// pack against other processes' work with the given efficiency
    /// (0 = no overlap benefit, 0.3 ≈ published MPS gains on small
    /// kernels).
    SpatialMps {
        /// Fraction of a kernel's time hidden by co-scheduling when other
        /// processes have work queued. Must lie in `[0, 0.6]`;
        /// [`SimConfigBuilder::build`] rejects out-of-range values.
        overlap_efficiency: f64,
    },
}

/// Which scheduling discipline the GPU engine runs.
///
/// The discipline decides *which process's kernel queue* the GPU serves
/// at each dispatch and whether in-flight kernels can be cancelled; the
/// kernel-timing physics is shared by all of them. The default
/// reproduces Jetson's observed behaviour and is pinned byte-identical
/// by the golden-trace parity suite.
///
/// Parse from the CLI grammar with [`str::parse`]:
/// `rr | fifo | priority[:PENALTY_US] | mps[:OVERLAP]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GpuPolicy {
    /// Timeslice-affinity round-robin — the measured Jetson behaviour
    /// and the default.
    #[default]
    TimesliceRR,
    /// Global kernel-arrival order, no timeslice affinity.
    Fifo,
    /// Strict per-process priority levels with preemption: a
    /// higher-priority arrival cancels the in-flight kernel, which is
    /// re-queued and re-run from scratch after the penalty stall.
    Priority {
        /// GPU stall charged before the dispatch that follows a
        /// preemption (context save/discard).
        preempt_penalty: SimDuration,
    },
    /// MPS-style fractional spatial sharing with per-process SM shares
    /// (set via [`SimConfigBuilder::process_sm_share`]); generalises
    /// [`GpuSharing::SpatialMps`].
    FractionalMps {
        /// Peak fraction of a kernel's time hidden by co-scheduling,
        /// scaled by the contending processes' share mass. Must lie in
        /// `[0, 0.6]` like [`GpuSharing::SpatialMps`].
        overlap_efficiency: f64,
    },
}

impl GpuPolicy {
    /// Default preemption penalty for [`GpuPolicy::Priority`]: roughly a
    /// kernel-level context save/discard on an edge GPU.
    pub const DEFAULT_PREEMPT_PENALTY: SimDuration = SimDuration::from_micros(20);

    /// Default overlap efficiency for [`GpuPolicy::FractionalMps`],
    /// matching the published MPS gains used by `GpuSharing::SpatialMps`
    /// ablations.
    pub const DEFAULT_MPS_OVERLAP: f64 = 0.3;

    /// Short stable name for sweep axes and result tables (`rr`,
    /// `fifo`, `priority`, `mps`).
    pub fn name(&self) -> &'static str {
        match self {
            GpuPolicy::TimesliceRR => "rr",
            GpuPolicy::Fifo => "fifo",
            GpuPolicy::Priority { .. } => "priority",
            GpuPolicy::FractionalMps { .. } => "mps",
        }
    }
}

impl std::fmt::Display for GpuPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuPolicy::TimesliceRR => f.write_str("rr"),
            GpuPolicy::Fifo => f.write_str("fifo"),
            GpuPolicy::Priority { preempt_penalty } => {
                write!(f, "priority:{}", preempt_penalty.as_micros_f64())
            }
            GpuPolicy::FractionalMps { overlap_efficiency } => {
                write!(f, "mps:{overlap_efficiency}")
            }
        }
    }
}

impl std::str::FromStr for GpuPolicy {
    type Err = String;

    /// Parses the `--gpu-policy` grammar:
    /// `rr | fifo | priority[:PENALTY_US] | mps[:OVERLAP]` — the
    /// priority penalty is in microseconds, the MPS overlap a fraction
    /// in `[0, 0.6]`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        match (head, arg) {
            ("rr" | "timeslice", None) => Ok(GpuPolicy::TimesliceRR),
            ("fifo", None) => Ok(GpuPolicy::Fifo),
            ("priority", arg) => {
                let micros = match arg {
                    None => return Ok(GpuPolicy::Priority {
                        preempt_penalty: Self::DEFAULT_PREEMPT_PENALTY,
                    }),
                    Some(a) => a.parse::<f64>().map_err(|_| {
                        format!("invalid priority preemption penalty `{a}` (want microseconds, e.g. `priority:20`)")
                    })?,
                };
                if !micros.is_finite() || micros < 0.0 {
                    return Err(format!(
                        "priority preemption penalty must be a non-negative number of \
                         microseconds, got `{micros}`"
                    ));
                }
                Ok(GpuPolicy::Priority {
                    preempt_penalty: SimDuration::from_nanos((micros * 1_000.0).round() as u64),
                })
            }
            ("mps", arg) => {
                let oe = match arg {
                    None => Self::DEFAULT_MPS_OVERLAP,
                    Some(a) => a.parse::<f64>().map_err(|_| {
                        format!("invalid MPS overlap efficiency `{a}` (want a fraction, e.g. `mps:0.3`)")
                    })?,
                };
                if !(0.0..=0.6).contains(&oe) {
                    return Err(format!(
                        "MPS overlap efficiency must lie in [0, 0.6], got `{oe}`"
                    ));
                }
                Ok(GpuPolicy::FractionalMps {
                    overlap_efficiency: oe,
                })
            }
            _ => Err(format!(
                "unknown GPU policy `{s}` (want rr | fifo | priority[:PENALTY_US] | mps[:OVERLAP])"
            )),
        }
    }
}

/// How the host-side CPU contention of §7 is modelled.
///
/// * [`CpuModel::Stochastic`] (default) — per-launch preemption
///   probabilities and wakeup delays calibrated to the paper's measured
///   blocking intervals. Fast and tuned to the publication.
/// * [`CpuModel::RunQueue`] — an explicit quantum scheduler over the
///   heavy cores in which `cudaStreamSynchronize` *spin-waits* (CUDA's
///   default): every inference thread is continuously runnable, so once
///   processes outnumber heavy cores they time-share in quantum slices
///   and the EC blow-up emerges mechanically rather than statistically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CpuModel {
    /// Calibrated stochastic contention (the default).
    #[default]
    Stochastic,
    /// Explicit run-queue scheduling with spin-wait synchronisation.
    RunQueue,
}

/// How intrusive the attached profiler is, mirroring the paper's
/// dual-phase methodology (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfilerMode {
    /// Phase 1: `trtexec` + `jetson-stats` only — negligible intrusion.
    #[default]
    Lightweight,
    /// Phase 2: Nsight-Systems-style kernel tracing. Interposes on every
    /// launch and adds GPU-side instrumentation; the paper reports ~50 %
    /// throughput loss in this mode.
    Nsight,
}

impl ProfilerMode {
    /// Multiplier on CPU-side launch cost under this profiler.
    pub fn launch_overhead_factor(self) -> f64 {
        match self {
            ProfilerMode::Lightweight => 1.0,
            ProfilerMode::Nsight => 2.4,
        }
    }

    /// Multiplier on GPU kernel execution time under this profiler.
    pub fn kernel_overhead_factor(self) -> f64 {
        match self {
            ProfilerMode::Lightweight => 1.0,
            ProfilerMode::Nsight => 1.25,
        }
    }
}

/// How work arrives at one inference process.
///
/// The paper's `trtexec` methodology measures the *saturated* upper
/// bound: a new EC is enqueued the moment the previous one returns. Real
/// edge pipelines are open-loop — a camera delivers frames at a fixed
/// rate — so the simulator also supports periodic and Poisson arrivals,
/// which expose queueing delay instead of peak throughput.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalModel {
    /// Back-to-back ECs (`trtexec`'s pre-enqueued loop): measures the
    /// throughput ceiling.
    #[default]
    Saturated,
    /// One batch arrives every `1/fps` seconds (a fixed-rate camera).
    Periodic {
        /// Batches offered per second.
        fps: f64,
    },
    /// Batches arrive as a Poisson process with the given mean rate
    /// (aggregated event streams).
    Poisson {
        /// Mean batches per second.
        fps: f64,
    },
}

impl ArrivalModel {
    /// Mean offered batches per second, `None` for saturated mode.
    pub fn offered_rate(self) -> Option<f64> {
        match self {
            ArrivalModel::Saturated => None,
            ArrivalModel::Periodic { fps } | ArrivalModel::Poisson { fps } => Some(fps),
        }
    }
}

/// One concurrent inference stream: a named `trtexec`-like instance (or
/// one of its `--streams` contexts) running one engine in a loop.
#[derive(Debug, Clone)]
pub struct ProcessConfig {
    /// Process name (defaults to `p<N>`).
    pub name: String,
    /// The engine this process executes.
    pub engine: Arc<Engine>,
    /// How work arrives.
    pub arrivals: ArrivalModel,
    /// Memory-sharing group: streams of one OS process (`trtexec
    /// --streams`) share the host runtime, CUDA context and engine
    /// weights, paying only per-context I/O and workspace. Defaults to a
    /// unique group per entry (separate processes).
    pub memory_group: usize,
    /// GPU scheduling priority (higher wins). Only
    /// [`GpuPolicy::Priority`] consults it; default 0.
    pub priority: u8,
    /// SM share weight under [`GpuPolicy::FractionalMps`] (relative,
    /// not normalised). Must be positive and finite; default 1.0.
    pub sm_share: f64,
}

/// Full configuration of one simulation run.
///
/// Build via [`SimConfig::builder`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The simulated platform.
    pub device: DeviceSpec,
    /// The concurrent processes.
    pub processes: Vec<ProcessConfig>,
    /// Time excluded from statistics while clocks and caches settle.
    pub warmup: SimDuration,
    /// Measured interval; statistics cover exactly this window.
    pub measure: SimDuration,
    /// RNG seed; identical configs with identical seeds reproduce runs
    /// bit for bit.
    pub seed: u64,
    /// Profiler intrusion model.
    pub profiler: ProfilerMode,
    /// Sampling period for power/utilisation samples.
    pub sample_period: SimDuration,
    /// GPU sharing discipline across processes.
    pub gpu_sharing: GpuSharing,
    /// GPU scheduling policy (dispatch order, preemption, packing).
    pub gpu_policy: GpuPolicy,
    /// CPU contention model.
    pub cpu_model: CpuModel,
    /// Whether to retain per-kernel events (disable for long thermal
    /// soaks where the event list would dominate memory).
    pub record_kernel_events: bool,
    /// Fault-injection schedule (empty and [`OomPolicy::Strict`] by
    /// default, which leaves the run byte-identical to a fault-free
    /// simulator).
    pub faults: FaultPlan,
    /// DES event budget: when set, the run aborts once this many events
    /// have been processed and [`crate::RunTrace::budget_exceeded`] is
    /// raised — a watchdog against runaway cells in supervised sweeps.
    pub event_budget: Option<u64>,
    /// Request-level serving plan: designated processes become servers
    /// fed by open-loop arrivals through admission queues and dynamic
    /// batchers. `None` (the default) keeps the run byte-identical to a
    /// simulator without serving machinery.
    pub serve: Option<ServePlan>,
}

impl SimConfig {
    /// Starts building a configuration for `device`.
    pub fn builder(device: DeviceSpec) -> SimConfigBuilder {
        SimConfigBuilder {
            device,
            processes: Vec::new(),
            warmup: SimDuration::from_millis(500),
            measure: SimDuration::from_secs(3),
            seed: 0x6A65_7473,
            profiler: ProfilerMode::Lightweight,
            sample_period: SimDuration::from_millis(200),
            gpu_sharing: GpuSharing::TimeMultiplexed,
            gpu_policy: GpuPolicy::TimesliceRR,
            cpu_model: CpuModel::Stochastic,
            record_kernel_events: true,
            faults: FaultPlan::default(),
            event_budget: None,
            serve: None,
        }
    }

    /// Total simulated time (warmup + measurement).
    pub fn total_time(&self) -> SimDuration {
        self.warmup + self.measure
    }

    /// Combined unified-memory footprint of all processes (host +
    /// GPU-side allocations). Streams sharing a memory group pay the host
    /// runtime, CUDA context and engine once.
    pub fn total_footprint_bytes(&self) -> u64 {
        self.shared_bytes(self.device.memory.per_process_host_bytes)
            .saturating_add(self.serve_extra_bytes())
    }

    /// Combined GPU-side allocation (what `jetson-stats` reports).
    pub fn gpu_memory_bytes(&self) -> u64 {
        self.shared_bytes(0)
            .saturating_add(self.serve_extra_bytes())
    }

    /// Extra resident bytes for serve groups' degraded fallback engines:
    /// each member keeps both engines loaded so the swap at a batch
    /// boundary costs nothing — which means both count against the
    /// board's unified memory for the whole run.
    fn serve_extra_bytes(&self) -> u64 {
        let Some(plan) = &self.serve else { return 0 };
        plan.groups
            .iter()
            .filter_map(|g| {
                g.degraded_engine.as_ref().map(|e| {
                    g.members.len() as u64 * (e.engine_bytes() + e.io_bytes() + e.workspace_bytes())
                })
            })
            .sum()
    }

    /// Validates the dynamic-model parameters that used to be silently
    /// clamped or ignored at dispatch time: the MPS overlap efficiency
    /// (either sharing knob or policy) must lie in `[0, 0.6]` and every
    /// SM share must be positive and finite. Called from
    /// [`SimConfigBuilder::build`] and re-checked by
    /// [`crate::Simulation::new`] for hand-assembled configs.
    pub(crate) fn validate_dynamics(&self) -> Result<(), SimError> {
        if let GpuSharing::SpatialMps { overlap_efficiency } = self.gpu_sharing {
            if !(0.0..=0.6).contains(&overlap_efficiency) {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "SpatialMps overlap_efficiency must lie in [0, 0.6], got \
                         {overlap_efficiency}"
                    ),
                });
            }
        }
        if let GpuPolicy::FractionalMps { overlap_efficiency } = self.gpu_policy {
            if !(0.0..=0.6).contains(&overlap_efficiency) {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "FractionalMps overlap_efficiency must lie in [0, 0.6], got \
                         {overlap_efficiency}"
                    ),
                });
            }
        }
        for p in &self.processes {
            if !(p.sm_share.is_finite() && p.sm_share > 0.0) {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "process `{}` has sm_share {}, want a positive finite weight",
                        p.name, p.sm_share
                    ),
                });
            }
        }
        Ok(())
    }

    fn shared_bytes(&self, per_group_host: u64) -> u64 {
        use std::collections::HashSet;
        let mut seen: HashSet<usize> = HashSet::new();
        self.processes
            .iter()
            .map(|p| {
                let per_context = p.engine.io_bytes() + p.engine.workspace_bytes();
                if seen.insert(p.memory_group) {
                    per_group_host
                        + self.device.memory.cuda_context_bytes
                        + p.engine.engine_bytes()
                        + per_context
                } else {
                    per_context
                }
            })
            .sum()
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    device: DeviceSpec,
    processes: Vec<ProcessConfig>,
    warmup: SimDuration,
    measure: SimDuration,
    seed: u64,
    profiler: ProfilerMode,
    sample_period: SimDuration,
    gpu_sharing: GpuSharing,
    gpu_policy: GpuPolicy,
    cpu_model: CpuModel,
    record_kernel_events: bool,
    faults: FaultPlan,
    event_budget: Option<u64>,
    serve: Option<ServePlan>,
}

impl SimConfigBuilder {
    /// Adds one process running a pre-built engine in saturated mode.
    pub fn add_engine(mut self, engine: Arc<Engine>) -> Self {
        let group = self.processes.len();
        let name = format!("p{}", self.processes.len());
        self.processes.push(ProcessConfig {
            name,
            engine,
            arrivals: ArrivalModel::Saturated,
            memory_group: group,
            priority: 0,
            sm_share: 1.0,
        });
        self
    }

    /// Adds one process with an explicit name (tenant-labelled
    /// deployments; the default names are `p<N>`). The process runs in
    /// saturated mode with its own memory group, exactly like
    /// [`SimConfigBuilder::add_engine`].
    pub fn add_engine_named(mut self, name: impl Into<String>, engine: Arc<Engine>) -> Self {
        let group = self.processes.len();
        self.processes.push(ProcessConfig {
            name: name.into(),
            engine,
            arrivals: ArrivalModel::Saturated,
            memory_group: group,
            priority: 0,
            sm_share: 1.0,
        });
        self
    }

    /// Adds one process fed by the given arrival model (open-loop camera
    /// pipelines instead of `trtexec` saturation).
    pub fn add_engine_with_arrivals(self, engine: Arc<Engine>, arrivals: ArrivalModel) -> Self {
        let name = format!("p{}", self.processes.len());
        self.add_engine_named_with_arrivals(name, engine, arrivals)
    }

    /// Adds one named process fed by the given arrival model —
    /// tenant-labelled open-loop deployments, e.g. a sweep cell offering
    /// a fixed request rate to each tenant instance.
    pub fn add_engine_named_with_arrivals(
        mut self,
        name: impl Into<String>,
        engine: Arc<Engine>,
        arrivals: ArrivalModel,
    ) -> Self {
        let group = self.processes.len();
        self.processes.push(ProcessConfig {
            name: name.into(),
            engine,
            arrivals,
            memory_group: group,
            priority: 0,
            sm_share: 1.0,
        });
        self
    }

    /// Adds one OS process running `streams` concurrent execution
    /// contexts over a shared engine (`trtexec --streams=N`): the host
    /// runtime, CUDA context and weights are paid once, each stream adds
    /// only its I/O buffers and workspace.
    pub fn add_engine_streams(mut self, engine: &Arc<Engine>, streams: u32) -> Self {
        let group = self.processes.len();
        for stream in 0..streams.max(1) {
            self.processes.push(ProcessConfig {
                name: format!("p{group}s{stream}"),
                engine: Arc::clone(engine),
                arrivals: ArrivalModel::Saturated,
                memory_group: group,
                priority: 0,
                sm_share: 1.0,
            });
        }
        self
    }

    /// Adds `count` identical processes sharing one engine definition
    /// (each still pays its own per-process memory, like separate
    /// `trtexec` instances).
    pub fn add_engines(mut self, engine: &Arc<Engine>, count: u32) -> Self {
        for _ in 0..count {
            self = self.add_engine(Arc::clone(engine));
        }
        self
    }

    /// Builds an engine for `model` on this device and adds one process
    /// running it.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the engine builder.
    pub fn add_model(
        self,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
    ) -> Result<Self, BuildError> {
        let engine = EngineBuilder::new(&self.device)
            .precision(precision)
            .batch(batch)
            .build(model)?;
        Ok(self.add_engine(Arc::new(engine)))
    }

    /// Like [`SimConfigBuilder::add_model`] but adds `count` processes.
    pub fn add_model_processes(
        self,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
        count: u32,
    ) -> Result<Self, BuildError> {
        let engine = Arc::new(
            EngineBuilder::new(&self.device)
                .precision(precision)
                .batch(batch)
                .build(model)?,
        );
        Ok(self.add_engines(&engine, count))
    }

    /// Sets the warmup interval.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the measured interval.
    pub fn measure(mut self, measure: SimDuration) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the profiler intrusion mode.
    pub fn profiler(mut self, profiler: ProfilerMode) -> Self {
        self.profiler = profiler;
        self
    }

    /// Sets the power/utilisation sampling period.
    pub fn sample_period(mut self, period: SimDuration) -> Self {
        self.sample_period = period;
        self
    }

    /// Sets the GPU sharing discipline (MPS ablation).
    pub fn gpu_sharing(mut self, sharing: GpuSharing) -> Self {
        self.gpu_sharing = sharing;
        self
    }

    /// Sets the GPU scheduling policy. [`GpuPolicy::TimesliceRR`] (the
    /// default) is byte-identical to the pre-policy simulator.
    pub fn gpu_policy(mut self, policy: GpuPolicy) -> Self {
        self.gpu_policy = policy;
        self
    }

    /// Sets the GPU scheduling priority of the *most recently added*
    /// process (higher wins under [`GpuPolicy::Priority`]; other
    /// policies ignore it).
    ///
    /// # Panics
    ///
    /// Panics if no process has been added yet.
    pub fn process_priority(mut self, priority: u8) -> Self {
        self.processes
            .last_mut()
            .expect("process_priority needs a process: call add_engine* first")
            .priority = priority;
        self
    }

    /// Sets the SM share weight of the *most recently added* process
    /// (consulted by [`GpuPolicy::FractionalMps`]; other policies ignore
    /// it). Shares are relative weights, not normalised fractions.
    ///
    /// # Panics
    ///
    /// Panics if no process has been added yet.
    pub fn process_sm_share(mut self, share: f64) -> Self {
        self.processes
            .last_mut()
            .expect("process_sm_share needs a process: call add_engine* first")
            .sm_share = share;
        self
    }

    /// Sets the CPU contention model.
    pub fn cpu_model(mut self, model: CpuModel) -> Self {
        self.cpu_model = model;
        self
    }

    /// Disables per-kernel event retention (for multi-minute thermal
    /// soaks; throughput/power statistics are unaffected).
    pub fn record_kernel_events(mut self, record: bool) -> Self {
        self.record_kernel_events = record;
        self
    }

    /// Attaches a fault-injection schedule. Under
    /// [`OomPolicy::KillLargest`] over-committed deployments are
    /// *admitted*: the OOM killer fires at start of run instead of
    /// [`SimConfigBuilder::build`] erroring.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Caps the DES event count; exceeding it aborts the run with
    /// [`crate::RunTrace::budget_exceeded`] set.
    pub fn event_budget(mut self, events: u64) -> Self {
        self.event_budget = Some(events);
        self
    }

    /// Attaches a request-level serving plan: the plan's member
    /// processes stop self-enqueueing and instead serve batches formed
    /// from open-loop arrivals (see [`crate::serving`]).
    pub fn serve(mut self, plan: ServePlan) -> Self {
        self.serve = Some(plan);
        self
    }

    /// Finalises the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoProcesses`] for an empty process list,
    /// [`SimError::InvalidConfig`] for out-of-range dynamics parameters
    /// (MPS overlap efficiency outside `[0, 0.6]`, non-positive SM
    /// shares) and [`SimError::OutOfMemory`] when the combined footprint
    /// (plus the
    /// fault plan's peak concurrent memory-spike bytes) exceeds the
    /// board's usable RAM — the configuration that reboots a real
    /// Jetson. Under [`OomPolicy::KillLargest`] the memory check is
    /// waived: the deployment is admitted and the simulated OOM killer
    /// resolves the overcommit at run time.
    pub fn build(self) -> Result<SimConfig, SimError> {
        if self.processes.is_empty() {
            return Err(SimError::NoProcesses);
        }
        if let Some(plan) = &self.serve {
            Self::validate_serve(plan, self.processes.len())?;
        }
        let mut processes = self.processes;
        // Serve-group ingress tags its members: every process of a group
        // inherits the group's GPU priority and SM share, so request
        // streams compete under the configured policy. The defaults
        // (priority 0, share 1.0) match ProcessConfig's, leaving plans
        // that set neither byte-identical.
        if let Some(plan) = &self.serve {
            for group in &plan.groups {
                for &pid in &group.members {
                    processes[pid].priority = group.priority;
                    processes[pid].sm_share = group.sm_share;
                }
            }
        }
        let config = SimConfig {
            device: self.device,
            processes,
            warmup: self.warmup,
            measure: self.measure,
            seed: self.seed,
            profiler: self.profiler,
            sample_period: self.sample_period,
            gpu_sharing: self.gpu_sharing,
            gpu_policy: self.gpu_policy,
            cpu_model: self.cpu_model,
            record_kernel_events: self.record_kernel_events,
            faults: self.faults,
            event_budget: self.event_budget,
            serve: self.serve,
        };
        config.validate_dynamics()?;
        if config.faults.oom == OomPolicy::Strict {
            let footprint = config
                .total_footprint_bytes()
                .saturating_add(config.faults.peak_spike_bytes());
            if config.device.memory.would_oom(footprint) {
                return Err(SimError::OutOfMemory {
                    required_bytes: footprint,
                    usable_bytes: config.device.memory.usable_bytes(),
                });
            }
        }
        Ok(config)
    }

    /// A serve plan is well-formed when every group has at least one
    /// member, every member names an existing process, and no process
    /// serves two groups.
    fn validate_serve(plan: &ServePlan, n_processes: usize) -> Result<(), SimError> {
        let mut claimed = vec![false; n_processes];
        for group in &plan.groups {
            if group.members.is_empty() {
                return Err(SimError::InvalidServePlan {
                    reason: format!("serve group `{}` has no member processes", group.label),
                });
            }
            for &pid in &group.members {
                if pid >= n_processes {
                    return Err(SimError::InvalidServePlan {
                        reason: format!(
                            "serve group `{}` names process {pid}, but only {n_processes} \
                             processes are configured",
                            group.label
                        ),
                    });
                }
                if std::mem::replace(&mut claimed[pid], true) {
                    return Err(SimError::InvalidServePlan {
                        reason: format!(
                            "process {pid} is a member of more than one serve group \
                             (`{}` claims it again)",
                            group.label
                        ),
                    });
                }
            }
            if let Some(policy) = &group.autoscaler {
                if policy.min_replicas as usize > group.members.len() {
                    return Err(SimError::InvalidServePlan {
                        reason: format!(
                            "serve group `{}` autoscales with min_replicas {} but has only \
                             {} member processes",
                            group.label,
                            policy.min_replicas,
                            group.members.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetsim_device::presets;
    use jetsim_dnn::zoo;

    #[test]
    fn builder_produces_named_processes() {
        let config = SimConfig::builder(presets::orin_nano())
            .add_model(&zoo::resnet50(), Precision::Int8, 1)
            .unwrap()
            .add_model(&zoo::yolov8n(), Precision::Int8, 1)
            .unwrap()
            .build()
            .unwrap();
        let names: Vec<&str> = config.processes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["p0", "p1"]);
    }

    #[test]
    fn empty_config_rejected() {
        let err = SimConfig::builder(presets::orin_nano())
            .build()
            .unwrap_err();
        assert_eq!(err, SimError::NoProcesses);
    }

    #[test]
    fn shared_engine_processes_each_pay_memory() {
        let one = SimConfig::builder(presets::orin_nano())
            .add_model_processes(&zoo::resnet50(), Precision::Int8, 1, 1)
            .unwrap()
            .build()
            .unwrap();
        let four = SimConfig::builder(presets::orin_nano())
            .add_model_processes(&zoo::resnet50(), Precision::Int8, 1, 4)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(four.gpu_memory_bytes(), 4 * one.gpu_memory_bytes());
        assert_eq!(
            four.total_footprint_bytes(),
            4 * one.total_footprint_bytes()
        );
    }

    #[test]
    fn fcn_overdeployment_on_nano_ooms() {
        // Paper §6.2.1: 4 FCN processes exhaust the Jetson Nano and
        // reboot it, while 4 ResNet50 processes deploy safely.
        let fcn = SimConfig::builder(presets::jetson_nano())
            .add_model_processes(&zoo::fcn_resnet50(), Precision::Fp16, 1, 4)
            .unwrap()
            .build();
        assert!(matches!(fcn, Err(SimError::OutOfMemory { .. })), "{fcn:?}");

        let resnet = SimConfig::builder(presets::jetson_nano())
            .add_model_processes(&zoo::resnet50(), Precision::Fp16, 1, 4)
            .unwrap()
            .build();
        assert!(resnet.is_ok(), "{resnet:?}");
    }

    #[test]
    fn kill_policy_admits_the_fcn_overdeployment() {
        // Same deployment as `fcn_overdeployment_on_nano_ooms`, but under
        // `OomPolicy::KillLargest` admission succeeds: the OOM killer
        // resolves the overcommit at runtime instead of erroring here.
        let config = SimConfig::builder(presets::jetson_nano())
            .add_model_processes(&zoo::fcn_resnet50(), Precision::Fp16, 1, 4)
            .unwrap()
            .faults(FaultPlan::kill_largest_on_oom())
            .build();
        assert!(config.is_ok(), "{config:?}");
    }

    #[test]
    fn strict_policy_counts_scheduled_spikes_against_memory() {
        // 4 ResNet50 processes fit on the Nano on their own, but a
        // scheduled 3 GiB background spike pushes the peak footprint
        // over the edge — strict admission must reject it up front.
        let spike = FaultPlan::new().memory_spike(
            jetsim_des::SimTime::from_nanos(500_000_000),
            SimDuration::from_millis(100),
            3 * 1024 * 1024 * 1024,
        );
        let config = SimConfig::builder(presets::jetson_nano())
            .add_model_processes(&zoo::resnet50(), Precision::Fp16, 1, 4)
            .unwrap()
            .faults(spike)
            .build();
        assert!(
            matches!(config, Err(SimError::OutOfMemory { .. })),
            "{config:?}"
        );
    }

    #[test]
    fn sixteen_yolo_processes_fit_on_orin() {
        let config = SimConfig::builder(presets::orin_nano())
            .add_model_processes(&zoo::yolov8n(), Precision::Int8, 16, 16)
            .unwrap()
            .build();
        assert!(config.is_ok(), "{config:?}");
        let config = config.unwrap();
        let percent = config.device.memory.gpu_percent(config.gpu_memory_bytes());
        assert!(
            percent > 30.0,
            "paper fig 6: >35% GPU memory, got {percent:.1}"
        );
    }

    #[test]
    fn streams_share_process_memory() {
        let device = presets::orin_nano();
        let engine = std::sync::Arc::new(
            EngineBuilder::new(&device)
                .precision(Precision::Int8)
                .batch(4)
                .build(&zoo::yolov8n())
                .unwrap(),
        );
        let streams = SimConfig::builder(device.clone())
            .add_engine_streams(&engine, 4)
            .build()
            .unwrap();
        let processes = SimConfig::builder(device)
            .add_engines(&engine, 4)
            .build()
            .unwrap();
        assert_eq!(streams.processes.len(), 4);
        assert!(
            streams.gpu_memory_bytes() < processes.gpu_memory_bytes() / 2,
            "streams {} vs processes {}",
            streams.gpu_memory_bytes(),
            processes.gpu_memory_bytes()
        );
        assert!(streams.total_footprint_bytes() < processes.total_footprint_bytes() / 2);
    }

    #[test]
    fn streams_keep_throughput_at_a_fraction_of_the_memory() {
        use crate::Simulation;
        let device = presets::orin_nano();
        let engine = std::sync::Arc::new(
            EngineBuilder::new(&device)
                .precision(Precision::Int8)
                .build(&zoo::resnet50())
                .unwrap(),
        );
        let run = |config: SimConfig| Simulation::new(config).unwrap().run();
        let one = run(SimConfig::builder(device.clone())
            .add_engine_streams(&engine, 1)
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(700))
            .build()
            .unwrap());
        let two = run(SimConfig::builder(device)
            .add_engine_streams(&engine, 2)
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(700))
            .build()
            .unwrap());
        // A single saturated stream already fills this GPU, so the
        // second stream buys no throughput — but it must not collapse
        // either, and it costs only per-context buffers.
        let ratio = two.total_throughput() / one.total_throughput();
        assert!((0.8..1.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn total_time_is_warmup_plus_measure() {
        let config = SimConfig::builder(presets::orin_nano())
            .add_model(&zoo::resnet50(), Precision::Fp16, 1)
            .unwrap()
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(400))
            .build()
            .unwrap();
        assert_eq!(config.total_time(), SimDuration::from_millis(500));
    }

    #[test]
    fn gpu_policy_parses_cli_grammar() {
        assert_eq!("rr".parse::<GpuPolicy>(), Ok(GpuPolicy::TimesliceRR));
        assert_eq!("fifo".parse::<GpuPolicy>(), Ok(GpuPolicy::Fifo));
        assert_eq!(
            "priority".parse::<GpuPolicy>(),
            Ok(GpuPolicy::Priority {
                preempt_penalty: GpuPolicy::DEFAULT_PREEMPT_PENALTY
            })
        );
        assert_eq!(
            "priority:50".parse::<GpuPolicy>(),
            Ok(GpuPolicy::Priority {
                preempt_penalty: SimDuration::from_micros(50)
            })
        );
        assert_eq!(
            "mps".parse::<GpuPolicy>(),
            Ok(GpuPolicy::FractionalMps {
                overlap_efficiency: GpuPolicy::DEFAULT_MPS_OVERLAP
            })
        );
        assert_eq!(
            "mps:0.5".parse::<GpuPolicy>(),
            Ok(GpuPolicy::FractionalMps {
                overlap_efficiency: 0.5
            })
        );
        for bad in ["nope", "mps:0.9", "mps:x", "priority:-3", "rr:1"] {
            assert!(bad.parse::<GpuPolicy>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn gpu_policy_display_round_trips() {
        for p in [
            GpuPolicy::TimesliceRR,
            GpuPolicy::Fifo,
            GpuPolicy::Priority {
                preempt_penalty: SimDuration::from_micros(35),
            },
            GpuPolicy::FractionalMps {
                overlap_efficiency: 0.25,
            },
        ] {
            assert_eq!(p.to_string().parse::<GpuPolicy>(), Ok(p));
        }
    }

    #[test]
    fn out_of_range_overlap_rejected_at_build() {
        // Previously clamped silently at every dispatch; now a build error.
        for oe in [-0.1, 0.61, f64::NAN] {
            let err = SimConfig::builder(presets::orin_nano())
                .add_model(&zoo::resnet50(), Precision::Int8, 1)
                .unwrap()
                .gpu_sharing(GpuSharing::SpatialMps {
                    overlap_efficiency: oe,
                })
                .build()
                .unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig { .. }), "{err:?}");
        }
        let err = SimConfig::builder(presets::orin_nano())
            .add_model(&zoo::resnet50(), Precision::Int8, 1)
            .unwrap()
            .gpu_policy(GpuPolicy::FractionalMps {
                overlap_efficiency: 0.7,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn in_range_overlap_accepted() {
        for oe in [0.0, 0.3, 0.6] {
            let ok = SimConfig::builder(presets::orin_nano())
                .add_model(&zoo::resnet50(), Precision::Int8, 1)
                .unwrap()
                .gpu_sharing(GpuSharing::SpatialMps {
                    overlap_efficiency: oe,
                })
                .build();
            assert!(ok.is_ok(), "{ok:?}");
        }
    }

    #[test]
    fn bad_sm_share_rejected_at_build() {
        for share in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            let err = SimConfig::builder(presets::orin_nano())
                .add_model(&zoo::resnet50(), Precision::Int8, 1)
                .unwrap()
                .process_sm_share(share)
                .build()
                .unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig { .. }), "{err:?}");
        }
    }

    #[test]
    fn priority_and_share_attach_to_last_process() {
        let config = SimConfig::builder(presets::orin_nano())
            .add_model(&zoo::resnet50(), Precision::Int8, 1)
            .unwrap()
            .process_priority(3)
            .process_sm_share(2.5)
            .add_model(&zoo::yolov8n(), Precision::Int8, 1)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(config.processes[0].priority, 3);
        assert_eq!(config.processes[0].sm_share, 2.5);
        assert_eq!(config.processes[1].priority, 0);
        assert_eq!(config.processes[1].sm_share, 1.0);
    }

    #[test]
    fn profiler_overheads_ordered() {
        assert!(
            ProfilerMode::Nsight.launch_overhead_factor()
                > ProfilerMode::Lightweight.launch_overhead_factor()
        );
        assert!(
            ProfilerMode::Nsight.kernel_overhead_factor()
                > ProfilerMode::Lightweight.kernel_overhead_factor()
        );
    }
}
