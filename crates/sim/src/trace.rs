//! Run traces: everything a simulation records for the profilers.

use std::sync::Arc;

use jetsim_des::{SimDuration, SimTime};
use jetsim_dnn::Precision;

use crate::faults::FaultEvent;
use crate::serving::{RequestRecord, ServeEvent};

/// One GPU kernel execution, as an Nsight-style tracer would record it.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEvent {
    /// Index of the owning process.
    pub pid: usize,
    /// Sequence number of the execution context within the process.
    pub ec_seq: u64,
    /// Index of the kernel within the engine.
    pub kernel_index: usize,
    /// GPU start time.
    pub start: SimTime,
    /// GPU end time.
    pub end: SimTime,
    /// Precision the kernel ran at.
    pub precision: Precision,
    /// SM-active utilisation during the kernel (jittered sample).
    pub sm_active: f64,
    /// Issue-slot utilisation during the kernel (jittered sample).
    pub issue_slot: f64,
    /// Tensor-core activity during the kernel (jittered sample).
    pub tc_activity: f64,
    /// Bytes the kernel moved (batch-scaled).
    pub bytes: u64,
}

impl KernelEvent {
    /// Kernel duration.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// One kernel cancelled mid-flight by a preemptive GPU policy
/// ([`crate::config::GpuPolicy::Priority`]). The partial execution is
/// wasted work — the kernel re-runs from scratch — so these events are
/// the audit trail for the occupancy a preemptive discipline burns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPreempted {
    /// Index of the process whose kernel was cancelled.
    pub pid: usize,
    /// Sequence number of the execution context the kernel belonged to.
    pub ec_seq: u64,
    /// Index of the kernel within the engine.
    pub kernel_index: usize,
    /// When the cancelled attempt started on the GPU.
    pub start: SimTime,
    /// When it was cut short.
    pub preempted_at: SimTime,
    /// Index of the higher-priority process whose arrival triggered the
    /// preemption.
    pub by_pid: usize,
}

impl KernelPreempted {
    /// GPU time the cancelled attempt burned before the cut.
    pub fn wasted(&self) -> SimDuration {
        self.preempted_at.since(self.start)
    }
}

/// A periodic power/frequency/utilisation sample (`jetson-stats` style).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSample {
    /// Sample timestamp.
    pub time: SimTime,
    /// Estimated module power in watts.
    pub watts: f64,
    /// GPU busy fraction over the last sample period.
    pub gpu_utilization: f64,
    /// GPU frequency at sample time, MHz.
    pub gpu_freq_mhz: u32,
    /// GPU memory allocated, bytes.
    pub gpu_memory_bytes: u64,
    /// Time-averaged busy CPU cores over the last period.
    pub cpu_busy_cores: f64,
    /// Estimated junction temperature, °C.
    pub temp_c: f64,
}

/// Timing breakdown of one completed execution context, the paper's
/// `EC_i = Σ (K_l + T_l + C_l + B_l)` decomposition (§7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EcRecord {
    /// When the host thread began enqueueing this EC.
    pub start: SimTime,
    /// When the host thread returned from `cudaStreamSynchronize`.
    pub end: SimTime,
    /// Cumulative CPU time spent in kernel-launch calls (`Σ K_l`).
    pub launch_time: SimDuration,
    /// Cumulative scheduler blocking (`Σ B_l`).
    pub blocking_time: SimDuration,
    /// Time the thread waited in synchronisation after its last launch.
    pub sync_time: SimDuration,
    /// Pure GPU execution time of this EC's kernels.
    pub gpu_time: SimDuration,
    /// Time the batch waited between arriving and processing starting
    /// (zero in saturated `trtexec` mode).
    pub queue_delay: SimDuration,
}

impl EcRecord {
    /// Wall duration of the EC.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Aggregated statistics for one process over the measured window.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessStats {
    /// Process name.
    pub name: String,
    /// Engine name the process ran.
    pub engine_name: String,
    /// Batch size per EC.
    pub batch: u32,
    /// ECs completed inside the measured window.
    pub completed_ecs: u64,
    /// Images processed inside the measured window.
    pub images: u64,
    /// Throughput in images/s.
    pub throughput: f64,
    /// Mean EC wall duration.
    pub mean_ec_time: SimDuration,
    /// Median EC wall duration (QoS latency view).
    pub p50_ec_time: SimDuration,
    /// 95th-percentile EC wall duration.
    pub p95_ec_time: SimDuration,
    /// 99th-percentile EC wall duration (tail latency under contention).
    pub p99_ec_time: SimDuration,
    /// Mean per-EC kernel-launch CPU time.
    pub mean_launch_time: SimDuration,
    /// Mean per-EC blocking time.
    pub mean_blocking_time: SimDuration,
    /// Mean per-EC synchronisation wait.
    pub mean_sync_time: SimDuration,
    /// Mean per-EC pure GPU time.
    pub mean_gpu_time: SimDuration,
    /// Mean queueing delay before each EC began (open-loop arrivals).
    pub mean_queue_delay: SimDuration,
    /// When the simulated OOM killer terminated this process
    /// ([`crate::OomPolicy::KillLargest`]); `None` if it survived the
    /// run. A killed process keeps the statistics it earned before
    /// death — its throughput is still averaged over the full measured
    /// window, exactly how a real profiling harness would report a
    /// casualty.
    pub killed_at: Option<SimTime>,
}

/// Everything one simulation run recorded.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// The device simulated.
    pub device_name: String,
    /// Length of the measured window.
    pub measured: SimDuration,
    /// Per-process aggregated statistics.
    pub processes: Vec<ProcessStats>,
    /// Fused-kernel names per process (indexed by
    /// [`KernelEvent::kernel_index`]), for timeline tooling. Processes
    /// sharing an engine share one interned table behind the `Arc`.
    pub kernel_names: Vec<Arc<Vec<String>>>,
    /// Per-EC records (measured window only), grouped per process.
    pub ec_records: Vec<Vec<EcRecord>>,
    /// Per-kernel events (measured window only).
    pub kernel_events: Vec<KernelEvent>,
    /// Kernels cancelled mid-flight by a preemptive GPU policy
    /// (measured window only). Empty under every non-preemptive policy,
    /// including the default.
    pub preemptions: Vec<KernelPreempted>,
    /// Periodic power samples (measured window only).
    pub power_samples: Vec<PowerSample>,
    /// Injected faults and their consequences (whole run, warmup
    /// included — a kill during warmup still explains the measured
    /// window). Empty unless a [`crate::FaultPlan`] was attached.
    pub fault_events: Vec<FaultEvent>,
    /// Every serving request's lifecycle, in arrival order, warmup
    /// included (SLO reports re-filter to the measured window). Empty
    /// unless a [`crate::serving::ServePlan`] was attached.
    pub requests: Vec<RequestRecord>,
    /// Batch formations and degradation flips, in time order. Empty for
    /// closed-loop runs.
    pub serve_events: Vec<ServeEvent>,
    /// Serve group labels (indexed by [`RequestRecord::group`] and
    /// [`ServeEvent::group`]). Empty for closed-loop runs.
    pub serve_group_labels: Vec<String>,
    /// `true` when the run was aborted by the
    /// [`crate::SimConfig::event_budget`] watchdog; statistics cover
    /// only the portion that ran.
    pub budget_exceeded: bool,
    /// Total events the DES loop processed over the whole run (warmup
    /// included) — the denominator of the sweep benches' events/sec.
    pub sim_events: u64,
    /// GPU busy time within the measured window.
    pub gpu_busy: SimDuration,
    /// Total GPU-side memory allocated by the deployment.
    pub gpu_memory_bytes: u64,
    /// Percentage of board RAM the GPU allocation represents.
    pub gpu_memory_percent: f64,
    /// Final DVFS frequency step at the end of the run.
    pub final_freq_mhz: u32,
    /// The device's top GPU frequency, MHz.
    pub top_freq_mhz: u32,
    /// The device's DRAM bandwidth, bytes/s.
    pub mem_bandwidth_bytes_per_sec: f64,
}

impl RunTrace {
    /// Aggregate throughput across processes, images/s.
    pub fn total_throughput(&self) -> f64 {
        self.processes.iter().map(|p| p.throughput).sum()
    }

    /// Mean per-process throughput — the paper's `T/P` metric (§6.2.1).
    pub fn throughput_per_process(&self) -> f64 {
        if self.processes.is_empty() {
            0.0
        } else {
            self.total_throughput() / self.processes.len() as f64
        }
    }

    /// Processes the simulated OOM killer terminated
    /// ([`crate::OomPolicy::KillLargest`]).
    pub fn killed_processes(&self) -> usize {
        self.processes
            .iter()
            .filter(|p| p.killed_at.is_some())
            .count()
    }

    /// Aggregate throughput of the processes that survived to the end
    /// of the run, images/s — what the §6.2.1 over-deployment actually
    /// delivers once the OOM killer has culled it.
    pub fn surviving_throughput(&self) -> f64 {
        self.processes
            .iter()
            .filter(|p| p.killed_at.is_none())
            .map(|p| p.throughput)
            .sum()
    }

    /// GPU utilisation over the measured window (0–1).
    pub fn gpu_utilization(&self) -> f64 {
        let wall = self.measured.as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            (self.gpu_busy.as_secs_f64() / wall).min(1.0)
        }
    }

    /// Mean module power over the measured window, watts.
    pub fn mean_power(&self) -> f64 {
        if self.power_samples.is_empty() {
            return 0.0;
        }
        self.power_samples.iter().map(|s| s.watts).sum::<f64>() / self.power_samples.len() as f64
    }

    /// Energy per image over the measured window, joules (W·s).
    pub fn power_per_image(&self) -> f64 {
        let throughput = self.total_throughput();
        if throughput == 0.0 {
            0.0
        } else {
            self.mean_power() / throughput
        }
    }

    /// Total energy consumed over the measured window, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.mean_power() * self.measured.as_secs_f64()
    }

    /// How long a battery of `watt_hours` would sustain this workload at
    /// the measured draw, in hours (`None` when the trace has no samples).
    pub fn battery_life_hours(&self, watt_hours: f64) -> Option<f64> {
        let power = self.mean_power();
        if power <= 0.0 {
            None
        } else {
            Some(watt_hours / power)
        }
    }

    /// Mean EC wall time across all processes.
    pub fn mean_ec_time(&self) -> SimDuration {
        let (sum, n) = self
            .processes
            .iter()
            .filter(|p| p.completed_ecs > 0)
            .fold((SimDuration::ZERO, 0u64), |(s, n), p| {
                (s + p.mean_ec_time, n + 1)
            });
        if n == 0 {
            SimDuration::ZERO
        } else {
            sum / n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetsim_des::SimTime;

    fn stats(name: &str, throughput: f64) -> ProcessStats {
        ProcessStats {
            name: name.into(),
            engine_name: "e".into(),
            batch: 1,
            completed_ecs: 10,
            images: 10,
            throughput,
            mean_ec_time: SimDuration::from_millis(2),
            p50_ec_time: SimDuration::from_millis(2),
            p95_ec_time: SimDuration::from_millis(3),
            p99_ec_time: SimDuration::from_millis(4),
            mean_launch_time: SimDuration::from_micros(500),
            mean_blocking_time: SimDuration::ZERO,
            mean_sync_time: SimDuration::from_micros(100),
            mean_gpu_time: SimDuration::from_millis(1),
            mean_queue_delay: SimDuration::ZERO,
            killed_at: None,
        }
    }

    fn trace(processes: Vec<ProcessStats>) -> RunTrace {
        RunTrace {
            device_name: "test".into(),
            measured: SimDuration::from_secs(2),
            processes,
            kernel_names: vec![],
            ec_records: vec![],
            kernel_events: vec![],
            preemptions: vec![],
            power_samples: vec![
                PowerSample {
                    time: SimTime::ZERO,
                    watts: 4.0,
                    gpu_utilization: 0.9,
                    gpu_freq_mhz: 625,
                    gpu_memory_bytes: 0,
                    cpu_busy_cores: 1.0,
                    temp_c: 40.0,
                },
                PowerSample {
                    time: SimTime::from_nanos(1),
                    watts: 6.0,
                    gpu_utilization: 0.9,
                    gpu_freq_mhz: 625,
                    gpu_memory_bytes: 0,
                    cpu_busy_cores: 1.0,
                    temp_c: 40.0,
                },
            ],
            fault_events: vec![],
            requests: vec![],
            serve_events: vec![],
            serve_group_labels: vec![],
            budget_exceeded: false,
            sim_events: 0,
            gpu_busy: SimDuration::from_secs(1),
            gpu_memory_bytes: 0,
            gpu_memory_percent: 0.0,
            final_freq_mhz: 625,
            top_freq_mhz: 625,
            mem_bandwidth_bytes_per_sec: 68.0e9,
        }
    }

    #[test]
    fn throughput_aggregation() {
        let t = trace(vec![stats("a", 100.0), stats("b", 50.0)]);
        assert_eq!(t.total_throughput(), 150.0);
        assert_eq!(t.throughput_per_process(), 75.0);
    }

    #[test]
    fn kill_accounting_splits_survivors() {
        let mut dead = stats("dead", 30.0);
        dead.killed_at = Some(SimTime::from_nanos(5));
        let t = trace(vec![stats("a", 100.0), dead]);
        assert_eq!(t.killed_processes(), 1);
        assert_eq!(t.surviving_throughput(), 100.0);
        assert_eq!(t.total_throughput(), 130.0, "casualties still counted");
        assert!(!t.budget_exceeded);
    }

    #[test]
    fn empty_trace_degenerates_gracefully() {
        let t = trace(vec![]);
        assert_eq!(t.throughput_per_process(), 0.0);
        assert_eq!(t.mean_ec_time(), SimDuration::ZERO);
        assert_eq!(t.power_per_image(), 0.0);
    }

    #[test]
    fn gpu_utilization_fraction() {
        let t = trace(vec![stats("a", 10.0)]);
        assert!((t.gpu_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_power_averages_samples() {
        let t = trace(vec![stats("a", 10.0)]);
        assert_eq!(t.mean_power(), 5.0);
        assert_eq!(t.power_per_image(), 0.5);
    }

    #[test]
    fn energy_integrates_power_over_window() {
        let t = trace(vec![stats("a", 10.0)]);
        assert_eq!(t.total_energy_j(), 10.0, "5 W × 2 s");
        assert_eq!(t.battery_life_hours(50.0), Some(10.0));
        let mut empty = trace(vec![]);
        empty.power_samples.clear();
        assert_eq!(empty.battery_life_hours(50.0), None);
    }

    #[test]
    fn kernel_event_duration() {
        let e = KernelEvent {
            pid: 0,
            ec_seq: 0,
            kernel_index: 0,
            start: SimTime::from_nanos(100),
            end: SimTime::from_nanos(350),
            precision: Precision::Fp16,
            sm_active: 0.9,
            issue_slot: 0.3,
            tc_activity: 0.2,
            bytes: 1024,
        };
        assert_eq!(e.duration(), SimDuration::from_nanos(250));
    }

    #[test]
    fn ec_record_duration() {
        let r = EcRecord {
            start: SimTime::from_nanos(10),
            end: SimTime::from_nanos(40),
            launch_time: SimDuration::ZERO,
            blocking_time: SimDuration::ZERO,
            sync_time: SimDuration::ZERO,
            gpu_time: SimDuration::ZERO,
            queue_delay: SimDuration::ZERO,
        };
        assert_eq!(r.duration(), SimDuration::from_nanos(30));
    }
}
