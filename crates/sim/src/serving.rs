//! Request-level serving: open-loop arrivals, per-tenant dynamic
//! batching and admission control layered over the closed-loop DES.
//!
//! A [`ServePlan`] attached to a [`crate::SimConfig`] turns designated
//! processes into *servers*: instead of re-enqueueing work the moment an
//! execution context returns (the paper's `trtexec` loop), each serve
//! group draws requests from a seeded
//! [`jetsim_des::ArrivalProcess`], queues them behind a bounded
//! admission queue, coalesces them into batches under a
//! [`BatcherPolicy`], and dispatches each batch through the unmodified
//! engine/GPU model. TensorRT engines in this workspace are built at a
//! fixed batch size, and a partial batch pays the full fixed-batch
//! execution time (static-shape padding) — so batching never requires a
//! second engine model, only the decision of *when* to stop waiting.
//!
//! A config with no serve plan schedules no serving events and draws no
//! extra randomness: closed-loop runs stay byte-identical to a simulator
//! without any serving machinery.

use std::sync::Arc;

use jetsim_des::{ArrivalProcess, SimDuration, SimTime};
use jetsim_trt::Engine;

/// Retry discipline for failed requests: a dropped request (rejected,
/// shed, expired, or killed with its server) is re-submitted as a fresh
/// attempt after an exponential backoff with seeded deterministic
/// jitter.
///
/// Backoff for attempt `n` (0-based: the first *retry* is attempt 1) is
/// `base * multiplier^(n-1)`, jittered by ±`jitter` via a per-group RNG
/// stream derived from the run seed — so the same seed replays the same
/// retry timeline bit for bit, and a config without a retry policy draws
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first (clamped ≥ 1; 1 means
    /// no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff for each further retry.
    pub multiplier: f64,
    /// Relative jitter spread applied to each backoff (`0.1` = ±10%).
    pub jitter: f64,
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total attempts with the given
    /// base backoff; multiplier 2.0, jitter ±10%.
    pub fn new(max_attempts: u32, base_backoff: SimDuration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff,
            multiplier: 2.0,
            jitter: 0.1,
        }
    }

    /// Sets the backoff multiplier.
    pub fn multiplier(mut self, multiplier: f64) -> Self {
        self.multiplier = multiplier.max(1.0);
        self
    }

    /// Sets the relative jitter spread.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 0.95);
        self
    }

    /// The un-jittered backoff before attempt `attempt` (1-based retry
    /// index: `1` is the first retry).
    pub fn base_backoff_for(&self, attempt: u32) -> SimDuration {
        let scale = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        SimDuration::from_secs_f64(self.base_backoff.as_secs_f64() * scale)
    }
}

/// Hedging discipline: a request that has been dispatched but not
/// completed after the hedge delay is duplicated onto a second replica;
/// the first completion wins and the loser is cancelled (if still
/// queued) or deduplicated in the report (if already in flight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Fixed hedge delay; `None` derives it from the group's rolling p95
    /// completion latency (no hedges fire until `min_samples` latencies
    /// have been observed).
    pub delay: Option<SimDuration>,
    /// Completed-latency samples required before auto-delay hedging
    /// activates.
    pub min_samples: usize,
}

impl HedgePolicy {
    /// Hedge after a fixed delay.
    pub fn fixed(delay: SimDuration) -> Self {
        HedgePolicy {
            delay: Some(delay),
            min_samples: 0,
        }
    }

    /// Hedge after the group's rolling p95 completion latency, once at
    /// least 16 completions have been observed.
    pub fn auto() -> Self {
        HedgePolicy {
            delay: None,
            min_samples: 16,
        }
    }
}

/// What an open circuit breaker does with arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BreakerMode {
    /// Drop arrivals outright ([`DropKind::BreakerOpen`]) until the
    /// half-open probe succeeds. The default.
    #[default]
    Shed,
    /// Brownout: keep admitting, but force the group onto its degraded
    /// engine (when one is configured) until the half-open probe
    /// succeeds.
    Brownout,
}

/// Per-group circuit breaker: trips when the rolling error rate over the
/// last `window` terminal outcomes reaches `error_threshold`, stays open
/// for `cooldown`, then admits exactly one half-open probe whose outcome
/// closes the breaker or re-opens it.
///
/// A *failure* is any terminal drop (rejected, shed, deadline-expired,
/// killed) or a completion that missed the group's deadline; hedge
/// losers and breaker-shed arrivals are not counted, so an open breaker
/// cannot keep itself open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Rolling window of terminal outcomes the error rate is judged
    /// over (clamped ≥ 1).
    pub window: usize,
    /// Error-rate fraction that trips the breaker (`0.5` = half the
    /// window failed).
    pub error_threshold: f64,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: SimDuration,
    /// What an open breaker does with arrivals.
    pub mode: BreakerMode,
}

impl BreakerPolicy {
    /// A breaker over the last `window` outcomes tripping at
    /// `error_threshold`, with a 50 ms cooldown, [`BreakerMode::Shed`],
    /// and `min_samples` = `window / 4` (≥ 1).
    pub fn new(window: usize, error_threshold: f64) -> Self {
        let window = window.max(1);
        BreakerPolicy {
            window,
            error_threshold: error_threshold.clamp(0.0, 1.0),
            min_samples: (window / 4).max(1),
            cooldown: SimDuration::from_millis(50),
            mode: BreakerMode::Shed,
        }
    }

    /// Sets the open-state cooldown.
    pub fn cooldown(mut self, cooldown: SimDuration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Sets the open-state behaviour.
    pub fn mode(mut self, mode: BreakerMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the minimum window occupancy before tripping.
    pub fn min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }
}

/// Replica-recovery discipline: an OOM-killed server schedules a restart
/// instead of staying dead. The restart cost is supplied by the caller —
/// the serve layer charges it through the engine cache (warm hit = fast
/// deserialize, cold = full rebuild) — and is clamped ≥ 1 ms so a
/// revived process can never race wakeups from its previous life.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Wall time between the kill and the replica rejoining its group.
    pub restart_cost: SimDuration,
    /// Restarts allowed per replica before it is ejected for good.
    pub max_restarts: u32,
}

impl RecoveryPolicy {
    /// A policy restarting each killed replica up to `max_restarts`
    /// times after `restart_cost` (clamped ≥ 1 ms).
    pub fn new(restart_cost: SimDuration, max_restarts: u32) -> Self {
        RecoveryPolicy {
            restart_cost: restart_cost.max(SimDuration::from_millis(1)),
            max_restarts,
        }
    }
}

/// The load signals an [`AutoscalerPolicy`] judges at each evaluation
/// tick, aggregated over the window since the previous tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSignals {
    /// Requests currently queued (not yet dispatched).
    pub queued: usize,
    /// Replicas serving or idle-and-eligible (`Up` scale state with
    /// healthy process).
    pub up: u32,
    /// Replicas mid cold/warm start (`Provisioning` or `Warming`).
    pub pending: u32,
    /// Mean arrival rate over the window, in requests/s.
    pub arrival_rate: f64,
    /// Fraction of window completions that missed the policy's
    /// `slo_target` (0.0 when no target or no completions).
    pub slo_burn: f64,
}

/// An autoscaler's verdict for one evaluation tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Capacity matches load; idle-reap timers still run.
    Hold,
    /// Provision this many parked replicas (cold or warm start charged).
    Up(u32),
}

/// Serverless replica autoscaling for one serve group: watches queue
/// depth, arrival rate and SLO burn over a sliding window and provisions
/// or reaps replicas between `min_replicas` and the group's member
/// count.
///
/// Scale-up charges an engine **cold start** (TensorRT build +
/// plan-load, from the engine-cache warm/cold split the serve layer
/// resolves into `cold_start`/`warm_start`): the replica walks
/// `Provisioning → Warming → Up` before it can serve. Scale-down is
/// driven by the `keep_alive` idle-reap timer, and `min_replicas == 0`
/// allows **scale-to-zero** — the group parks until the next arrival,
/// which then eats the cold start (the dslab-faas economics, priced
/// with TensorRT build costs).
///
/// The decision core ([`AutoscalerPolicy::decide`]) is pure — no clock,
/// no RNG — so scale decisions are deterministic per seed and
/// property-testable without a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerPolicy {
    /// Floor the reaper never goes below; 0 enables scale-to-zero.
    pub min_replicas: u32,
    /// Ceiling on live replicas (clamped to the group's member count at
    /// build time — members beyond `min_replicas` start parked).
    pub max_replicas: u32,
    /// Scale up when queued requests per `Up` replica exceed this
    /// (clamped ≥ 1.0).
    pub target_queue_per_replica: f64,
    /// Optional arrival-rate criterion: scale to
    /// `ceil(rate / max_rate_per_replica)` replicas when set.
    pub max_rate_per_replica: Option<f64>,
    /// Latency target for the SLO-burn criterion; completions over it
    /// count as burn.
    pub slo_target: Option<SimDuration>,
    /// Burn fraction that triggers a one-replica scale-up (when
    /// `slo_target` is set).
    pub burn_threshold: f64,
    /// Evaluation-tick interval (clamped ≥ 1 ms).
    pub evaluate_every: SimDuration,
    /// How long a replica must sit idle before the reaper takes it.
    pub keep_alive: SimDuration,
    /// Full cold-start cost (engine build + plan load) charged to the
    /// first provision while no plan exists; resolved by the serve
    /// layer from the engine's build/load estimates.
    pub cold_start: SimDuration,
    /// Warm-start cost (plan deserialize + context setup) charged to
    /// every later provision; this is also the `Warming` phase of a
    /// cold start.
    pub warm_start: SimDuration,
}

impl AutoscalerPolicy {
    /// A policy scaling between `min_replicas` and `max_replicas`;
    /// defaults: target queue 4.0 per replica, no rate criterion, no
    /// SLO-burn criterion, 20 ms ticks, 200 ms keep-alive, 500 ms cold /
    /// 80 ms warm start.
    pub fn new(min_replicas: u32, max_replicas: u32) -> Self {
        AutoscalerPolicy {
            min_replicas: min_replicas.min(max_replicas),
            max_replicas: max_replicas.max(1),
            target_queue_per_replica: 4.0,
            max_rate_per_replica: None,
            slo_target: None,
            burn_threshold: 0.5,
            evaluate_every: SimDuration::from_millis(20),
            keep_alive: SimDuration::from_millis(200),
            cold_start: SimDuration::from_millis(500),
            warm_start: SimDuration::from_millis(80),
        }
    }

    /// Sets the queued-requests-per-replica scale-up threshold
    /// (clamped ≥ 1.0).
    pub fn target_queue_per_replica(mut self, target: f64) -> Self {
        self.target_queue_per_replica = if target.is_finite() {
            target.max(1.0)
        } else {
            1.0
        };
        self
    }

    /// Enables the arrival-rate criterion (requests/s one replica is
    /// trusted with).
    pub fn max_rate_per_replica(mut self, rate: f64) -> Self {
        self.max_rate_per_replica = (rate.is_finite() && rate > 0.0).then_some(rate);
        self
    }

    /// Enables the SLO-burn criterion: one extra replica whenever the
    /// window's miss fraction reaches `burn_threshold`.
    pub fn slo_target(mut self, target: SimDuration) -> Self {
        self.slo_target = Some(target);
        self
    }

    /// Sets the burn fraction that triggers the SLO criterion.
    pub fn burn_threshold(mut self, threshold: f64) -> Self {
        self.burn_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Sets the evaluation-tick interval (clamped ≥ 1 ms).
    pub fn evaluate_every(mut self, every: SimDuration) -> Self {
        self.evaluate_every = every.max(SimDuration::from_millis(1));
        self
    }

    /// Sets the idle-reap keep-alive.
    pub fn keep_alive(mut self, keep_alive: SimDuration) -> Self {
        self.keep_alive = keep_alive;
        self
    }

    /// Sets the cold/warm start costs (cold is clamped ≥ warm; both
    /// clamped ≥ 1 ms so a provisioned replica can never race wakeups
    /// from an earlier life).
    pub fn start_costs(mut self, cold: SimDuration, warm: SimDuration) -> Self {
        self.warm_start = warm.max(SimDuration::from_millis(1));
        self.cold_start = cold.max(self.warm_start);
        self
    }

    /// Decides what to do at an evaluation tick given the window's
    /// signals. Pure: the same signals always yield the same decision.
    ///
    /// Scale-down is not decided here — it is the per-replica
    /// `keep_alive` idle-reap timer, which the ingress applies at the
    /// same tick.
    pub fn decide(&self, signals: ScaleSignals) -> ScaleDecision {
        let capacity = signals.up + signals.pending;
        let max = self.max_replicas.max(self.min_replicas);
        let headroom = max.saturating_sub(capacity);
        if headroom == 0 {
            return ScaleDecision::Hold;
        }
        let mut want = capacity.max(self.min_replicas);

        // Queue-depth criterion: enough replicas to bring queued-per-Up
        // back under target. A parked group with anything queued always
        // wants at least one.
        let target = self.target_queue_per_replica.max(1.0);
        if signals.queued as f64 > target * f64::from(signals.up.max(signals.pending)) {
            let by_queue = (signals.queued as f64 / target).ceil() as u32;
            want = want.max(by_queue.max(capacity + 1));
        }

        // Arrival-rate criterion (optional): provision for the window's
        // offered load even before the queue backs up.
        if let Some(per_replica) = self.max_rate_per_replica {
            if signals.arrival_rate > 0.0 {
                let by_rate = (signals.arrival_rate / per_replica).ceil() as u32;
                want = want.max(by_rate);
            }
        }

        // SLO-burn criterion (optional): latency is burning — add one
        // replica per tick until it stops.
        if self.slo_target.is_some() && signals.slo_burn >= self.burn_threshold {
            want = want.max(capacity + 1);
        }

        let want = want.min(max);
        if want > capacity {
            ScaleDecision::Up(want - capacity)
        } else {
            ScaleDecision::Hold
        }
    }
}

/// Health state of one serve replica, as routing and admission see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaHealth {
    /// Serving (or idle and eligible to serve).
    #[default]
    Up,
    /// Killed and waiting out its restart cost.
    Restarting,
    /// Killed with no restarts left (or its memory no longer fits); it
    /// never rejoins.
    Ejected,
}

/// What a serve group does with a new arrival when its queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum AdmissionPolicy {
    /// Drop the newcomer (classic bounded queue). The default.
    #[default]
    Reject,
    /// Drop the *oldest* queued request and admit the newcomer — the
    /// freshest-frame discipline of live vision pipelines, where a stale
    /// frame is worth less than the one the camera just produced.
    Shed,
    /// Shed the oldest request *and* enter degraded mode: members switch
    /// to the group's pre-built degraded engine (lower precision or
    /// halved batch — the sweep supervisor's ladder, applied online) at
    /// their next batch boundary, and switch back once the queue drains
    /// below a quarter of its capacity. Falls back to [`Shed`]
    /// behaviour when the group has no degraded engine.
    ///
    /// [`Shed`]: AdmissionPolicy::Shed
    Degrade,
}

/// When the dynamic batcher dispatches, given a free server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDecision {
    /// Dispatch this many queued requests now.
    Dispatch(u32),
    /// Hold: the queue is short of a full batch and the oldest request
    /// has waited less than `max_delay`. Re-decide at this time.
    WaitUntil(SimTime),
    /// Nothing queued.
    Idle,
}

/// The dynamic-batching rule: coalesce up to `max_batch` requests, but
/// never hold the oldest one past `max_delay`.
///
/// The decision core is pure — no clock, no queue ownership — so the
/// batcher's two invariants (batch size ≤ `max_batch`; no request held
/// past `max_delay` while a server is free) can be property-tested
/// without running a simulation.
///
/// # Examples
///
/// ```
/// use jetsim_des::{SimDuration, SimTime};
/// use jetsim_sim::serving::{BatchDecision, BatcherPolicy};
///
/// let policy = BatcherPolicy::new(4, SimDuration::from_millis(5));
/// let t0 = SimTime::ZERO;
/// // Two queued, oldest arrived just now: wait for more.
/// assert_eq!(
///     policy.decide(t0, 2, Some(t0)),
///     BatchDecision::WaitUntil(t0 + SimDuration::from_millis(5))
/// );
/// // A full batch dispatches immediately.
/// assert_eq!(policy.decide(t0, 6, Some(t0)), BatchDecision::Dispatch(4));
/// // The deadline flushes a partial batch.
/// let later = t0 + SimDuration::from_millis(5);
/// assert_eq!(policy.decide(later, 2, Some(t0)), BatchDecision::Dispatch(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherPolicy {
    /// Largest batch to form (the engine's built batch size — a partial
    /// batch still pays the full fixed-shape execution).
    pub max_batch: u32,
    /// Longest the oldest queued request may wait before a partial
    /// batch is flushed anyway.
    pub max_delay: SimDuration,
}

impl BatcherPolicy {
    /// A policy coalescing up to `max_batch` (clamped ≥ 1) requests for
    /// at most `max_delay`.
    pub fn new(max_batch: u32, max_delay: SimDuration) -> Self {
        BatcherPolicy {
            max_batch: max_batch.max(1),
            max_delay,
        }
    }

    /// Decides what a free server should do at `now` given `queued`
    /// requests whose oldest arrived at `oldest_arrival`.
    pub fn decide(
        &self,
        now: SimTime,
        queued: usize,
        oldest_arrival: Option<SimTime>,
    ) -> BatchDecision {
        let Some(oldest) = oldest_arrival else {
            return BatchDecision::Idle;
        };
        if queued == 0 {
            return BatchDecision::Idle;
        }
        if queued as u64 >= u64::from(self.max_batch) {
            return BatchDecision::Dispatch(self.max_batch);
        }
        let deadline = oldest + self.max_delay;
        if deadline <= now {
            BatchDecision::Dispatch(queued as u32)
        } else {
            BatchDecision::WaitUntil(deadline)
        }
    }
}

/// One serve group: a set of server processes (typically one tenant's
/// instances, all running the same engine) fed by one arrival stream
/// through one queue and batcher.
#[derive(Debug, Clone)]
pub struct ServeGroup {
    /// Group label, carried into [`crate::RunTrace::serve_group_labels`]
    /// for reports and timeline tooling.
    pub label: String,
    /// How requests arrive.
    pub arrivals: ArrivalProcess,
    /// Longest the batcher holds a partial batch.
    pub max_delay: SimDuration,
    /// Bounded queue capacity; arrivals beyond it hit the
    /// [`AdmissionPolicy`].
    pub queue_cap: usize,
    /// What happens to arrivals when the queue is full.
    pub admission: AdmissionPolicy,
    /// Process indices (into [`crate::SimConfig::processes`]) that serve
    /// this group's requests. Each member must belong to exactly one
    /// group.
    pub members: Vec<usize>,
    /// Pre-built fallback engine for [`AdmissionPolicy::Degrade`]:
    /// members swap to it at a batch boundary while the group is under
    /// pressure. Its memory footprint is counted against the board while
    /// the plan is attached (both engines stay resident).
    pub degraded_engine: Option<Arc<Engine>>,
    /// Per-request deadline: a request still *queued* this long after
    /// arrival is dropped with [`DropKind::DeadlineExpired`] (dispatched
    /// requests run to completion; the report judges their lateness).
    pub deadline: Option<SimDuration>,
    /// Retry discipline for dropped requests.
    pub retry: Option<RetryPolicy>,
    /// Hedging discipline for slow in-flight requests.
    pub hedge: Option<HedgePolicy>,
    /// Circuit breaker over the group's rolling outcome window.
    pub breaker: Option<BreakerPolicy>,
    /// Replica-recovery discipline for killed members.
    pub recovery: Option<RecoveryPolicy>,
    /// Serverless autoscaling: members beyond the policy's
    /// `min_replicas` start parked and are provisioned (cold/warm start
    /// charged) and reaped as load moves. Absent (the default), every
    /// member is up from `t = 0` — the static path stays byte-identical.
    pub autoscaler: Option<AutoscalerPolicy>,
    /// GPU scheduling priority stamped onto every member process at
    /// build time (higher wins under [`crate::GpuPolicy::Priority`];
    /// other policies ignore it). Default 0.
    pub priority: u8,
    /// Fractional SM share stamped onto every member process (weight
    /// under [`crate::GpuPolicy::FractionalMps`]; other policies ignore
    /// it). Default 1.0.
    pub sm_share: f64,
    /// Per-request ingress delay offsets, indexed by draw order: the
    /// `i`-th arrival the stream emits is delivered at
    /// `max(emission_time + offsets[i], previous_delivery)` instead of
    /// its emission time (FIFO-link semantics — a request never
    /// overtakes its predecessor). Draws beyond the slice get zero
    /// offset. This is how a fleet layer injects per-request network
    /// uplink delay without perturbing the stream's RNG: absent (the
    /// default) or all-zero offsets leave the run byte-identical to the
    /// undelayed path.
    pub ingress_offsets: Option<Arc<[SimDuration]>>,
}

impl ServeGroup {
    /// A group with the given label and arrival process; defaults:
    /// 5 ms `max_delay`, queue capacity 64, [`AdmissionPolicy::Reject`],
    /// no members, no degraded engine.
    pub fn new(label: impl Into<String>, arrivals: ArrivalProcess) -> Self {
        ServeGroup {
            label: label.into(),
            arrivals,
            max_delay: SimDuration::from_millis(5),
            queue_cap: 64,
            admission: AdmissionPolicy::Reject,
            members: Vec::new(),
            degraded_engine: None,
            deadline: None,
            retry: None,
            hedge: None,
            breaker: None,
            recovery: None,
            autoscaler: None,
            priority: 0,
            sm_share: 1.0,
            ingress_offsets: None,
        }
    }

    /// Sets the member process indices.
    pub fn members<I: IntoIterator<Item = usize>>(mut self, members: I) -> Self {
        self.members = members.into_iter().collect();
        self
    }

    /// Sets the batcher's flush deadline.
    pub fn max_delay(mut self, max_delay: SimDuration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the bounded queue capacity (clamped ≥ 1).
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Sets the admission policy.
    pub fn admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Attaches the degraded fallback engine for
    /// [`AdmissionPolicy::Degrade`].
    pub fn degraded_engine(mut self, engine: Arc<Engine>) -> Self {
        self.degraded_engine = Some(engine);
        self
    }

    /// Sets the per-request queueing deadline.
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Attaches a hedging policy.
    pub fn hedge(mut self, hedge: HedgePolicy) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Attaches a circuit breaker.
    pub fn breaker(mut self, breaker: BreakerPolicy) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Attaches a replica-recovery policy.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Attaches a serverless autoscaling policy.
    pub fn autoscaler(mut self, autoscaler: AutoscalerPolicy) -> Self {
        self.autoscaler = Some(autoscaler);
        self
    }

    /// Sets the GPU scheduling priority every member inherits.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the fractional SM share every member inherits.
    pub fn sm_share(mut self, share: f64) -> Self {
        self.sm_share = share;
        self
    }

    /// Attaches per-request ingress delay offsets (see
    /// [`ServeGroup::ingress_offsets`]).
    pub fn ingress_offsets(mut self, offsets: impl Into<Arc<[SimDuration]>>) -> Self {
        self.ingress_offsets = Some(offsets.into());
        self
    }
}

/// The full serving configuration of one run: a list of groups.
///
/// Attached via [`crate::SimConfigBuilder::serve`]. An absent plan (the
/// default) leaves the simulation byte-identical to one without any
/// serving machinery.
#[derive(Debug, Clone, Default)]
pub struct ServePlan {
    /// The serve groups, in order; a request's
    /// [`RequestRecord::group`] indexes this list.
    pub groups: Vec<ServeGroup>,
}

impl ServePlan {
    /// An empty plan to extend with [`ServePlan::group`].
    pub fn new() -> Self {
        ServePlan::default()
    }

    /// Appends a group.
    pub fn group(mut self, group: ServeGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// `true` when the plan has no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Why a request was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DropKind {
    /// The queue was full and the group rejects newcomers.
    Rejected,
    /// The request was shed from the front of a full queue to admit a
    /// fresher one ([`AdmissionPolicy::Shed`] / [`AdmissionPolicy::Degrade`]).
    Shed,
    /// The request was still queued when its [`ServeGroup::deadline`]
    /// expired.
    DeadlineExpired,
    /// The request was in flight on a server when the OOM killer took
    /// the process — it was neither completed nor answered.
    Killed,
    /// The request was a hedge duplicate (or hedged primary) cancelled
    /// while still queued because its twin completed first.
    HedgeLoser,
    /// The group's circuit breaker was open ([`BreakerMode::Shed`]) and
    /// turned the arrival away.
    BreakerOpen,
}

/// When and why a request was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// When the drop happened.
    pub at: SimTime,
    /// Why.
    pub kind: DropKind,
}

/// The full lifecycle of one request, as recorded in
/// [`crate::RunTrace::requests`].
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Index of the serve group the request arrived at.
    pub group: usize,
    /// Arrival sequence number within the group.
    pub seq: u64,
    /// When the request arrived.
    pub arrival: SimTime,
    /// When it was dispatched in a batch (`None` if dropped or still
    /// queued at the end of the run).
    pub dispatched: Option<SimTime>,
    /// When its batch's execution context completed (`None` if dropped
    /// or unfinished).
    pub completed: Option<SimTime>,
    /// Set when the admission policy dropped the request.
    pub dropped: Option<DropRecord>,
    /// The server process that ran it, once dispatched.
    pub pid: Option<usize>,
    /// How many requests shared its batch (0 until dispatched).
    pub batch_size: u32,
    /// Whether it ran on the group's degraded engine.
    pub degraded: bool,
    /// Attempt index within the logical request: 0 for the original
    /// submission, `n` for its n-th retry.
    pub attempt: u32,
    /// Index (into [`crate::RunTrace::requests`]) of the attempt this
    /// record retries, `None` for original submissions.
    pub retry_of: Option<usize>,
    /// Index of the in-flight attempt this record hedges, `None` for
    /// non-hedge records.
    pub hedge_of: Option<usize>,
}

impl RequestRecord {
    /// End-to-end latency (arrival → completion), for served requests.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completed
            .map(|done| done.saturating_since(self.arrival))
    }

    /// Time spent queued before dispatch, for dispatched requests.
    pub fn queue_wait(&self) -> Option<SimDuration> {
        self.dispatched.map(|at| at.saturating_since(self.arrival))
    }

    /// `true` when the request completed service.
    pub fn served(&self) -> bool {
        self.completed.is_some()
    }

    /// `true` when the request was neither served nor dropped — still
    /// queued or in flight when the simulation ended.
    pub fn unfinished(&self) -> bool {
        self.completed.is_none() && self.dropped.is_none()
    }

    /// `true` when this record is the root of its logical request — not
    /// a retry and not a hedge duplicate. Reports count logical requests
    /// by their roots so retries and hedges never double-count goodput.
    pub fn is_root(&self) -> bool {
        self.retry_of.is_none() && self.hedge_of.is_none()
    }
}

/// A serving-side event, for queue-depth timelines and trace export.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// When it happened.
    pub time: SimTime,
    /// The serve group it belongs to.
    pub group: usize,
    /// What happened.
    pub kind: ServeEventKind,
}

/// What kind of serving event occurred.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeEventKind {
    /// The batcher formed and dispatched a batch.
    BatchFormed {
        /// The server process it went to.
        pid: usize,
        /// Requests in the batch.
        size: u32,
        /// How long the batch's oldest request had waited.
        oldest_wait: SimDuration,
        /// Requests still queued after the batch left.
        queue_depth: usize,
        /// Whether the batch ran on the degraded engine.
        degraded: bool,
    },
    /// Admission pressure flipped the group into degraded mode.
    DegradeEnter {
        /// Queue depth at the flip.
        queue_depth: usize,
    },
    /// The queue drained and the group returned to its normal engine.
    DegradeExit {
        /// Queue depth at the flip.
        queue_depth: usize,
    },
    /// The circuit breaker tripped open.
    BreakerTrip {
        /// Rolling error rate that tripped it.
        error_rate: f64,
    },
    /// The breaker's cooldown elapsed; the next admission is the probe.
    BreakerHalfOpen,
    /// The half-open probe succeeded; the breaker closed.
    BreakerClose,
    /// A serve replica was killed; its in-flight requests failed.
    ReplicaDown {
        /// The killed server process.
        pid: usize,
        /// In-flight requests that died with it.
        failed_inflight: usize,
    },
    /// A killed replica finished restarting and rejoined its group.
    ReplicaUp {
        /// The restarted server process.
        pid: usize,
    },
    /// A killed replica was ejected for good — no restarts left, or its
    /// memory no longer fits.
    ReplicaEjected {
        /// The ejected server process.
        pid: usize,
    },
    /// The autoscaler began provisioning a parked replica; it walks
    /// `Provisioning → Warming → Up` before serving.
    ReplicaProvisioned {
        /// The replica being provisioned.
        pid: usize,
        /// `true` when this provision pays the full cold start (engine
        /// build — no plan in the cache yet); `false` for a warm
        /// plan-load.
        cold: bool,
    },
    /// A provisioned replica finished warming and joined the free pool.
    ReplicaWarmed {
        /// The now-serving replica.
        pid: usize,
    },
    /// The idle-reap timer took an `Up` replica back to parked.
    ReplicaReaped {
        /// The reaped replica.
        pid: usize,
    },
    /// The reaper took the group's last live replica (`min_replicas ==
    /// 0`): the group is parked until the next arrival, which pays the
    /// start cost.
    ParkedToZero,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batcher_dispatches_full_batches_immediately() {
        let p = BatcherPolicy::new(8, SimDuration::from_millis(10));
        let t = SimTime::from_nanos(1_000);
        assert_eq!(p.decide(t, 8, Some(t)), BatchDecision::Dispatch(8));
        assert_eq!(p.decide(t, 30, Some(t)), BatchDecision::Dispatch(8));
    }

    #[test]
    fn batcher_flushes_partial_batches_at_the_deadline() {
        let p = BatcherPolicy::new(8, SimDuration::from_millis(10));
        let arrived = SimTime::from_nanos(5_000_000);
        let deadline = arrived + SimDuration::from_millis(10);
        assert_eq!(
            p.decide(arrived, 3, Some(arrived)),
            BatchDecision::WaitUntil(deadline)
        );
        assert_eq!(
            p.decide(deadline, 3, Some(arrived)),
            BatchDecision::Dispatch(3)
        );
    }

    #[test]
    fn batcher_idles_on_an_empty_queue() {
        let p = BatcherPolicy::new(4, SimDuration::from_millis(1));
        assert_eq!(p.decide(SimTime::ZERO, 0, None), BatchDecision::Idle);
    }

    #[test]
    fn zero_delay_degenerates_to_no_batching() {
        let p = BatcherPolicy::new(16, SimDuration::ZERO);
        let t = SimTime::from_nanos(77);
        assert_eq!(p.decide(t, 1, Some(t)), BatchDecision::Dispatch(1));
    }

    #[test]
    fn request_record_accessors() {
        let r = RequestRecord {
            group: 0,
            seq: 4,
            arrival: SimTime::from_nanos(100),
            dispatched: Some(SimTime::from_nanos(300)),
            completed: Some(SimTime::from_nanos(1_100)),
            dropped: None,
            pid: Some(1),
            batch_size: 2,
            degraded: false,
            attempt: 0,
            retry_of: None,
            hedge_of: None,
        };
        assert_eq!(r.queue_wait(), Some(SimDuration::from_nanos(200)));
        assert_eq!(r.latency(), Some(SimDuration::from_nanos(1_000)));
        assert!(r.served() && !r.unfinished());
        assert!(r.is_root());

        let dropped = RequestRecord {
            dispatched: None,
            completed: None,
            pid: None,
            batch_size: 0,
            dropped: Some(DropRecord {
                at: SimTime::from_nanos(100),
                kind: DropKind::Rejected,
            }),
            ..r
        };
        assert!(!dropped.served() && !dropped.unfinished());
        assert_eq!(dropped.latency(), None);

        let retry = RequestRecord {
            retry_of: Some(0),
            attempt: 1,
            ..r.clone()
        };
        assert!(!retry.is_root());
        let hedge = RequestRecord {
            hedge_of: Some(0),
            ..r
        };
        assert!(!hedge.is_root());
    }

    #[test]
    fn retry_backoff_grows_exponentially() {
        let p = RetryPolicy::new(4, SimDuration::from_millis(2)).multiplier(2.0);
        assert_eq!(p.base_backoff_for(1), SimDuration::from_millis(2));
        assert_eq!(p.base_backoff_for(2), SimDuration::from_millis(4));
        assert_eq!(p.base_backoff_for(3), SimDuration::from_millis(8));
    }

    #[test]
    fn recovery_clamps_restart_cost() {
        let p = RecoveryPolicy::new(SimDuration::ZERO, 3);
        assert_eq!(p.restart_cost, SimDuration::from_millis(1));
        assert_eq!(p.max_restarts, 3);
    }

    #[test]
    fn breaker_builder_defaults() {
        let b = BreakerPolicy::new(32, 0.5);
        assert_eq!(b.window, 32);
        assert_eq!(b.min_samples, 8);
        assert_eq!(b.mode, BreakerMode::Shed);
        let b = b.mode(BreakerMode::Brownout).min_samples(0);
        assert_eq!(b.mode, BreakerMode::Brownout);
        assert_eq!(b.min_samples, 1, "clamped");
    }

    #[test]
    fn autoscaler_scales_up_on_queue_pressure() {
        let p = AutoscalerPolicy::new(1, 4).target_queue_per_replica(4.0);
        let calm = ScaleSignals {
            queued: 3,
            up: 1,
            pending: 0,
            arrival_rate: 10.0,
            slo_burn: 0.0,
        };
        assert_eq!(p.decide(calm), ScaleDecision::Hold);
        let pressured = ScaleSignals { queued: 9, ..calm };
        // ceil(9 / 4) = 3 wanted, 1 up → +2.
        assert_eq!(p.decide(pressured), ScaleDecision::Up(2));
        let flood = ScaleSignals { queued: 64, ..calm };
        // Wants 16 but the ceiling is 4 → +3.
        assert_eq!(p.decide(flood), ScaleDecision::Up(3));
    }

    #[test]
    fn autoscaler_counts_pending_as_capacity() {
        let p = AutoscalerPolicy::new(0, 4);
        let s = ScaleSignals {
            queued: 9,
            up: 0,
            pending: 3,
            arrival_rate: 0.0,
            slo_burn: 0.0,
        };
        // 3 already provisioning cover the ceil(9/4) = 3 wanted.
        assert_eq!(p.decide(s), ScaleDecision::Hold);
    }

    #[test]
    fn autoscaler_parked_group_wakes_for_one_request() {
        let p = AutoscalerPolicy::new(0, 4);
        let s = ScaleSignals {
            queued: 1,
            up: 0,
            pending: 0,
            arrival_rate: 0.0,
            slo_burn: 0.0,
        };
        assert_eq!(p.decide(s), ScaleDecision::Up(1));
    }

    #[test]
    fn autoscaler_rate_and_burn_criteria() {
        let p = AutoscalerPolicy::new(1, 8)
            .max_rate_per_replica(100.0)
            .slo_target(SimDuration::from_millis(50))
            .burn_threshold(0.5);
        let idle_queue = ScaleSignals {
            queued: 0,
            up: 1,
            pending: 0,
            arrival_rate: 350.0,
            slo_burn: 0.0,
        };
        // Rate alone asks for ceil(350/100) = 4 replicas.
        assert_eq!(p.decide(idle_queue), ScaleDecision::Up(3));
        let burning = ScaleSignals {
            arrival_rate: 0.0,
            slo_burn: 0.6,
            ..idle_queue
        };
        assert_eq!(p.decide(burning), ScaleDecision::Up(1));
    }

    #[test]
    fn autoscaler_respects_min_floor() {
        let p = AutoscalerPolicy::new(2, 4);
        let s = ScaleSignals {
            queued: 0,
            up: 1,
            pending: 0,
            arrival_rate: 0.0,
            slo_burn: 0.0,
        };
        // Below the floor (a replica was ejected): refill to min.
        assert_eq!(p.decide(s), ScaleDecision::Up(1));
    }

    #[test]
    fn autoscaler_builder_clamps() {
        let p = AutoscalerPolicy::new(6, 4);
        assert_eq!(p.min_replicas, 4, "min clamped to max");
        let p = AutoscalerPolicy::new(0, 2)
            .target_queue_per_replica(0.0)
            .start_costs(SimDuration::ZERO, SimDuration::from_millis(40))
            .evaluate_every(SimDuration::ZERO);
        assert_eq!(p.target_queue_per_replica, 1.0);
        assert_eq!(p.warm_start, SimDuration::from_millis(40));
        assert_eq!(p.cold_start, SimDuration::from_millis(40), "cold ≥ warm");
        assert_eq!(p.evaluate_every, SimDuration::from_millis(1));
    }

    #[test]
    fn plan_builder_collects_groups() {
        let plan = ServePlan::new().group(
            ServeGroup::new("g", ArrivalProcess::poisson(10.0))
                .members([0, 1])
                .queue_cap(0)
                .admission(AdmissionPolicy::Shed),
        );
        assert!(!plan.is_empty());
        assert_eq!(plan.groups[0].members, vec![0, 1]);
        assert_eq!(plan.groups[0].queue_cap, 1, "clamped");
        assert_eq!(plan.groups[0].admission, AdmissionPolicy::Shed);
    }
}
