//! Report emitters: markdown tables, CSV, and JSON result dumps.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use serde::Serialize;

/// A simple rectangular table with named columns.
///
/// # Examples
///
/// ```
/// use jetsim::report::Table;
///
/// let mut table = Table::new(["precision", "throughput"]);
/// table.row(["int8", "396.7"]);
/// table.row(["fp16", "260.0"]);
/// assert!(table.to_markdown().contains("| int8 | 396.7 |"));
/// assert_eq!(table.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header count.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders CSV (values containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

/// Serialises `value` as pretty JSON to `path`, creating parent
/// directories.
///
/// # Errors
///
/// Propagates filesystem errors; serialisation of plain result structs
/// cannot fail.
pub fn save_json<T: Serialize, P: AsRef<Path>>(path: P, value: &T) -> io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value).map_err(io::Error::other)?;
    fs::write(path, json)
}

/// Formats a float with sensible precision for tables (3 significant
/// decimals below 10, 1 decimal above).
pub fn fmt_num(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_structure() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["x"]);
        t.row(["a,b"]);
        t.row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn save_and_read_back() {
        let dir = std::env::temp_dir().join("jetsim_report_test");
        let path = dir.join("t.csv");
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        t.save_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "h\nv\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("jetsim_json_test");
        let path = dir.join("v.json");
        save_json(&path, &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('2'));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fmt_num_scales() {
        assert_eq!(fmt_num(1234.5), "1234");
        assert_eq!(fmt_num(42.34), "42.3");
        assert_eq!(fmt_num(3.17159), "3.17");
    }

    #[test]
    fn empty_table() {
        let t = Table::new(["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(format!("{t}"), t.to_markdown());
    }
}
