//! Bottleneck classification: the paper's §7 diagnosis as code.
//!
//! The paper's central finding is that "GPU utilisation" alone misleads:
//! a workload can report ~100 % GPU utilisation while SMs idle, tensor
//! cores starve, or the CPU scheduler strangles the launch path. This
//! module reads both profiling phases and names the dominant limiter.

use std::fmt;

use crate::profiler::WorkloadProfile;

/// What limits a workload's throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// Host threads spend EC time blocked by the CPU scheduler —
    /// the ≥4-process regime on the Orin Nano (§7 observation 1).
    CpuBlockingBound,
    /// The GPU starves waiting for kernel launches; per-kernel CPU launch
    /// costs dominate (small batches, many small kernels).
    LaunchBound,
    /// Kernels are limited by arithmetic throughput.
    ComputeBound,
    /// Kernels are limited by DRAM bandwidth.
    MemoryBandwidthBound,
    /// Multiple processes time-share the GPU; per-process throughput
    /// falls although the GPU stays busy.
    GpuContention,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Bottleneck::CpuBlockingBound => "CPU-blocking-bound",
            Bottleneck::LaunchBound => "launch-bound",
            Bottleneck::ComputeBound => "compute-bound",
            Bottleneck::MemoryBandwidthBound => "memory-bandwidth-bound",
            Bottleneck::GpuContention => "GPU-contention-bound",
        };
        f.write_str(name)
    }
}

/// Secondary conditions worth flagging alongside the primary limiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flag {
    /// DVFS pulled the GPU below its top frequency to defend the power
    /// budget (§6.1.2's fp32 anomaly).
    DvfsThrottled,
    /// Tensor cores run below 30 % activity despite a TC-eligible
    /// precision (§6.1.4).
    TensorCoresUnderutilized,
    /// Issue-slot utilisation sits near the paper's ~25 % average —
    /// instruction stalls even while SMs stay resident (§6.1.3).
    IssueStalls,
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Flag::DvfsThrottled => "DVFS-throttled",
            Flag::TensorCoresUnderutilized => "tensor cores underutilised",
            Flag::IssueStalls => "issue-slot stalls",
        };
        f.write_str(name)
    }
}

/// The outcome of diagnosing a [`WorkloadProfile`].
#[derive(Debug, Clone)]
pub struct BottleneckReport {
    /// The dominant limiter.
    pub primary: Bottleneck,
    /// Secondary conditions present.
    pub flags: Vec<Flag>,
    /// Human-readable evidence lines, one per conclusion.
    pub evidence: Vec<String>,
}

impl BottleneckReport {
    /// Diagnoses a workload profile.
    pub fn diagnose(profile: &WorkloadProfile) -> Self {
        let mut evidence = Vec::new();
        let mut flags = Vec::new();

        let ec = profile.kernel.mean_ec_time.as_secs_f64().max(f64::EPSILON);
        let blocking_frac = profile.kernel.mean_blocking_time.as_secs_f64() / ec;
        let launch_frac = profile.kernel.mean_launch_time.as_secs_f64() / ec;
        let gpu_frac = profile
            .phase1_trace
            .processes
            .iter()
            .map(|p| p.mean_gpu_time.as_secs_f64())
            .sum::<f64>()
            / profile.phase1_trace.processes.len().max(1) as f64
            / ec;
        let util = profile.soc.gpu_utilization_percent / 100.0;

        // Memory-bound share of GPU busy time, from the traced events.
        let bw = profile.phase2_trace.mem_bandwidth_bytes_per_sec;
        let (mem_bound_time, busy_time) =
            profile
                .phase2_trace
                .kernel_events
                .iter()
                .fold((0.0, 0.0), |(m, b), e| {
                    let d = e.duration().as_secs_f64();
                    let rate = e.bytes as f64 / d.max(f64::EPSILON);
                    (if rate > 0.7 * bw { m + d } else { m }, b + d)
                });
        let mem_share = if busy_time > 0.0 {
            mem_bound_time / busy_time
        } else {
            0.0
        };

        let primary = if blocking_frac > 0.3 {
            evidence.push(format!(
                "{:.0}% of mean EC time is scheduler blocking",
                blocking_frac * 100.0
            ));
            Bottleneck::CpuBlockingBound
        } else if util < 0.75 && launch_frac > 0.4 {
            evidence.push(format!(
                "GPU only {:.0}% busy while launches take {:.0}% of EC time",
                util * 100.0,
                launch_frac * 100.0
            ));
            Bottleneck::LaunchBound
        } else if mem_share > 0.5 {
            evidence.push(format!(
                "{:.0}% of GPU busy time runs at >70% of DRAM bandwidth",
                mem_share * 100.0
            ));
            Bottleneck::MemoryBandwidthBound
        } else if profile.processes > 1 && gpu_frac < 0.6 {
            evidence.push(format!(
                "{} processes time-share the GPU; each EC holds it only {:.0}% of its span",
                profile.processes,
                gpu_frac * 100.0
            ));
            Bottleneck::GpuContention
        } else {
            evidence.push(format!(
                "GPU {:.0}% busy, launches {:.0}% and blocking {:.0}% of EC time",
                util * 100.0,
                launch_frac * 100.0,
                blocking_frac * 100.0
            ));
            Bottleneck::ComputeBound
        };

        let top_mhz = profile.phase1_trace.top_freq_mhz;
        if profile.soc.final_gpu_freq_mhz < top_mhz {
            flags.push(Flag::DvfsThrottled);
            evidence.push(format!(
                "DVFS holds the GPU at {} MHz (top {top_mhz} MHz)",
                profile.soc.final_gpu_freq_mhz
            ));
        }
        let tc_mean = profile.kernel.cdfs.tc.mean();
        if tc_mean < 0.3
            && profile
                .phase2_trace
                .kernel_events
                .iter()
                .any(|e| e.tc_activity > 0.0)
        {
            flags.push(Flag::TensorCoresUnderutilized);
            evidence.push(format!(
                "mean tensor-core activity only {:.0}%",
                tc_mean * 100.0
            ));
        }
        let issue_mean = profile.kernel.cdfs.issue_slot.mean();
        if issue_mean < 0.35 {
            flags.push(Flag::IssueStalls);
            evidence.push(format!(
                "mean issue-slot utilisation {:.0}% (paper average ≈25%)",
                issue_mean * 100.0
            ));
        }

        BottleneckReport {
            primary,
            flags,
            evidence,
        }
    }
}

impl fmt::Display for BottleneckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "primary bottleneck: {}", self.primary)?;
        if !self.flags.is_empty() {
            let flags: Vec<String> = self.flags.iter().map(|x| x.to_string()).collect();
            write!(f, " [{}]", flags.join(", "))?;
        }
        for line in &self.evidence {
            write!(f, "\n  - {line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::profiler::DualPhaseProfiler;
    use crate::Platform;
    use jetsim_des::SimDuration;
    use jetsim_dnn::{zoo, Precision};

    fn profile(
        model: &jetsim_dnn::ModelGraph,
        precision: Precision,
        batch: u32,
        procs: u32,
    ) -> WorkloadProfile {
        DualPhaseProfiler::new(&Platform::orin_nano())
            .deployment(&Deployment::homogeneous(model, precision, batch, procs))
            .unwrap()
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(800))
            .run()
            .unwrap()
    }

    #[test]
    fn oversubscription_is_cpu_blocking_bound() {
        let report = profile(&zoo::resnet50(), Precision::Int8, 1, 8).analyze();
        assert_eq!(report.primary, Bottleneck::CpuBlockingBound, "{report}");
    }

    #[test]
    fn heavy_single_process_is_compute_bound() {
        let report = profile(&zoo::fcn_resnet50(), Precision::Fp16, 1, 1).analyze();
        assert_eq!(report.primary, Bottleneck::ComputeBound, "{report}");
    }

    #[test]
    fn fp32_flags_dvfs() {
        let report = profile(&zoo::fcn_resnet50(), Precision::Fp32, 4, 1).analyze();
        assert!(report.flags.contains(&Flag::DvfsThrottled), "{report}");
    }

    #[test]
    fn issue_stalls_flagged_for_resnet() {
        // Paper §6.1.3: issue-slot utilisation averages ~25%.
        let report = profile(&zoo::resnet50(), Precision::Int8, 1, 1).analyze();
        assert!(report.flags.contains(&Flag::IssueStalls), "{report}");
    }

    #[test]
    fn small_kernel_models_are_launch_bound() {
        // MobileNetV2's tiny depthwise/pointwise kernels leave the GPU
        // half idle at batch 1: the launch path is the limiter.
        let report = profile(&zoo::mobilenet_v2(), Precision::Fp16, 1, 1).analyze();
        assert_eq!(report.primary, Bottleneck::LaunchBound, "{report}");
    }

    #[test]
    fn two_processes_are_gpu_contention_bound() {
        let report = profile(&zoo::yolov8n(), Precision::Int8, 1, 2).analyze();
        assert_eq!(report.primary, Bottleneck::GpuContention, "{report}");
    }

    #[test]
    fn starved_bandwidth_is_memory_bound() {
        // An ablation device with 1/20th of the Orin's DRAM bandwidth
        // pushes every kernel against the roofline's memory wall.
        let mut spec = Platform::orin_nano().device().clone();
        spec.gpu.mem_bandwidth_gbps = 3.0;
        let platform = Platform::from_spec(spec);
        let report = DualPhaseProfiler::new(&platform)
            .deployment(&Deployment::homogeneous(
                &zoo::resnet50(),
                Precision::Fp16,
                4,
                1,
            ))
            .unwrap()
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(800))
            .run()
            .unwrap()
            .analyze();
        assert_eq!(report.primary, Bottleneck::MemoryBandwidthBound, "{report}");
    }

    #[test]
    fn bottleneck_and_flag_display_names() {
        for b in [
            Bottleneck::CpuBlockingBound,
            Bottleneck::LaunchBound,
            Bottleneck::ComputeBound,
            Bottleneck::MemoryBandwidthBound,
            Bottleneck::GpuContention,
        ] {
            assert!(!format!("{b}").is_empty());
        }
        for f in [
            Flag::DvfsThrottled,
            Flag::TensorCoresUnderutilized,
            Flag::IssueStalls,
        ] {
            assert!(!format!("{f}").is_empty());
        }
    }

    #[test]
    fn evidence_is_never_empty() {
        let report = profile(&zoo::yolov8n(), Precision::Int8, 1, 2).analyze();
        assert!(!report.evidence.is_empty());
        let text = format!("{report}");
        assert!(text.contains("primary bottleneck"));
    }
}
