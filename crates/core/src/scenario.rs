//! Declarative scenario files: the whole experiment config as one
//! serde-backed document.
//!
//! A [`ScenarioSpec`] captures everything the `jetsim-serve` and
//! `jetsim-trtexec` CLIs take as flags — platform, window, seed, GPU
//! policy, faults, resilience knobs, autoscaling, and the tenant list —
//! as a plain data value with **every field optional**. Missing fields
//! mean "use the default", which makes a scenario simultaneously:
//!
//! * a complete experiment description (`--scenario run.toml`),
//! * an overlay (CLI flags parse into a sparse `ScenarioSpec` that is
//!   [`ScenarioSpec::merge`]d over the file), and
//! * a reproducibility artefact (`--dump-scenario` prints the merged
//!   document; re-running it replays the experiment byte for bit).
//!
//! Scenarios round-trip through two encodings: JSON (via the workspace
//! serde stub) and a TOML subset — top-level `key = value` pairs,
//! `[table]` headers and `[[array-of-tables]]` headers, which covers
//! this schema exactly. [`std::fmt::Display`] renders TOML;
//! [`std::str::FromStr`] sniffs the first non-space byte (`{` = JSON).
//!
//! Field values reuse the CLI grammars verbatim — durations are strings
//! like `"50ms"`, arrivals `"poisson:200"` or
//! `"mmpp:CALM:BURST:CALM_MS:BURST_MS"`, tenants either positional
//! `model:precision:batch[:count[:priority]]` or key=value form — so a
//! scenario reads exactly like the command line it replaces.

use std::fmt;
use std::str::FromStr;

use jetsim_des::{ArrivalProcess, SimDuration};
use serde::{Deserialize, Serialize, Value};

/// One experiment, fully described: every CLI flag as an optional field.
///
/// `max_delay`, `queue_cap` and `admission` at this level are defaults
/// for tenants that do not set their own. Serving-only fields (SLO,
/// resilience, autoscaling, arrivals) are ignored by `jetsim-trtexec`,
/// which reads only the closed-loop subset: `device`, `seed`,
/// `duration`, `gpu_policy`, `fault_seed` and the tenant `spec` strings.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Platform name (`orin-nano`, `jetson-nano`, `cloud-a40`, or their
    /// short aliases).
    pub device: Option<String>,
    /// RNG seed; identical scenarios and seeds replay bit for bit.
    pub seed: Option<u64>,
    /// Measured duration (duration grammar: `us`/`ms`/`s` suffix or
    /// bare seconds).
    pub duration: Option<String>,
    /// Warmup excluded from reports (duration grammar).
    pub warmup: Option<String>,
    /// Latency SLO (duration grammar).
    pub slo: Option<String>,
    /// GPU scheduling policy (`rr`, `fifo`, `priority[:PENALTY_US]`,
    /// `mps[:OVERLAP]`).
    pub gpu_policy: Option<String>,
    /// Seed for an injected fault plan; present = faults armed.
    pub fault_seed: Option<u64>,
    /// Queueing deadline (duration grammar).
    pub deadline: Option<String>,
    /// Total retry attempts.
    pub retry: Option<u32>,
    /// Hedge trigger: `"auto"` or a duration.
    pub hedge: Option<String>,
    /// Circuit-breaker mode: `"shed"` or `"brownout"`.
    pub breaker: Option<String>,
    /// Max replica restarts after an OOM kill.
    pub recovery: Option<u32>,
    /// Default batching deadline for tenants without their own
    /// (duration grammar).
    pub max_delay: Option<String>,
    /// Default admission-queue capacity.
    pub queue_cap: Option<u64>,
    /// Default admission policy: `reject`, `shed` or `degrade`.
    pub admission: Option<String>,
    /// Spec-wide autoscaler, applied to tenants without their own.
    pub autoscale: Option<AutoscaleScenario>,
    /// Fleet layer: replicate this scenario across N sites behind a
    /// network model and a router (read by `jetsim-fleet`; the
    /// single-device CLIs ignore it).
    pub fleet: Option<FleetScenario>,
    /// The tenants. An overlay with tenants replaces the base list
    /// wholesale (CLI `--tenant` flags redefine the workload).
    pub tenants: Option<Vec<TenantScenario>>,
}

/// One tenant of a scenario.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantScenario {
    /// Tenant spec in either `--tenant` grammar (positional or
    /// key=value). Required when the scenario is resolved.
    pub spec: Option<String>,
    /// Arrival process (`poisson:RATE` or
    /// `mmpp:CALM:BURST:CALM_MS:BURST_MS`); serving CLIs default to
    /// `poisson:100`.
    pub arrival: Option<String>,
    /// Batching deadline override (duration grammar).
    pub max_delay: Option<String>,
    /// Admission-queue capacity override.
    pub queue_cap: Option<u64>,
    /// Admission policy override.
    pub admission: Option<String>,
    /// Per-tenant autoscaler (overrides the spec-wide one).
    pub autoscale: Option<AutoscaleScenario>,
}

/// Autoscaling knobs of a scenario (see the serve crate's
/// `AutoscaleSpec` for semantics and defaults).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AutoscaleScenario {
    /// Replica floor (0 = scale to zero). Defaults to 1.
    pub min_replicas: Option<u32>,
    /// Replica ceiling; defaults to the tenant's instance count.
    pub max_replicas: Option<u32>,
    /// Queued requests per up replica that trigger a scale-up.
    pub target_queue: Option<f64>,
    /// Idle time before a replica above the floor is reaped (duration
    /// grammar).
    pub keep_alive: Option<String>,
    /// Autoscaler evaluation interval (duration grammar).
    pub evaluate_every: Option<String>,
    /// Enable the SLO-burn scale-up criterion.
    pub slo_burn: Option<bool>,
    /// Replica start cost: `"auto"` (derive cold/warm from the engine
    /// cache) or a fixed duration.
    pub start_cost: Option<String>,
}

/// Fleet knobs of a scenario (see the fleet crate's `FleetSpec` for
/// semantics and defaults): how many sites replicate the scenario, the
/// routing policy, and the network model between users and sites.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Number of edge sites, each running this scenario's deployment.
    /// Defaults to 1.
    pub sites: Option<u32>,
    /// Routing policy: `rr`, `least_queue`, `locality` or `offload`.
    /// Defaults to `rr`.
    pub router: Option<String>,
    /// Add a cloud tier behind its own RTT that the `offload` router
    /// escalates to. Defaults to false.
    pub cloud: Option<bool>,
    /// Platform name for the cloud tier (defaults to `cloud-a40`).
    pub cloud_device: Option<String>,
    /// Base one-way network latency per edge link (duration grammar).
    pub base_latency: Option<String>,
    /// Uniform ± jitter bound on each transfer (duration grammar).
    pub jitter: Option<String>,
    /// Link bandwidth in Mbit/s (payload transfer cost).
    pub bandwidth_mbps: Option<f64>,
    /// Request payload in KiB (uplink transfer cost).
    pub request_kb: Option<f64>,
    /// Response payload in KiB (downlink transfer cost).
    pub response_kb: Option<f64>,
    /// Extra one-way RTT-derived latency to the cloud tier (duration
    /// grammar).
    pub cloud_rtt: Option<String>,
    /// Telemetry snapshot period for load-aware routing (duration
    /// grammar) — staler snapshots mean blinder routers.
    pub telemetry_every: Option<String>,
}

macro_rules! merge_fields {
    ($base:expr, $overlay:expr; $($field:ident),+ $(,)?) => {{
        Self {
            $($field: $overlay.$field.clone().or_else(|| $base.$field.clone()),)+
        }
    }};
}

impl ScenarioSpec {
    /// Layers `overlay` over `self`: any field the overlay sets wins,
    /// anything it leaves `None` falls through to `self`. The tenant
    /// list and the autoscale and fleet tables are replaced wholesale
    /// when the overlay provides them (an overlay that names tenants
    /// redefines the workload; it does not splice into the base's
    /// list).
    pub fn merge(&self, overlay: &ScenarioSpec) -> ScenarioSpec {
        merge_fields!(self, overlay;
            device, seed, duration, warmup, slo, gpu_policy, fault_seed,
            deadline, retry, hedge, breaker, recovery, max_delay,
            queue_cap, admission, autoscale, fleet, tenants,
        )
    }

    /// Renders the scenario as the TOML subset [`ScenarioSpec`] parses:
    /// unset fields are omitted, so parsing the output reproduces
    /// `self` exactly.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        write_toml_table(&mut out, &self.to_value(), &[]);
        out
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_toml())
    }
}

impl FromStr for ScenarioSpec {
    type Err = String;

    /// Parses a scenario document: JSON when the first non-space byte
    /// is `{`, the TOML subset otherwise.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let value = if s.trim_start().starts_with('{') {
            serde_json::from_str::<Value>(s).map_err(|e| format!("scenario JSON: {e}"))?
        } else {
            parse_toml(s)?
        };
        ScenarioSpec::from_value(&value).map_err(|e| format!("scenario: {e}"))
    }
}

// ---------------------------------------------------------------------
// Shared CLI value grammars
// ---------------------------------------------------------------------

/// Parses the CLI duration grammar: `50ms`, `200us`, `30s`, or a bare
/// number of seconds.
///
/// # Errors
///
/// Returns a message naming the offending literal.
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let (digits, scale) = if let Some(v) = s.strip_suffix("us") {
        (v, 1e-6)
    } else if let Some(v) = s.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1.0)
    } else {
        (s, 1.0)
    };
    let value: f64 = digits
        .parse()
        .map_err(|_| format!("bad duration `{s}` (want e.g. 50ms, 200us, 30s)"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("bad duration `{s}`: must be non-negative"));
    }
    Ok(SimDuration::from_secs_f64(value * scale))
}

/// Parses the CLI arrival grammar: `poisson:RATE` or
/// `mmpp:CALM:BURST:CALM_MS:BURST_MS`.
///
/// # Errors
///
/// Returns a message naming the offending field.
pub fn parse_arrival(s: &str) -> Result<ArrivalProcess, String> {
    let grammar = "want poisson:RATE or mmpp:CALM:BURST:CALM_MS:BURST_MS";
    let (kind, rest) = s
        .split_once(':')
        .ok_or_else(|| format!("bad arrival `{s}`: {grammar}"))?;
    let rate = |v: &str, what: &str| -> Result<f64, String> {
        let r: f64 = v
            .parse()
            .map_err(|_| format!("bad arrival `{s}`: {what} is not a number"))?;
        if !r.is_finite() || r <= 0.0 {
            return Err(format!("bad arrival `{s}`: {what} must be positive"));
        }
        Ok(r)
    };
    match kind {
        "poisson" => Ok(ArrivalProcess::poisson(rate(rest, "rate")?)),
        "mmpp" => {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 4 {
                return Err(format!("bad arrival `{s}`: {grammar}"));
            }
            Ok(ArrivalProcess::mmpp(
                rate(parts[0], "calm rate")?,
                rate(parts[1], "burst rate")?,
                SimDuration::from_secs_f64(rate(parts[2], "calm dwell (ms)")? * 1e-3),
                SimDuration::from_secs_f64(rate(parts[3], "burst dwell (ms)")? * 1e-3),
            ))
        }
        other => Err(format!(
            "bad arrival `{s}`: unknown process `{other}`; {grammar}"
        )),
    }
}

/// Cursor over CLI argv shared by every jetsim binary: yields flags
/// split on `=` and pulls space-separated operands on demand, so each
/// CLI accepts both `--flag=value` and `--flag value` spellings without
/// re-implementing the machinery.
///
/// # Examples
///
/// ```
/// use jetsim::scenario::FlagCursor;
///
/// let argv = ["--seed=7", "--duration", "2s", "--json"].map(String::from);
/// let mut cursor = FlagCursor::new(argv.into_iter());
/// let (key, mut value) = cursor.next_flag().unwrap();
/// assert_eq!((key.as_str(), value.as_deref()), ("--seed", Some("7")));
/// let (key, mut value) = cursor.next_flag().unwrap();
/// assert_eq!(key, "--duration");
/// assert_eq!(cursor.require(&mut value).unwrap(), "2s");
/// let (key, _) = cursor.next_flag().unwrap();
/// assert_eq!(key, "--json");
/// assert!(cursor.next_flag().is_none());
/// ```
#[derive(Debug)]
pub struct FlagCursor<I: Iterator<Item = String>> {
    argv: std::iter::Peekable<I>,
    key: String,
}

impl<I: Iterator<Item = String>> FlagCursor<I> {
    /// Wraps an argv iterator (typically `std::env::args().skip(1)`).
    pub fn new(argv: I) -> Self {
        FlagCursor {
            argv: argv.peekable(),
            key: String::new(),
        }
    }

    /// The next argument as `(flag, inline value)`: `--flag=value`
    /// splits at the first `=`, anything else carries no inline value.
    /// `None` when argv is exhausted.
    pub fn next_flag(&mut self) -> Option<(String, Option<String>)> {
        let arg = self.argv.next()?;
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        self.key.clone_from(&key);
        Some((key, value))
    }

    /// The current flag's operand: the inline `=value` when present,
    /// otherwise the next argv token unless it is itself a flag
    /// (`--flag value` spelling).
    ///
    /// # Errors
    ///
    /// Names the flag when no value is available.
    pub fn require(&mut self, value: &mut Option<String>) -> Result<String, String> {
        if value.is_none() {
            if let Some(next) = self.argv.peek() {
                if !next.starts_with("--") {
                    *value = self.argv.next();
                }
            }
        }
        value
            .clone()
            .ok_or_else(|| format!("{} needs a value", self.key))
    }

    /// Like [`FlagCursor::require`], but validates the operand against
    /// the duration grammar eagerly while returning the raw string (so
    /// overlays stay plain scenario documents).
    ///
    /// # Errors
    ///
    /// Missing operand or a malformed duration literal.
    pub fn require_duration(&mut self, value: &mut Option<String>) -> Result<String, String> {
        let raw = self.require(value)?;
        parse_duration(&raw)?;
        Ok(raw)
    }
}

// ---------------------------------------------------------------------
// TOML subset writer
// ---------------------------------------------------------------------

/// Writes a serde `Value::Map` as the TOML subset: scalars first, then
/// `[path.to.table]` sections, then `[[path.to.array]]` sections, each
/// recursing. `Null` entries (unset `Option` fields) are omitted.
fn write_toml_table(out: &mut String, v: &Value, path: &[&str]) {
    let Some(entries) = v.as_map() else {
        return;
    };
    for (key, value) in entries {
        match value {
            Value::Null | Value::Map(_) | Value::Seq(_) => {}
            scalar => {
                out.push_str(key);
                out.push_str(" = ");
                write_toml_scalar(out, scalar);
                out.push('\n');
            }
        }
    }
    for (key, value) in entries {
        let child_path: Vec<&str> = path.iter().copied().chain([key.as_str()]).collect();
        match value {
            Value::Map(_) => {
                out.push_str(&format!("\n[{}]\n", child_path.join(".")));
                write_toml_table(out, value, &child_path);
            }
            Value::Seq(items) => {
                for item in items {
                    out.push_str(&format!("\n[[{}]]\n", child_path.join(".")));
                    write_toml_table(out, item, &child_path);
                }
            }
            _ => {}
        }
    }
}

fn write_toml_scalar(out: &mut String, v: &Value) {
    match v {
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        // Shortest round-trip float; an integral float renders without
        // a fraction and re-parses as an integer, which the liberal
        // numeric deserialiser coerces back.
        Value::F64(f) => out.push_str(&format!("{f}")),
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Null | Value::Seq(_) | Value::Map(_) => unreachable!("filtered by caller"),
    }
}

// ---------------------------------------------------------------------
// TOML subset parser
// ---------------------------------------------------------------------

/// Parses the TOML subset into a serde `Value::Map`: `key = value`
/// lines, `[table]` and `[[array-of-tables]]` headers (dotted paths
/// descend, through the *last* element of arrays), `#` comments.
fn parse_toml(s: &str) -> Result<Value, String> {
    let mut root: Vec<(String, Value)> = Vec::new();
    let mut path: Vec<String> = Vec::new();
    for (idx, raw) in s.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let at = |m: String| format!("scenario TOML line {}: {m}", idx + 1);
        if let Some(header) = line.strip_prefix("[[").and_then(|h| h.strip_suffix("]]")) {
            let segments = split_header(header).map_err(&at)?;
            table_mut(&mut root, &segments, true).map_err(&at)?;
            path = segments;
        } else if let Some(header) = line.strip_prefix('[').and_then(|h| h.strip_suffix(']')) {
            let segments = split_header(header).map_err(&at)?;
            table_mut(&mut root, &segments, false).map_err(&at)?;
            path = segments;
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() {
                return Err(at("missing key before `=`".to_string()));
            }
            let value = parse_toml_scalar(value.trim()).map_err(&at)?;
            let table = table_mut(&mut root, &path, false).map_err(&at)?;
            match table.iter_mut().find(|(k, _)| k == key) {
                Some((_, slot)) => *slot = value,
                None => table.push((key.to_string(), value)),
            }
        } else {
            return Err(at(format!("cannot parse `{line}`")));
        }
    }
    Ok(Value::Map(root))
}

fn split_header(header: &str) -> Result<Vec<String>, String> {
    let segments: Vec<String> = header.split('.').map(|s| s.trim().to_string()).collect();
    if segments.iter().any(String::is_empty) {
        return Err(format!("empty segment in header `{header}`"));
    }
    Ok(segments)
}

/// Drops a `#` comment, respecting (unescaped) string quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds (creating on demand) the table at `path`. With `append`, the
/// final segment is an array of tables and a fresh element is pushed;
/// otherwise intermediate arrays are traversed through their last
/// element (standard TOML sub-table-of-last-element semantics).
fn table_mut<'a>(
    map: &'a mut Vec<(String, Value)>,
    path: &[String],
    append: bool,
) -> Result<&'a mut Vec<(String, Value)>, String> {
    let Some((first, rest)) = path.split_first() else {
        return Ok(map);
    };
    let idx = match map.iter().position(|(k, _)| k == first) {
        Some(i) => i,
        None => {
            let fresh = if rest.is_empty() && append {
                Value::Seq(Vec::new())
            } else {
                Value::Map(Vec::new())
            };
            map.push((first.clone(), fresh));
            map.len() - 1
        }
    };
    match &mut map[idx].1 {
        Value::Map(m) => {
            if rest.is_empty() {
                if append {
                    return Err(format!("`{first}` is a table, not an array of tables"));
                }
                Ok(m)
            } else {
                table_mut(m, rest, append)
            }
        }
        Value::Seq(items) => {
            if rest.is_empty() && append {
                items.push(Value::Map(Vec::new()));
            }
            match items.last_mut() {
                Some(Value::Map(m)) => {
                    if rest.is_empty() {
                        Ok(m)
                    } else {
                        table_mut(m, rest, append)
                    }
                }
                _ => Err(format!("`{first}` is not an array of tables")),
            }
        }
        _ => Err(format!("`{first}` is not a table")),
    }
}

fn parse_toml_scalar(v: &str) -> Result<Value, String> {
    if let Some(inner) = v.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{v}`"))?;
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => return Err(format!("unknown escape `\\{}`", other.unwrap_or(' '))),
                }
            } else if c == '"' {
                return Err(format!("unescaped quote inside `{v}`"));
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    match v {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(u) = v.parse::<u64>() {
        return Ok(Value::U64(u));
    }
    if let Ok(i) = v.parse::<i64>() {
        return Ok(Value::I64(i));
    }
    if let Ok(f) = v.parse::<f64>() {
        if f.is_finite() {
            return Ok(Value::F64(f));
        }
    }
    Err(format!(
        "cannot parse value `{v}` (want a quoted string, boolean or number)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            device: Some("orin-nano".to_string()),
            seed: Some(7),
            duration: Some("2s".to_string()),
            warmup: Some("200ms".to_string()),
            slo: Some("50ms".to_string()),
            gpu_policy: Some("priority:40".to_string()),
            fault_seed: Some(99),
            deadline: Some("80ms".to_string()),
            retry: Some(3),
            hedge: Some("auto".to_string()),
            breaker: Some("brownout".to_string()),
            recovery: Some(2),
            max_delay: Some("5ms".to_string()),
            queue_cap: Some(64),
            admission: Some("shed".to_string()),
            autoscale: Some(AutoscaleScenario {
                min_replicas: Some(0),
                max_replicas: Some(4),
                target_queue: Some(3.5),
                keep_alive: Some("150ms".to_string()),
                evaluate_every: Some("20ms".to_string()),
                slo_burn: Some(true),
                start_cost: Some("auto".to_string()),
            }),
            fleet: Some(FleetScenario {
                sites: Some(4),
                router: Some("least_queue".to_string()),
                cloud: Some(true),
                cloud_device: Some("cloud-a40".to_string()),
                base_latency: Some("5ms".to_string()),
                jitter: Some("2ms".to_string()),
                bandwidth_mbps: Some(100.0),
                request_kb: Some(128.0),
                response_kb: Some(4.0),
                cloud_rtt: Some("30ms".to_string()),
                telemetry_every: Some("100ms".to_string()),
            }),
            tenants: Some(vec![
                TenantScenario {
                    spec: Some("resnet50:int8:1:4".to_string()),
                    arrival: Some("mmpp:50:400:300:80".to_string()),
                    max_delay: None,
                    queue_cap: Some(32),
                    admission: None,
                    autoscale: Some(AutoscaleScenario {
                        min_replicas: Some(1),
                        ..AutoscaleScenario::default()
                    }),
                },
                TenantScenario {
                    spec: Some("model=yolov8n,precision=fp16,batch=2,sm_share=0.5".to_string()),
                    arrival: Some("poisson:40".to_string()),
                    ..TenantScenario::default()
                },
            ]),
        }
    }

    #[test]
    fn toml_round_trips() {
        let spec = sample();
        let toml = spec.to_toml();
        let back: ScenarioSpec = toml.parse().unwrap();
        assert_eq!(back, spec, "TOML:\n{toml}");
        assert_eq!(format!("{spec}"), toml);
    }

    #[test]
    fn json_round_trips() {
        let spec = sample();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = json.parse().unwrap();
        assert_eq!(back, spec, "JSON:\n{json}");
    }

    #[test]
    fn sparse_scenario_round_trips_and_defaults_stay_none() {
        let spec = ScenarioSpec {
            tenants: Some(vec![TenantScenario {
                spec: Some("resnet50:int8:1".to_string()),
                ..TenantScenario::default()
            }]),
            ..ScenarioSpec::default()
        };
        let back: ScenarioSpec = spec.to_toml().parse().unwrap();
        assert_eq!(back, spec);
        let empty: ScenarioSpec = "".parse().unwrap();
        assert_eq!(empty, ScenarioSpec::default());
    }

    #[test]
    fn toml_comments_and_overwrites() {
        let doc = "\
# a comment line
seed = 1 # trailing comment
seed = 2
device = \"orin-nano\" # hash in comment: #5

[[tenants]]
spec = \"resnet50:int8:1\"

[tenants.autoscale]
min_replicas = 0
";
        let spec: ScenarioSpec = doc.parse().unwrap();
        assert_eq!(spec.seed, Some(2), "later key wins");
        assert_eq!(spec.device.as_deref(), Some("orin-nano"));
        let tenants = spec.tenants.unwrap();
        assert_eq!(tenants.len(), 1);
        assert_eq!(
            tenants[0].autoscale.as_ref().unwrap().min_replicas,
            Some(0),
            "[tenants.autoscale] attaches to the last [[tenants]] element"
        );
    }

    #[test]
    fn toml_errors_name_the_line() {
        let err = "seed = ".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = "[tenants..autoscale]\n"
            .parse::<ScenarioSpec>()
            .unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = "seed = 1\nnonsense\n".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = "seed = \"unterminated\n"
            .parse::<ScenarioSpec>()
            .unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn merge_overlay_wins_fieldwise() {
        let base = sample();
        let overlay = ScenarioSpec {
            seed: Some(42),
            device: Some("jetson-nano".to_string()),
            ..ScenarioSpec::default()
        };
        let merged = base.merge(&overlay);
        assert_eq!(merged.seed, Some(42));
        assert_eq!(merged.device.as_deref(), Some("jetson-nano"));
        assert_eq!(merged.slo, base.slo, "unset overlay fields fall through");
        assert_eq!(merged.tenants, base.tenants);
        // Identity laws.
        assert_eq!(base.merge(&ScenarioSpec::default()), base);
        assert_eq!(ScenarioSpec::default().merge(&base), base);
    }

    #[test]
    fn duration_and_arrival_grammars() {
        assert_eq!(
            parse_duration("50ms").unwrap(),
            SimDuration::from_millis(50)
        );
        assert_eq!(
            parse_duration("200us").unwrap(),
            SimDuration::from_micros(200)
        );
        assert_eq!(parse_duration("2s").unwrap(), SimDuration::from_secs(2));
        assert_eq!(parse_duration("2").unwrap(), SimDuration::from_secs(2));
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("fast").is_err());
        assert!(parse_arrival("poisson:100").is_ok());
        assert!(parse_arrival("mmpp:50:400:300:80").is_ok());
        assert!(parse_arrival("poisson:-3").is_err());
        assert!(parse_arrival("uniform:5").is_err());
        assert!(parse_arrival("mmpp:50:400:300").is_err());
    }
}
