//! `jetsim` — the paper's profiling methodology as a library.
//!
//! This crate reproduces, on a simulated platform, the system built in
//! *Profiling Concurrent Vision Inference Workloads on NVIDIA Jetson*
//! (ISPASS 2025): a dual-phase profiling methodology for concurrent
//! TensorRT vision inference on Jetson-class edge devices, plus the
//! workload analysis that turns raw metrics into deployment decisions.
//!
//! * [`Platform`] — a simulated Jetson board ([`Platform::orin_nano`],
//!   [`Platform::jetson_nano`]) or cloud comparator.
//! * [`Deployment`] — an ordered list of tenants (model × precision ×
//!   batch × count) sharing the device; homogeneous workloads are the
//!   one-tenant case ([`Deployment::homogeneous`]).
//! * [`DualPhaseProfiler`] — phase 1 (`trtexec` + `jetson-stats`,
//!   negligible intrusion) and phase 2 (Nsight-style kernel tracing,
//!   ~50 % throughput cost) in one call, yielding a [`WorkloadProfile`]
//!   with per-tenant breakdowns.
//! * [`analysis`] — bottleneck classification (CPU-blocking-bound,
//!   launch-bound, memory-bound, DVFS-throttled, …).
//! * [`observations`] — the paper's boxed takeaways as executable checks.
//! * [`sweep`] — batch × process-count × precision grids, with OOM cells
//!   reported rather than crashing (the paper's over-deployment reboots).
//! * [`report`] — markdown / CSV / JSON emitters for the figures.
//!
//! # Examples
//!
//! ```
//! use jetsim::prelude::*;
//!
//! let platform = Platform::orin_nano();
//! let profile = DualPhaseProfiler::new(&platform)
//!     .deployment(&Deployment::homogeneous(&zoo::resnet50(), Precision::Int8, 1, 1))?
//!     .measure(SimDuration::from_millis(600))
//!     .warmup(SimDuration::from_millis(200))
//!     .run()?;
//! assert!(profile.soc.throughput > 100.0);
//! assert!(profile.intrusion > 0.2, "phase 2 costs real throughput");
//! println!("{}", profile.analyze());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod deployment;
pub mod observations;
pub mod plan;
pub mod platform;
pub mod profiler;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use analysis::{Bottleneck, BottleneckReport};
pub use deployment::{Deployment, DeploymentError, Tenant, TenantMetrics};
pub use platform::Platform;
pub use profiler::{DualPhaseProfiler, WorkloadProfile};
pub use scenario::{AutoscaleScenario, FleetScenario, ScenarioSpec, TenantScenario};
pub use sweep::{CellChaos, CellMetrics, CellOutcome, SupervisorPolicy, SweepCell, SweepSpec};

/// Convenience re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::analysis::{Bottleneck, BottleneckReport};
    pub use crate::deployment::{Deployment, DeploymentError, Tenant, TenantMetrics};
    pub use crate::platform::Platform;
    pub use crate::profiler::{DualPhaseProfiler, WorkloadProfile};
    pub use crate::report::Table;
    pub use crate::sweep::{
        CellChaos, CellMetrics, CellOutcome, SupervisorPolicy, SweepCell, SweepSpec,
    };
    pub use jetsim_des::{SimDuration, SimTime};
    pub use jetsim_dnn::{zoo, ModelGraph, Precision};
    pub use jetsim_profile::{JetsonStatsReport, NsightReport};
    pub use jetsim_sim::{ProfilerMode, RunTrace, SimConfig, Simulation};
}
