//! The paper's dual-phase profiling methodology (§4).

use std::fmt;

use jetsim_des::SimDuration;
use jetsim_dnn::{ModelGraph, Precision};
use jetsim_profile::{JetsonStatsReport, NsightReport};
use jetsim_sim::{ProfilerMode, SimConfig, SimError, Simulation};
use jetsim_trt::BuildError;

use crate::analysis::BottleneckReport;
use crate::deployment::{Deployment, DeploymentError, TenantMetrics};
use crate::platform::Platform;

/// Errors from the profiler facade.
#[derive(Debug)]
pub enum ProfileError {
    /// Engine building failed.
    Build(BuildError),
    /// A deployment could not be assembled (bad tenant spec or a
    /// tenant's engine failed to build).
    Deployment(DeploymentError),
    /// The simulation rejected the deployment (usually out of memory).
    Sim(SimError),
    /// Phase 2 recorded no kernel events (measurement window too short).
    EmptyTrace,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Build(e) => write!(f, "engine build failed: {e}"),
            ProfileError::Deployment(e) => write!(f, "deployment rejected: {e}"),
            ProfileError::Sim(e) => write!(f, "simulation rejected: {e}"),
            ProfileError::EmptyTrace => {
                f.write_str("phase 2 recorded no kernels; lengthen the measurement window")
            }
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Build(e) => Some(e),
            ProfileError::Deployment(e) => Some(e),
            ProfileError::Sim(e) => Some(e),
            ProfileError::EmptyTrace => None,
        }
    }
}

impl From<BuildError> for ProfileError {
    fn from(e: BuildError) -> Self {
        ProfileError::Build(e)
    }
}

impl From<DeploymentError> for ProfileError {
    fn from(e: DeploymentError) -> Self {
        ProfileError::Deployment(e)
    }
}

impl From<SimError> for ProfileError {
    fn from(e: SimError) -> Self {
        ProfileError::Sim(e)
    }
}

/// Runs the paper's two profiling phases over one workload mix and
/// collects both tiers of metrics.
///
/// Phase 1 pairs the `trtexec` throughput counters with the lightweight
/// `jetson-stats` sampler; phase 2 re-runs the same workload under
/// Nsight-style kernel tracing, paying the intrusion the paper reports
/// (~50 % throughput) to obtain SM / issue-slot / tensor-core CDFs and
/// the EC decomposition.
///
/// # Examples
///
/// Homogeneous (the paper's setup) via [`Deployment::homogeneous`]:
///
/// ```
/// use jetsim::deployment::Deployment;
/// use jetsim::{DualPhaseProfiler, Platform};
/// use jetsim_des::SimDuration;
/// use jetsim_dnn::{zoo, Precision};
///
/// let profile = DualPhaseProfiler::new(&Platform::jetson_nano())
///     .deployment(&Deployment::homogeneous(&zoo::yolov8n(), Precision::Fp16, 1, 1))?
///     .warmup(SimDuration::from_millis(150))
///     .measure(SimDuration::from_millis(600))
///     .run()?;
/// assert!((10.0..35.0).contains(&profile.soc.throughput));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Mixed tenants break down per tenant in
/// [`WorkloadProfile::tenants`]:
///
/// ```
/// use jetsim::deployment::{Deployment, Tenant};
/// use jetsim::{DualPhaseProfiler, Platform};
/// use jetsim_des::SimDuration;
/// use jetsim_dnn::{zoo, Precision};
///
/// let mixed = Deployment::new()
///     .tenant(Tenant::new(zoo::resnet50(), Precision::Int8, 1))
///     .tenant(Tenant::new(zoo::yolov8n(), Precision::Fp16, 4));
/// let profile = DualPhaseProfiler::new(&Platform::orin_nano())
///     .deployment(&mixed)?
///     .warmup(SimDuration::from_millis(150))
///     .measure(SimDuration::from_millis(600))
///     .run()?;
/// assert_eq!(profile.tenants.len(), 2);
/// assert!(profile.tenants.iter().all(|t| t.throughput > 0.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DualPhaseProfiler {
    platform: Platform,
    deployment: Deployment,
    warmup: SimDuration,
    measure: SimDuration,
    seed: u64,
}

impl DualPhaseProfiler {
    /// Creates a profiler for `platform`.
    pub fn new(platform: &Platform) -> Self {
        DualPhaseProfiler {
            platform: platform.clone(),
            deployment: Deployment::new(),
            warmup: SimDuration::from_millis(300),
            measure: SimDuration::from_millis(1500),
            seed: 0x6A65_7473,
        }
    }

    /// Appends a deployment's tenants to the profiled workload and
    /// builds their engines eagerly (served from the process-wide engine
    /// cache), so configuration errors surface here rather than in
    /// [`DualPhaseProfiler::run`].
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Deployment`] when a tenant's engine fails
    /// to build.
    pub fn deployment(mut self, deployment: &Deployment) -> Result<Self, ProfileError> {
        for tenant in deployment.tenants() {
            self.platform
                .build_engine(tenant.model(), tenant.precision(), tenant.batch())
                .map_err(|source| DeploymentError::Build {
                    label: tenant.label(),
                    source,
                })?;
            self.deployment = self.deployment.tenant(tenant.clone());
        }
        Ok(self)
    }

    /// Adds `processes` concurrent instances of `model` at the given
    /// precision and batch size.
    ///
    /// # Errors
    ///
    /// Propagates engine-build failures.
    #[deprecated(
        since = "0.2.0",
        note = "use `deployment(&Deployment::homogeneous(model, precision, batch, processes))`"
    )]
    pub fn workload(
        self,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
        processes: u32,
    ) -> Result<Self, ProfileError> {
        self.deployment(&Deployment::homogeneous(model, precision, batch, processes))
    }

    /// Sets the warmup interval for both phases.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the measured interval for both phases.
    pub fn measure(mut self, measure: SimDuration) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the RNG seed used by both phases.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn config(&self, mode: ProfilerMode) -> Result<SimConfig, ProfileError> {
        let builder = SimConfig::builder(self.platform.device().clone())
            .warmup(self.warmup)
            .measure(self.measure)
            .seed(self.seed)
            .profiler(mode);
        let builder = self.deployment.add_to_config(&self.platform, builder)?;
        Ok(builder.build()?)
    }

    /// Runs both phases and assembles the combined profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Sim`] when the deployment does not fit in
    /// unified memory, and [`ProfileError::EmptyTrace`] when the window
    /// is too short to trace a single kernel.
    pub fn run(self) -> Result<WorkloadProfile, ProfileError> {
        let phase1 = Simulation::new(self.config(ProfilerMode::Lightweight)?)?.run();
        let soc = JetsonStatsReport::from_trace(&phase1);
        let phase2 = Simulation::new(self.config(ProfilerMode::Nsight)?)?.run();
        let kernel = NsightReport::from_trace(&phase2).ok_or(ProfileError::EmptyTrace)?;
        let intrusion = if soc.throughput > 0.0 {
            1.0 - phase2.total_throughput() / soc.throughput
        } else {
            0.0
        };
        let tenants = TenantMetrics::from_trace(&phase1, &self.deployment);
        Ok(WorkloadProfile {
            device_name: self.platform.name().to_string(),
            processes: self.deployment.total_processes(),
            tenants,
            soc,
            kernel,
            phase1_trace: phase1,
            phase2_trace: phase2,
            intrusion,
        })
    }

    /// Runs only phase 1 (lightweight), as one would for pure
    /// throughput/power sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Sim`] for deployments that do not fit.
    pub fn run_phase1(self) -> Result<(JetsonStatsReport, jetsim_sim::RunTrace), ProfileError> {
        let trace = Simulation::new(self.config(ProfilerMode::Lightweight)?)?.run();
        Ok((JetsonStatsReport::from_trace(&trace), trace))
    }
}

/// The combined output of both profiling phases over one workload mix.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// The platform profiled.
    pub device_name: String,
    /// Number of concurrent processes.
    pub processes: u32,
    /// Per-tenant breakdown of the phase-1 trace, in deployment order
    /// (one entry for a homogeneous workload).
    pub tenants: Vec<TenantMetrics>,
    /// Phase-1 SoC/GPU-level report (unperturbed throughput/power).
    pub soc: JetsonStatsReport,
    /// Phase-2 kernel-level report (collected under intrusion).
    pub kernel: NsightReport,
    /// Raw phase-1 trace.
    pub phase1_trace: jetsim_sim::RunTrace,
    /// Raw phase-2 trace.
    pub phase2_trace: jetsim_sim::RunTrace,
    /// Fractional throughput loss phase 2's tracing caused (~0.5 in the
    /// paper).
    pub intrusion: f64,
}

impl WorkloadProfile {
    /// Classifies the dominant bottleneck (see [`crate::analysis`]).
    pub fn analyze(&self) -> BottleneckReport {
        BottleneckReport::diagnose(self)
    }
}

impl fmt::Display for WorkloadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} × {} processes — phase 1: {}",
            self.device_name, self.processes, self.soc
        )?;
        write!(
            f,
            "phase 2 (intrusion {:.0}%): {}",
            self.intrusion * 100.0,
            self.kernel
        )?;
        if self.tenants.len() > 1 {
            for tenant in &self.tenants {
                write!(f, "\n  {tenant}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Tenant;
    use jetsim_dnn::zoo;

    fn quick_profile(procs: u32) -> WorkloadProfile {
        DualPhaseProfiler::new(&Platform::orin_nano())
            .deployment(&Deployment::homogeneous(
                &zoo::resnet50(),
                Precision::Int8,
                1,
                procs,
            ))
            .unwrap()
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(700))
            .run()
            .unwrap()
    }

    #[test]
    fn dual_phase_reports_intrusion() {
        let profile = quick_profile(1);
        assert!(
            (0.25..0.7).contains(&profile.intrusion),
            "paper reports ~50%: {}",
            profile.intrusion
        );
    }

    #[test]
    fn phase1_faster_than_phase2() {
        let profile = quick_profile(1);
        assert!(profile.soc.throughput > profile.phase2_trace.total_throughput());
    }

    #[test]
    fn oom_deployment_is_an_error() {
        let result = DualPhaseProfiler::new(&Platform::jetson_nano())
            .deployment(&Deployment::homogeneous(
                &zoo::fcn_resnet50(),
                Precision::Fp16,
                1,
                4,
            ))
            .unwrap()
            .run();
        assert!(matches!(result, Err(ProfileError::Sim(_))), "{result:?}");
    }

    #[test]
    fn mixed_deployment_profiles_per_tenant() {
        let mixed = Deployment::new()
            .tenant(Tenant::new(zoo::resnet50(), Precision::Int8, 1))
            .tenant(Tenant::new(zoo::yolov8n(), Precision::Fp16, 4));
        let profile = DualPhaseProfiler::new(&Platform::orin_nano())
            .deployment(&mixed)
            .unwrap()
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(700))
            .run()
            .unwrap();
        assert_eq!(profile.processes, 2);
        assert_eq!(profile.tenants.len(), 2);
        assert_eq!(profile.tenants[0].label, "resnet50:int8:b1");
        assert_eq!(profile.tenants[1].label, "yolov8n:fp16:b4");
        let total: f64 = profile.tenants.iter().map(|t| t.throughput).sum();
        assert!((total - profile.soc.throughput).abs() < 1e-9);
        let text = format!("{profile}");
        assert!(
            text.contains("resnet50:int8:b1") && text.contains("yolov8n:fp16:b4"),
            "{text}"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_workload_shim_matches_deployment() {
        // Satellite contract: `workload(...)` must stay a working shim
        // over `Deployment::homogeneous` during the migration window.
        let via_shim = DualPhaseProfiler::new(&Platform::orin_nano())
            .workload(&zoo::resnet50(), Precision::Int8, 1, 2)
            .unwrap()
            .warmup(SimDuration::from_millis(150))
            .measure(SimDuration::from_millis(700))
            .run()
            .unwrap();
        let via_deployment = quick_profile(2);
        assert_eq!(via_shim.soc.throughput, via_deployment.soc.throughput);
        assert_eq!(via_shim.tenants, via_deployment.tenants);
    }

    #[test]
    fn phase1_only_runs() {
        let (report, trace) = DualPhaseProfiler::new(&Platform::orin_nano())
            .deployment(&Deployment::homogeneous(
                &zoo::yolov8n(),
                Precision::Int8,
                1,
                1,
            ))
            .unwrap()
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(500))
            .run_phase1()
            .unwrap();
        assert!(report.throughput > 50.0);
        assert!(!trace.kernel_events.is_empty());
    }

    #[test]
    fn display_mentions_both_phases() {
        let text = format!("{}", quick_profile(1));
        assert!(text.contains("phase 1") && text.contains("phase 2"));
    }

    #[test]
    fn error_display_chains() {
        use std::error::Error;
        let err = ProfileError::Sim(SimError::NoProcesses);
        assert!(err.source().is_some());
        assert!(ProfileError::EmptyTrace.to_string().contains("window"));
    }
}
