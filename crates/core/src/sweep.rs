//! Parameter sweeps: the batch × process-count × precision grids behind
//! the paper's figures 1 and 3–12.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use serde::Serialize;

use jetsim_des::SimDuration;
use jetsim_dnn::{ModelGraph, Precision};
use jetsim_profile::JetsonStatsReport;
use jetsim_sim::{FaultPlan, GpuPolicy, ProfilerMode, SimConfig, SimError, Simulation};
use jetsim_trt::{Engine, EngineBuilder};

use crate::deployment::{Deployment, Tenant, TenantMetrics};
use crate::platform::Platform;

/// Supervision policy for a sweep: what the runner does when a cell
/// panics, runs away, hits OOM, or suffers injected faults.
///
/// The default policy is inert — no fault plan, no event budget, no
/// retries, no chaos — and [`SweepSpec::run`] uses it, so plain sweeps
/// behave exactly as before (byte-identical results).
///
/// # Examples
///
/// ```
/// use jetsim::SupervisorPolicy;
///
/// let policy = SupervisorPolicy::new()
///     .event_budget(50_000_000)
///     .max_retries(3);
/// assert_eq!(policy.max_retries, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SupervisorPolicy {
    /// Abort any cell whose simulation processes more than this many DES
    /// events, reporting it as [`CellOutcome::BudgetExceeded`].
    pub event_budget: Option<u64>,
    /// How many times an OOM cell is retried at degraded parameters
    /// (halve the batch first, then shed processes), and how many times a
    /// transient engine-build failure is retried. `0` disables retries.
    pub max_retries: u32,
    /// Fault plan applied to every cell's simulation (memory spikes,
    /// throttle locks, OOM-killer policy).
    pub faults: FaultPlan,
    /// Chaos injections for supervision tests: force specific grid cells
    /// to panic or to fail engine builds transiently.
    pub chaos: Vec<CellChaos>,
}

impl SupervisorPolicy {
    /// The inert policy (no budget, no retries, no faults, no chaos).
    pub fn new() -> Self {
        SupervisorPolicy::default()
    }

    /// Sets the per-cell DES event budget.
    pub fn event_budget(mut self, events: u64) -> Self {
        self.event_budget = Some(events);
        self
    }

    /// Sets the retry cap for OOM degradation and transient builds.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the fault plan applied to every cell.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Adds a chaos injection.
    pub fn chaos(mut self, chaos: CellChaos) -> Self {
        self.chaos.push(chaos);
        self
    }
}

/// A targeted fault injected into one grid cell, used to exercise the
/// supervisor's isolation and retry paths deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CellChaos {
    /// Panic inside the cell worker at these grid coordinates. The
    /// supervisor must catch it and report [`CellOutcome::Panicked`]
    /// while every other cell completes.
    PanicOn {
        /// Batch coordinate of the victim cell.
        batch: u32,
        /// Process-count coordinate of the victim cell.
        processes: u32,
    },
    /// Make the engine build fail transiently this many times at these
    /// grid coordinates before succeeding — the `cudaErrorUnknown`-style
    /// flakiness long driver sessions exhibit.
    TransientBuild {
        /// How many consecutive build attempts fail before one succeeds.
        failures: u32,
        /// Batch coordinate of the victim cell.
        batch: u32,
        /// Process-count coordinate of the victim cell.
        processes: u32,
    },
}

/// The grid of parameters to sweep.
///
/// # Examples
///
/// ```
/// use jetsim::SweepSpec;
/// use jetsim_dnn::Precision;
///
/// let spec = SweepSpec::new()
///     .precisions([Precision::Int8])
///     .batches([1, 2, 4, 8, 16])
///     .process_counts([1, 2, 4, 8]);
/// assert_eq!(spec.cells(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    precisions: Vec<Precision>,
    batches: Vec<u32>,
    process_counts: Vec<u32>,
    offered_loads: Vec<Option<f64>>,
    gpu_policies: Vec<GpuPolicy>,
    warmup: SimDuration,
    measure: SimDuration,
    seed: u64,
    workers: Option<usize>,
}

impl SweepSpec {
    /// A single-cell spec (batch 1, one process, fp32) to refine with the
    /// builder methods.
    pub fn new() -> Self {
        SweepSpec {
            precisions: vec![Precision::Fp32],
            batches: vec![1],
            process_counts: vec![1],
            offered_loads: vec![None],
            gpu_policies: vec![GpuPolicy::TimesliceRR],
            warmup: SimDuration::from_millis(300),
            measure: SimDuration::from_millis(1500),
            seed: 0x6A65_7473,
            workers: None,
        }
    }

    /// Sets the precisions to sweep.
    pub fn precisions<I: IntoIterator<Item = Precision>>(mut self, p: I) -> Self {
        self.precisions = p.into_iter().collect();
        self
    }

    /// Sets the batch sizes to sweep.
    pub fn batches<I: IntoIterator<Item = u32>>(mut self, b: I) -> Self {
        self.batches = b.into_iter().collect();
        self
    }

    /// Sets the concurrent process counts to sweep.
    pub fn process_counts<I: IntoIterator<Item = u32>>(mut self, n: I) -> Self {
        self.process_counts = n.into_iter().collect();
        self
    }

    /// Sets the offered-load axis: `None` cells run closed-loop
    /// (saturated, the classic grid), `Some(fps)` cells feed every
    /// process an open-loop Poisson stream at that rate — the sweep
    /// analogue of a serving deployment at fixed traffic. Defaults to
    /// `[None]`, so plain sweeps are unchanged.
    pub fn offered_loads<I: IntoIterator<Item = Option<f64>>>(mut self, loads: I) -> Self {
        self.offered_loads = loads.into_iter().collect();
        if self.offered_loads.is_empty() {
            self.offered_loads.push(None);
        }
        self
    }

    /// Sets the GPU scheduling-policy axis: each cell of the grid runs
    /// once per policy. Defaults to `[GpuPolicy::TimesliceRR]` (the
    /// simulator default), so plain sweeps are unchanged. Cell seeds
    /// depend only on workload coordinates, never on the policy, so two
    /// policies see bit-identical arrival/kernel randomness — the
    /// comparison isolates the scheduler.
    pub fn gpu_policies<I: IntoIterator<Item = GpuPolicy>>(mut self, policies: I) -> Self {
        self.gpu_policies = policies.into_iter().collect();
        if self.gpu_policies.is_empty() {
            self.gpu_policies.push(GpuPolicy::TimesliceRR);
        }
        self
    }

    /// Sets the per-cell warmup window.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the per-cell measurement window.
    pub fn measure(mut self, measure: SimDuration) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the RNG seed (each cell derives its own from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the worker-thread count (defaults to the number of available
    /// cores). Cell results are identical whatever the worker count:
    /// each cell's seed depends only on its `(precision, batch,
    /// processes)` coordinates, never on which thread ran it.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.precisions.len()
            * self.batches.len()
            * self.process_counts.len()
            * self.offered_loads.len()
            * self.gpu_policies.len()
    }

    /// Runs the sweep for `model` on `platform`, one simulation per cell,
    /// in parallel across available cores (or the [`SweepSpec::workers`]
    /// override). Cells that exceed unified memory come back as
    /// [`CellOutcome::OutOfMemory`] instead of aborting the sweep — the
    /// paper hit exactly such cells (§6.2.1).
    ///
    /// Dispatch is a lock-free `fetch_add` over the flattened grid: each
    /// worker claims the next cell index, runs it, and keeps the result
    /// in a thread-local vector; results are merged back into grid order
    /// after the scope joins, so no worker ever blocks on a results
    /// mutex. The output is deterministic — identical whatever the
    /// worker count, and identical whether the process-wide engine
    /// cache is cold or warm.
    pub fn run(&self, platform: &Platform, model: &ModelGraph) -> Vec<SweepCell> {
        self.run_supervised(platform, model, &SupervisorPolicy::default())
    }

    /// Runs the sweep under a [`SupervisorPolicy`]: every cell executes
    /// inside `catch_unwind`, so a panicking cell surfaces as
    /// [`CellOutcome::Panicked`] instead of tearing down the whole grid;
    /// cells that exceed the policy's DES event budget come back as
    /// [`CellOutcome::BudgetExceeded`]; OOM cells are retried at degraded
    /// parameters up to `max_retries` times, with the full degradation
    /// chain recorded in [`CellOutcome::Degraded`].
    ///
    /// Supervision preserves the determinism contract of [`SweepSpec::run`]:
    /// the grid order and every cell's bytes are identical whatever the
    /// worker count, and the inert default policy reproduces unsupervised
    /// results exactly.
    pub fn run_supervised(
        &self,
        platform: &Platform,
        model: &ModelGraph,
        policy: &SupervisorPolicy,
    ) -> Vec<SweepCell> {
        let mut params: Vec<(Precision, u32, u32, Option<f64>, GpuPolicy)> =
            Vec::with_capacity(self.cells());
        for &precision in &self.precisions {
            for &batch in &self.batches {
                for &procs in &self.process_counts {
                    for &load in &self.offered_loads {
                        for &gpu_policy in &self.gpu_policies {
                            params.push((precision, batch, procs, load, gpu_policy));
                        }
                    }
                }
            }
        }
        let workers = self
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .min(params.len().max(1));
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<SweepCell>> = vec![None; params.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, SweepCell)> = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(precision, batch, procs, load, gpu_policy)) =
                                params.get(index)
                            else {
                                break;
                            };
                            let cell = self.run_cell(
                                platform, model, precision, batch, procs, load, gpu_policy, policy,
                            );
                            done.push((index, cell));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (index, cell) in handle.join().expect("sweep worker panicked") {
                    slots[index] = Some(cell);
                }
            }
        });
        let mut cells: Vec<SweepCell> = slots
            .into_iter()
            .map(|slot| slot.expect("every cell dispatched exactly once"))
            .collect();
        cells.sort_by_key(|c| (c.precision, c.batch, c.processes));
        cells
    }

    /// Runs one heterogeneous [`Deployment`] as a single supervised cell
    /// with the inert default policy. Equivalent to
    /// [`SweepSpec::run_deployment_supervised`] with
    /// [`SupervisorPolicy::default`].
    pub fn run_deployment(&self, platform: &Platform, deployment: &Deployment) -> SweepCell {
        self.run_deployment_supervised(platform, deployment, &SupervisorPolicy::default())
    }

    /// Runs one heterogeneous [`Deployment`] under a
    /// [`SupervisorPolicy`], with the same isolation guarantees as a
    /// grid cell: panics are caught, OOM deployments are degraded
    /// (largest tenant batch halves first, then the busiest tenant
    /// sheds an instance), budget overruns abort cleanly.
    ///
    /// The returned [`SweepCell`] keys the deployment by its canonical
    /// label ([`Deployment::label`]); `precision` is the first tenant's,
    /// `batch` is the largest tenant batch, and `processes` is the total
    /// across tenants. Chaos injections match on that `(batch,
    /// processes)` pair. A homogeneous deployment reproduces the
    /// corresponding grid cell's metrics byte-for-byte — the seed
    /// derivation folds per tenant and reduces exactly to the grid
    /// formula for one tenant.
    pub fn run_deployment_supervised(
        &self,
        platform: &Platform,
        deployment: &Deployment,
        policy: &SupervisorPolicy,
    ) -> SweepCell {
        let device = platform.name().to_string();
        let gpu_policy = self.gpu_policies.first().copied().unwrap_or_default();
        if deployment.is_empty() {
            return SweepCell {
                model: "(empty)".to_string(),
                device,
                precision: Precision::Fp32,
                batch: 0,
                processes: 0,
                offered_load: None,
                gpu_policy: gpu_policy.to_string(),
                outcome: CellOutcome::SimFailed("empty deployment".to_string()),
            };
        }
        let batch = deployment
            .tenants()
            .iter()
            .map(Tenant::batch)
            .max()
            .unwrap_or(1);
        let procs = deployment.total_processes();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.supervise_deployment(
                platform,
                deployment,
                (batch, procs),
                None,
                gpu_policy,
                policy,
            )
        }))
        .unwrap_or_else(|payload| CellOutcome::Panicked {
            message: panic_message(payload),
        });
        SweepCell {
            model: deployment.label(),
            device,
            precision: deployment.tenants()[0].precision(),
            batch,
            processes: procs,
            offered_load: None,
            gpu_policy: gpu_policy.to_string(),
            outcome,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_cell(
        &self,
        platform: &Platform,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
        procs: u32,
        offered_load: Option<f64>,
        gpu_policy: GpuPolicy,
        policy: &SupervisorPolicy,
    ) -> SweepCell {
        // A grid cell is the one-tenant deployment — there is exactly
        // one execution path whether the workload is homogeneous or
        // mixed. Panic isolation: a cell that panics (chaos-injected or
        // a real bug in the model/simulator for one parameter
        // combination) must not take down the sweep worker — the other
        // cells of the grid still complete and the casualty is reported
        // in place.
        let deployment = Deployment::homogeneous(model, precision, batch, procs);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.supervise_deployment(
                platform,
                &deployment,
                (batch, procs),
                offered_load,
                gpu_policy,
                policy,
            )
        }))
        .unwrap_or_else(|payload| CellOutcome::Panicked {
            message: panic_message(payload),
        });
        SweepCell {
            model: model.name().to_string(),
            device: platform.name().to_string(),
            precision,
            batch,
            processes: procs,
            offered_load,
            gpu_policy: gpu_policy.to_string(),
            outcome,
        }
    }

    /// Runs one deployment with retry-with-degradation: an OOM outcome
    /// is retried with the largest tenant batch halved, then with an
    /// instance shed from the tenant running the most, until it fits or
    /// the retry budget runs out. For a single tenant this is exactly
    /// the classic chain (halve the batch, then drop processes). The
    /// returned outcome always keys on the cell's *original* grid
    /// coordinates; a degraded success records where it finally ran.
    #[allow(clippy::too_many_arguments)]
    fn supervise_deployment(
        &self,
        platform: &Platform,
        deployment: &Deployment,
        grid_coords: (u32, u32),
        offered_load: Option<f64>,
        gpu_policy: GpuPolicy,
        policy: &SupervisorPolicy,
    ) -> CellOutcome {
        let (batch, procs) = grid_coords;
        if policy.chaos.iter().any(|c| {
            matches!(c, CellChaos::PanicOn { batch: b, processes: p }
                     if *b == batch && *p == procs)
        }) {
            panic!("chaos: injected panic at b{batch} p{procs}");
        }
        let mut attempts: Vec<String> = Vec::new();
        let mut current = deployment.clone();
        let mut retries_left = policy.max_retries;
        loop {
            let outcome = self.try_deployment(
                platform,
                &current,
                grid_coords,
                offered_load,
                gpu_policy,
                policy,
                &mut attempts,
            );
            match outcome {
                CellOutcome::OutOfMemory { .. } if retries_left > 0 => {
                    let Some(degraded) = degrade_deployment(&current) else {
                        return outcome;
                    };
                    attempts.push(oom_attempt_tag(&current));
                    retries_left -= 1;
                    current = degraded;
                }
                CellOutcome::Ok(metrics)
                    if deployment_coords(&current) != deployment_coords(deployment) =>
                {
                    let (final_batch, final_processes) = deployment_coords(&current);
                    return CellOutcome::Degraded {
                        metrics,
                        attempts,
                        final_batch,
                        final_processes,
                    };
                }
                other => return other,
            }
        }
    }

    /// Derives the deployment's RNG seed by folding every tenant's
    /// coordinates — precision, batch, instance count — through a
    /// splitmix64 finalizer. (The previous xor-shift scheme dropped the
    /// precision, making e.g. `(int8, b4, p2)` and `(fp16, b4, p2)`
    /// share one seed.) A single tenant reduces to exactly the classic
    /// per-cell formula, so homogeneous deployments reproduce grid
    /// cells byte-for-byte; tenant *order* feeds the fold, so the seed
    /// respects the deployment's identity, not just its multiset.
    fn deployment_seed(&self, deployment: &Deployment) -> u64 {
        deployment.tenants().iter().fold(self.seed, |seed, t| {
            splitmix64(
                seed ^ ((t.precision() as u64) << 40)
                    ^ (u64::from(t.batch()) << 8)
                    ^ (u64::from(t.instances()) << 20),
            )
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn try_deployment(
        &self,
        platform: &Platform,
        deployment: &Deployment,
        grid_coords: (u32, u32),
        offered_load: Option<f64>,
        gpu_policy: GpuPolicy,
        policy: &SupervisorPolicy,
        attempts: &mut Vec<String>,
    ) -> CellOutcome {
        let mut engines: Vec<Arc<Engine>> = Vec::with_capacity(deployment.len());
        for tenant in deployment.tenants() {
            match self.build_cell_engine(
                platform,
                tenant.model(),
                tenant.precision(),
                tenant.batch(),
                grid_coords,
                policy,
                attempts,
            ) {
                Ok(engine) => engines.push(engine),
                Err(outcome) => return outcome,
            }
        }
        let mut builder = SimConfig::builder(platform.device().clone())
            .warmup(self.warmup)
            .measure(self.measure)
            .seed(self.deployment_seed(deployment))
            .gpu_policy(gpu_policy)
            .record_kernel_events(false)
            .profiler(ProfilerMode::Lightweight);
        if !policy.faults.is_empty() {
            builder = builder.faults(policy.faults.clone());
        }
        if let Some(budget) = policy.event_budget {
            builder = builder.event_budget(budget);
        }
        let arrivals = match offered_load {
            Some(fps) => jetsim_sim::ArrivalModel::Poisson { fps },
            None => jetsim_sim::ArrivalModel::Saturated,
        };
        for (tenant, engine) in deployment.tenants().iter().zip(&engines) {
            let label = tenant.label();
            for instance in 0..tenant.instances() {
                builder = builder
                    .add_engine_named_with_arrivals(
                        format!("{label}/{instance}"),
                        Arc::clone(engine),
                        arrivals,
                    )
                    .process_priority(tenant.gpu_priority())
                    .process_sm_share(tenant.gpu_sm_share());
            }
        }
        match builder.build() {
            Ok(config) => {
                let trace = Simulation::new(config).expect("validated").run();
                if trace.budget_exceeded {
                    return CellOutcome::BudgetExceeded {
                        events: trace.sim_events,
                        budget: policy.event_budget.unwrap_or(u64::MAX),
                    };
                }
                let report = JetsonStatsReport::from_trace(&trace);
                CellOutcome::Ok(CellMetrics {
                    throughput: report.throughput,
                    throughput_per_process: report.throughput_per_process,
                    mean_power_w: report.mean_power_w,
                    gpu_memory_percent: report.gpu_memory_percent,
                    gpu_utilization_percent: report.gpu_utilization_percent,
                    power_per_image: report.power_per_image,
                    mean_ec_ms: trace.mean_ec_time().as_millis_f64(),
                    mean_launch_ms: mean_ms(&trace, |p| p.mean_launch_time),
                    mean_blocking_ms: mean_ms(&trace, |p| p.mean_blocking_time),
                    mean_sync_ms: mean_ms(&trace, |p| p.mean_sync_time),
                    final_gpu_freq_mhz: report.final_gpu_freq_mhz,
                    tenants: TenantMetrics::from_trace(&trace, deployment),
                })
            }
            Err(SimError::OutOfMemory {
                required_bytes,
                usable_bytes,
            }) => CellOutcome::OutOfMemory {
                required_mib: required_bytes / (1024 * 1024),
                usable_mib: usable_bytes / (1024 * 1024),
            },
            Err(e) => CellOutcome::SimFailed(e.to_string()),
        }
    }

    /// Builds the cell's engine, retrying transient driver failures
    /// (chaos-injected or real) up to the policy's retry cap. Chaos
    /// matches on the cell's original grid coordinates so degraded
    /// retries of an OOM cell do not re-trigger it.
    #[allow(clippy::too_many_arguments, clippy::result_large_err)]
    fn build_cell_engine(
        &self,
        platform: &Platform,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
        grid_coords: (u32, u32),
        policy: &SupervisorPolicy,
        attempts: &mut Vec<String>,
    ) -> Result<Arc<Engine>, CellOutcome> {
        let chaos_failures = policy.chaos.iter().find_map(|c| match c {
            CellChaos::TransientBuild {
                failures,
                batch: b,
                processes: p,
            } if (*b, *p) == grid_coords => Some(*failures),
            _ => None,
        });
        if let Some(failures) = chaos_failures {
            // Bypass the process-wide engine cache: a cached hit would
            // silently skip the injected failure and other sweeps must
            // not observe this cell's flaky engine.
            for attempt in 0..=policy.max_retries {
                let result = EngineBuilder::new(platform.device())
                    .precision(precision)
                    .batch(batch)
                    .transient_failures(failures.saturating_sub(attempt))
                    .build(model);
                match result {
                    Ok(engine) => return Ok(Arc::new(engine)),
                    Err(e) if e.is_transient() && attempt < policy.max_retries => {
                        attempts.push(format!("b{batch} build attempt {}: {e}", attempt + 1));
                    }
                    Err(e) => return Err(CellOutcome::BuildFailed(e.to_string())),
                }
            }
            unreachable!("loop returns on success or final failure");
        }
        let mut last_err = None;
        for attempt in 0..=policy.max_retries {
            match platform.build_engine(model, precision, batch) {
                Ok(engine) => return Ok(engine),
                Err(e) if e.is_transient() && attempt < policy.max_retries => {
                    attempts.push(format!("b{batch} build attempt {}: {e}", attempt + 1));
                    last_err = Some(e);
                }
                Err(e) => return Err(CellOutcome::BuildFailed(e.to_string())),
            }
        }
        Err(CellOutcome::BuildFailed(
            last_err.expect("retry loop ran at least once").to_string(),
        ))
    }
}

/// The degradation coordinates of a deployment: (largest tenant batch,
/// total processes). For a single tenant these are its `(batch, count)`.
fn deployment_coords(deployment: &Deployment) -> (u32, u32) {
    let batch = deployment
        .tenants()
        .iter()
        .map(Tenant::batch)
        .max()
        .unwrap_or(0);
    (batch, deployment.total_processes())
}

/// One step down the degradation ladder: halve the largest tenant batch
/// while any batch exceeds 1, otherwise shed one instance from the
/// tenant running the most (dropping the tenant entirely when its last
/// instance goes). Returns `None` when the deployment is already at
/// `b1` × one process — nothing left to shed. For a single tenant this
/// is exactly the paper-era chain: halve the batch, then drop
/// processes.
fn degrade_deployment(deployment: &Deployment) -> Option<Deployment> {
    let tenants = deployment.tenants();
    let max_batch = tenants.iter().map(Tenant::batch).max()?;
    if max_batch > 1 {
        let victim = tenants.iter().position(|t| t.batch() == max_batch)?;
        let rebuilt = tenants
            .iter()
            .enumerate()
            .fold(Deployment::new(), |d, (i, t)| {
                let batch = if i == victim {
                    t.batch() / 2
                } else {
                    t.batch()
                };
                d.tenant(
                    Tenant::new(t.model().clone(), t.precision(), batch)
                        .count(t.instances())
                        .priority(t.gpu_priority())
                        .sm_share(t.gpu_sm_share()),
                )
            });
        return Some(rebuilt);
    }
    if deployment.total_processes() <= 1 {
        return None;
    }
    let max_count = tenants.iter().map(Tenant::instances).max()?;
    let victim = tenants.iter().position(|t| t.instances() == max_count)?;
    let rebuilt = tenants
        .iter()
        .enumerate()
        .fold(Deployment::new(), |d, (i, t)| {
            let count = if i == victim {
                t.instances() - 1
            } else {
                t.instances()
            };
            if count == 0 {
                d
            } else {
                d.tenant(
                    Tenant::new(t.model().clone(), t.precision(), t.batch())
                        .count(count)
                        .priority(t.gpu_priority())
                        .sm_share(t.gpu_sm_share()),
                )
            }
        });
    Some(rebuilt)
}

/// The degradation-chain tag for an OOM attempt. Single-tenant
/// deployments keep the classic `b{B}p{P}: OOM` form; mixed deployments
/// tag with their canonical label.
fn oom_attempt_tag(deployment: &Deployment) -> String {
    match deployment.tenants() {
        [t] => format!("b{}p{}: OOM", t.batch(), t.instances()),
        _ => format!("{}: OOM", deployment.label()),
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "panic with non-string payload".to_string(),
        },
    }
}

/// Sebastiano Vigna's splitmix64 finalizer: a cheap, well-mixed 64-bit
/// hash used to decorrelate per-cell seeds.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mean_ms(trace: &jetsim_sim::RunTrace, f: fn(&jetsim_sim::ProcessStats) -> SimDuration) -> f64 {
    if trace.processes.is_empty() {
        return 0.0;
    }
    trace
        .processes
        .iter()
        .map(|p| f(p).as_millis_f64())
        .sum::<f64>()
        / trace.processes.len() as f64
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec::new()
    }
}

/// Phase-1 metrics of one sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellMetrics {
    /// Aggregate throughput, images/s.
    pub throughput: f64,
    /// The paper's T/P metric, images/s per process.
    pub throughput_per_process: f64,
    /// Mean module power, W.
    pub mean_power_w: f64,
    /// GPU memory as a percentage of board RAM.
    pub gpu_memory_percent: f64,
    /// GPU busy percentage.
    pub gpu_utilization_percent: f64,
    /// Energy per image, J.
    pub power_per_image: f64,
    /// Mean EC wall time, ms.
    pub mean_ec_ms: f64,
    /// Mean per-EC launch CPU time, ms.
    pub mean_launch_ms: f64,
    /// Mean per-EC blocking, ms.
    pub mean_blocking_ms: f64,
    /// Mean per-EC sync wait, ms.
    pub mean_sync_ms: f64,
    /// GPU frequency after DVFS settled, MHz.
    pub final_gpu_freq_mhz: u32,
    /// Per-tenant breakdown, in deployment order. A homogeneous grid
    /// cell has exactly one entry; a mixed deployment gets one per
    /// tenant, keyed by the tenant's canonical label.
    pub tenants: Vec<TenantMetrics>,
}

/// What happened to one cell of the grid.
///
/// Marked `#[non_exhaustive]`: the supervisor grows new failure modes
/// over time (panic isolation and budget watchdogs were added after the
/// first release), so downstream matches need a `_` arm.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub enum CellOutcome {
    /// The cell ran; metrics inside.
    Ok(CellMetrics),
    /// The deployment did not fit in unified memory (on hardware this
    /// reboots the board).
    OutOfMemory {
        /// MiB the deployment needed.
        required_mib: u64,
        /// MiB available.
        usable_mib: u64,
    },
    /// The engine could not be built for these parameters.
    BuildFailed(String),
    /// The engine built but the simulation itself was rejected for a
    /// reason other than memory (e.g. an invalid configuration).
    /// Previously these were mislabeled as [`CellOutcome::BuildFailed`].
    SimFailed(String),
    /// The cell's worker panicked; the supervisor caught it and the rest
    /// of the grid completed normally.
    Panicked {
        /// The panic payload, best-effort stringified.
        message: String,
    },
    /// The cell's simulation exceeded the supervisor's DES event budget
    /// and was aborted mid-run (a runaway cell must not starve the grid).
    BudgetExceeded {
        /// Events the simulation had processed when the watchdog fired.
        events: u64,
        /// The budget it was given.
        budget: u64,
    },
    /// The cell OOM'd at its grid coordinates but succeeded after the
    /// supervisor degraded it (smaller batch, then fewer processes).
    Degraded {
        /// Metrics at the degraded operating point.
        metrics: CellMetrics,
        /// The degradation chain, e.g. `["b8p4: OOM", "b4p4: OOM"]`.
        attempts: Vec<String>,
        /// Batch size that finally fit.
        final_batch: u32,
        /// Process count that finally fit.
        final_processes: u32,
    },
}

impl CellOutcome {
    /// The metrics, if the cell ran.
    ///
    /// Degraded cells ran at reduced parameters — use
    /// [`CellOutcome::degraded_metrics`] if those should count too.
    pub fn metrics(&self) -> Option<&CellMetrics> {
        match self {
            CellOutcome::Ok(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the cell completed at its requested parameters.
    pub fn is_success(&self) -> bool {
        matches!(self, CellOutcome::Ok(_))
    }

    /// Aggregate throughput (images/s) of a cell that ran at its
    /// requested parameters, `None` for every failure mode and for
    /// degraded cells.
    pub fn throughput(&self) -> Option<f64> {
        self.metrics().map(|m| m.throughput)
    }

    /// The metrics of a cell that ran, whether at its requested
    /// parameters or at a degraded operating point.
    pub fn degraded_metrics(&self) -> Option<&CellMetrics> {
        match self {
            CellOutcome::Ok(m) => Some(m),
            CellOutcome::Degraded { metrics, .. } => Some(metrics),
            _ => None,
        }
    }
}

/// One `(precision, batch, processes)` cell of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepCell {
    /// Model name.
    pub model: String,
    /// Device name.
    pub device: String,
    /// Requested precision.
    pub precision: Precision,
    /// Batch size.
    pub batch: u32,
    /// Concurrent process count.
    pub processes: u32,
    /// Open-loop offered load per process (batches/s, Poisson); `None`
    /// for classic closed-loop (saturated) cells.
    pub offered_load: Option<f64>,
    /// GPU scheduling policy the cell ran under, in `--gpu-policy`
    /// grammar (`"rr"` for classic cells).
    pub gpu_policy: String,
    /// Outcome.
    pub outcome: CellOutcome,
}

impl fmt::Display for SweepCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} b{} p{}",
            self.model, self.precision, self.batch, self.processes
        )?;
        if let Some(fps) = self.offered_load {
            write!(f, " @{fps:.0}/s")?;
        }
        if self.gpu_policy != "rr" {
            write!(f, " [{}]", self.gpu_policy)?;
        }
        write!(f, ": ")?;
        match &self.outcome {
            CellOutcome::Ok(m) => write!(
                f,
                "T/P {:.1} img/s, {:.2} W, mem {:.1}%",
                m.throughput_per_process, m.mean_power_w, m.gpu_memory_percent
            ),
            CellOutcome::OutOfMemory {
                required_mib,
                usable_mib,
            } => write!(f, "OOM ({required_mib} MiB > {usable_mib} MiB)"),
            CellOutcome::BuildFailed(e) => write!(f, "build failed: {e}"),
            CellOutcome::SimFailed(e) => write!(f, "sim failed: {e}"),
            CellOutcome::Panicked { message } => write!(f, "panicked: {message}"),
            CellOutcome::BudgetExceeded { events, budget } => {
                write!(f, "aborted: {events} DES events exceeded budget {budget}")
            }
            CellOutcome::Degraded {
                metrics,
                final_batch,
                final_processes,
                attempts,
            } => write!(
                f,
                "degraded to b{} p{} after {} OOM retr{}: T/P {:.1} img/s",
                final_batch,
                final_processes,
                attempts.len(),
                if attempts.len() == 1 { "y" } else { "ies" },
                metrics.throughput_per_process
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetsim_dnn::zoo;

    fn fast_spec() -> SweepSpec {
        SweepSpec::new()
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(400))
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1, 4])
            .process_counts([1, 2]);
        let cells = spec.run(&Platform::orin_nano(), &zoo::resnet50());
        assert_eq!(cells.len(), 4);
        let keys: Vec<(u32, u32)> = cells.iter().map(|c| (c.batch, c.processes)).collect();
        assert_eq!(keys, vec![(1, 1), (1, 2), (4, 1), (4, 2)]);
        assert!(cells.iter().all(|c| c.outcome.metrics().is_some()));
    }

    #[test]
    fn tp_falls_with_processes_rises_with_batch() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1, 16])
            .process_counts([1, 8]);
        let cells = spec.run(&Platform::orin_nano(), &zoo::yolov8n());
        let tp = |b: u32, p: u32| {
            cells
                .iter()
                .find(|c| c.batch == b && c.processes == p)
                .and_then(|c| c.outcome.metrics())
                .map(|m| m.throughput_per_process)
                .expect("cell ran")
        };
        assert!(tp(16, 1) > tp(1, 1), "batch helps");
        assert!(tp(1, 8) < tp(1, 1) / 3.0, "processes hurt");
    }

    #[test]
    fn oom_cells_reported_not_fatal() {
        let spec = fast_spec()
            .precisions([Precision::Fp16])
            .batches([1])
            .process_counts([1, 4]);
        let cells = spec.run(&Platform::jetson_nano(), &zoo::fcn_resnet50());
        assert_eq!(cells.len(), 2);
        assert!(cells[0].outcome.metrics().is_some());
        assert!(matches!(cells[1].outcome, CellOutcome::OutOfMemory { .. }));
        assert!(format!("{}", cells[1]).contains("OOM"));
    }

    #[test]
    fn cells_count_product() {
        let spec = SweepSpec::new()
            .precisions(Precision::ALL)
            .batches([1, 2, 4])
            .process_counts([1, 2]);
        assert_eq!(spec.cells(), 24);
        let spec = spec.offered_loads([None, Some(30.0), Some(60.0)]);
        assert_eq!(spec.cells(), 72);
    }

    #[test]
    fn offered_load_axis_runs_open_loop_cells() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1])
            .process_counts([1])
            .offered_loads([None, Some(40.0)]);
        let cells = spec.run(&Platform::orin_nano(), &zoo::resnet50());
        assert_eq!(cells.len(), 2);
        let saturated = cells.iter().find(|c| c.offered_load.is_none()).unwrap();
        let loaded = cells.iter().find(|c| c.offered_load == Some(40.0)).unwrap();
        let sat_tp = saturated.outcome.throughput().expect("saturated cell ran");
        let load_tp = loaded.outcome.throughput().expect("loaded cell ran");
        // 40 batches/s is far below this cell's ceiling: the open-loop
        // cell serves roughly the offered rate, well under saturation.
        assert!(
            load_tp < sat_tp * 0.7,
            "loaded {load_tp} vs saturated {sat_tp}"
        );
        assert!(
            (load_tp - 40.0).abs() < 12.0,
            "throughput tracks the offered rate, got {load_tp}"
        );
        assert!(format!("{loaded}").contains("@40/s"), "{loaded}");
    }

    #[test]
    fn outcome_helpers_match_the_metrics_accessor() {
        let spec = fast_spec()
            .precisions([Precision::Fp16])
            .batches([1])
            .process_counts([1, 4]);
        let cells = spec.run(&Platform::jetson_nano(), &zoo::fcn_resnet50());
        for cell in &cells {
            assert_eq!(cell.outcome.is_success(), cell.outcome.metrics().is_some());
            assert_eq!(
                cell.outcome.throughput(),
                cell.outcome.metrics().map(|m| m.throughput)
            );
        }
        assert!(cells[0].outcome.is_success());
        assert!(!cells[1].outcome.is_success(), "{:?}", cells[1].outcome);
        assert_eq!(cells[1].outcome.throughput(), None);
    }

    #[test]
    fn results_identical_across_worker_counts_and_cache_state() {
        let spec = fast_spec()
            .precisions([Precision::Int8, Precision::Fp16])
            .batches([1, 4])
            .process_counts([1, 2]);
        let platform = Platform::orin_nano();
        let model = zoo::yolov8n();
        // The first run may compile engines (cache cold for this grid);
        // the later runs hit the process-wide cache. Dispatch order and
        // cache state must not leak into the results.
        let cold = spec.clone().workers(1).run(&platform, &model);
        let warm2 = spec.clone().workers(2).run(&platform, &model);
        let warm8 = spec.clone().workers(8).run(&platform, &model);
        let json = |cells: &[SweepCell]| serde_json::to_string(cells).expect("serializable");
        assert_eq!(json(&cold), json(&warm2), "1 vs 2 workers");
        assert_eq!(json(&cold), json(&warm8), "1 vs 8 workers (cache warm)");
    }

    #[test]
    fn panicking_cell_is_isolated_and_grid_completes() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1, 4])
            .process_counts([1, 2]);
        let policy = SupervisorPolicy::new().chaos(CellChaos::PanicOn {
            batch: 4,
            processes: 1,
        });
        let cells = spec.run_supervised(&Platform::orin_nano(), &zoo::resnet50(), &policy);
        assert_eq!(cells.len(), 4, "every cell reported, panic included");
        let keys: Vec<(u32, u32)> = cells.iter().map(|c| (c.batch, c.processes)).collect();
        assert_eq!(keys, vec![(1, 1), (1, 2), (4, 1), (4, 2)], "grid order");
        for cell in &cells {
            if (cell.batch, cell.processes) == (4, 1) {
                match &cell.outcome {
                    CellOutcome::Panicked { message } => {
                        assert!(message.contains("chaos"), "{message}");
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                }
                assert!(format!("{cell}").contains("panicked"));
            } else {
                assert!(cell.outcome.metrics().is_some(), "{cell}");
            }
        }
    }

    #[test]
    fn error_bearing_grids_are_deterministic_across_worker_counts() {
        // A grid with a panic cell, an OOM cell (degraded via retries)
        // and healthy cells must come back in grid order with identical
        // bytes whatever the worker count — errors don't break the
        // sweep's determinism contract.
        let spec = fast_spec()
            .precisions([Precision::Fp16])
            .batches([1, 2])
            .process_counts([1, 4]);
        let policy = SupervisorPolicy::new()
            .max_retries(4)
            .chaos(CellChaos::PanicOn {
                batch: 2,
                processes: 1,
            });
        let platform = Platform::jetson_nano();
        let model = zoo::fcn_resnet50();
        let one = spec
            .clone()
            .workers(1)
            .run_supervised(&platform, &model, &policy);
        let four = spec
            .clone()
            .workers(4)
            .run_supervised(&platform, &model, &policy);
        assert_eq!(one.len(), 4);
        let json = |cells: &[SweepCell]| serde_json::to_string(cells).expect("serializable");
        assert_eq!(json(&one), json(&four), "1 vs 4 workers");
        let keys: Vec<(u32, u32)> = one.iter().map(|c| (c.batch, c.processes)).collect();
        assert_eq!(keys, vec![(1, 1), (1, 4), (2, 1), (2, 4)], "grid order");
        // The p4 cells OOM at their grid coordinates and degrade.
        assert!(
            one.iter().any(|c| matches!(
                &c.outcome,
                CellOutcome::Degraded { attempts, .. } if !attempts.is_empty()
            )),
            "an OOM cell degraded: {one:?}"
        );
    }

    #[test]
    fn budget_watchdog_reports_runaway_cells() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1])
            .process_counts([1]);
        let policy = SupervisorPolicy::new().event_budget(200);
        let cells = spec.run_supervised(&Platform::orin_nano(), &zoo::resnet50(), &policy);
        match &cells[0].outcome {
            CellOutcome::BudgetExceeded { events, budget } => {
                assert_eq!(*budget, 200);
                assert!(*events <= 200, "watchdog fired late: {events}");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert!(format!("{}", cells[0]).contains("budget"));
    }

    #[test]
    fn transient_build_failures_are_retried() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1])
            .process_counts([1]);
        let chaos = CellChaos::TransientBuild {
            failures: 2,
            batch: 1,
            processes: 1,
        };
        // With retries the build recovers and the cell runs.
        let policy = SupervisorPolicy::new().max_retries(3).chaos(chaos.clone());
        let cells = spec.run_supervised(&Platform::orin_nano(), &zoo::resnet50(), &policy);
        assert!(
            cells[0].outcome.metrics().is_some(),
            "recovered: {:?}",
            cells[0].outcome
        );
        // Without retries the transient failure is terminal.
        let policy = SupervisorPolicy::new().chaos(chaos);
        let cells = spec.run_supervised(&Platform::orin_nano(), &zoo::resnet50(), &policy);
        assert!(
            matches!(&cells[0].outcome, CellOutcome::BuildFailed(_)),
            "{:?}",
            cells[0].outcome
        );
    }

    #[test]
    fn oom_cell_degrades_to_a_fitting_deployment() {
        // 4 × FCN on the Nano is the paper's reboot scenario; with
        // retries the supervisor sheds load until the deployment fits
        // and reports the full degradation chain.
        let spec = fast_spec()
            .precisions([Precision::Fp16])
            .batches([1])
            .process_counts([4]);
        let policy = SupervisorPolicy::new().max_retries(3);
        let cells = spec.run_supervised(&Platform::jetson_nano(), &zoo::fcn_resnet50(), &policy);
        match &cells[0].outcome {
            CellOutcome::Degraded {
                attempts,
                final_batch,
                final_processes,
                metrics,
            } => {
                assert_eq!(*final_batch, 1);
                assert!(*final_processes < 4);
                assert!(attempts[0].contains("b1p4: OOM"), "{attempts:?}");
                assert!(metrics.throughput >= 0.0);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The cell keeps its original grid coordinates.
        assert_eq!(cells[0].processes, 4);
        assert!(format!("{}", cells[0]).contains("degraded"));
    }

    #[test]
    fn inert_policy_reproduces_unsupervised_results() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1, 4])
            .process_counts([1, 2]);
        let platform = Platform::orin_nano();
        let model = zoo::yolov8n();
        let plain = spec.run(&platform, &model);
        let supervised = spec.run_supervised(&platform, &model, &SupervisorPolicy::default());
        let json = |cells: &[SweepCell]| serde_json::to_string(cells).expect("serializable");
        assert_eq!(json(&plain), json(&supervised));
    }

    #[test]
    fn cell_seeds_depend_on_every_coordinate() {
        let spec = SweepSpec::new();
        let model = zoo::resnet50();
        let seed = |p, b, n| spec.deployment_seed(&Deployment::homogeneous(&model, p, b, n));
        let base = seed(Precision::Int8, 4, 2);
        assert_ne!(base, seed(Precision::Fp16, 4, 2), "precision");
        assert_ne!(base, seed(Precision::Int8, 8, 2), "batch");
        assert_ne!(base, seed(Precision::Int8, 4, 4), "processes");
        // The legacy single-cell formula is the one-tenant fold.
        let legacy =
            splitmix64(spec.seed ^ ((Precision::Int8 as u64) << 40) ^ (4u64 << 8) ^ (2u64 << 20));
        assert_eq!(base, legacy, "homogeneous fold reduces to the grid formula");
    }

    #[test]
    fn deployment_seed_depends_on_tenant_order() {
        let spec = SweepSpec::new();
        let a = Tenant::new(zoo::resnet50(), Precision::Int8, 1);
        let b = Tenant::new(zoo::yolov8n(), Precision::Fp16, 4);
        let ab = Deployment::new().tenant(a.clone()).tenant(b.clone());
        let ba = Deployment::new().tenant(b).tenant(a);
        assert_ne!(spec.deployment_seed(&ab), spec.deployment_seed(&ba));
    }

    #[test]
    fn homogeneous_deployment_matches_grid_cell_bytes() {
        // The acceptance bar for the refactor: running a one-tenant
        // deployment through the deployment path produces byte-identical
        // metrics to the same cell of a classic grid sweep.
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([4])
            .process_counts([2]);
        let platform = Platform::orin_nano();
        let model = zoo::resnet50();
        let grid = spec.run(&platform, &model);
        let deployment = Deployment::homogeneous(&model, Precision::Int8, 4, 2);
        let cell = spec.run_deployment(&platform, &deployment);
        assert_eq!(cell.model, "resnet50:int8:b4x2");
        assert_eq!((cell.batch, cell.processes), (4, 2));
        let json = |o: &CellOutcome| serde_json::to_string(o).expect("serializable");
        assert_eq!(json(&grid[0].outcome), json(&cell.outcome));
    }

    #[test]
    fn mixed_deployment_reports_per_tenant_metrics() {
        let spec = fast_spec();
        let deployment = Deployment::new()
            .tenant(Tenant::new(zoo::resnet50(), Precision::Int8, 1).count(2))
            .tenant(Tenant::new(zoo::yolov8n(), Precision::Fp16, 4));
        let cell = spec.run_deployment(&Platform::orin_nano(), &deployment);
        assert_eq!(cell.model, "resnet50:int8:b1x2+yolov8n:fp16:b4");
        assert_eq!(cell.batch, 4, "largest tenant batch");
        assert_eq!(cell.processes, 3, "total across tenants");
        let metrics = cell.outcome.metrics().expect("deployment fits");
        assert_eq!(metrics.tenants.len(), 2);
        assert_eq!(metrics.tenants[0].label, "resnet50:int8:b1");
        assert_eq!(metrics.tenants[0].processes, 2);
        assert_eq!(metrics.tenants[1].label, "yolov8n:fp16:b4");
        assert_eq!(metrics.tenants[1].processes, 1);
        let total: f64 = metrics.tenants.iter().map(|t| t.throughput).sum();
        assert!(
            (total - metrics.throughput).abs() < 1e-9,
            "tenant throughputs sum to the aggregate"
        );
    }

    #[test]
    fn empty_deployment_is_rejected_not_fatal() {
        let cell = SweepSpec::new().run_deployment(&Platform::orin_nano(), &Deployment::new());
        assert!(
            matches!(&cell.outcome, CellOutcome::SimFailed(e) if e.contains("empty")),
            "{:?}",
            cell.outcome
        );
    }

    #[test]
    fn oversized_mixed_deployment_degrades_tenant_by_tenant() {
        // Two FCN tenants on the Nano cannot fit; the supervisor halves
        // the largest batch first, then sheds instances from the
        // busiest tenant, and the attempts chain uses deployment labels.
        let spec = fast_spec();
        let deployment = Deployment::new()
            .tenant(Tenant::new(zoo::fcn_resnet50(), Precision::Fp16, 2).count(2))
            .tenant(Tenant::new(zoo::fcn_resnet50(), Precision::Fp16, 1).count(2));
        let policy = SupervisorPolicy::new().max_retries(6);
        let cell = spec.run_deployment_supervised(&Platform::jetson_nano(), &deployment, &policy);
        match &cell.outcome {
            CellOutcome::Degraded {
                attempts,
                final_batch,
                final_processes,
                metrics,
            } => {
                assert!(!attempts.is_empty());
                assert!(
                    attempts[0].contains("fcn_resnet50") && attempts[0].contains("OOM"),
                    "{attempts:?}"
                );
                assert!(*final_batch <= 2);
                assert!(*final_processes < 4);
                assert!(metrics.throughput >= 0.0);
            }
            CellOutcome::Ok(_) => panic!("expected the deployment to degrade"),
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The cell keeps the deployment's original coordinates.
        assert_eq!((cell.batch, cell.processes), (2, 4));
    }

    #[test]
    fn degradation_ladder_reduces_to_the_classic_chain() {
        let d = Deployment::homogeneous(&zoo::resnet50(), Precision::Int8, 4, 2);
        let d = degrade_deployment(&d).expect("b4 halves");
        assert_eq!(deployment_coords(&d), (2, 2));
        let d = degrade_deployment(&d).expect("b2 halves");
        assert_eq!(deployment_coords(&d), (1, 2));
        let d = degrade_deployment(&d).expect("p2 sheds");
        assert_eq!(deployment_coords(&d), (1, 1));
        assert!(degrade_deployment(&d).is_none(), "b1p1 is the floor");
    }
}
