//! Parameter sweeps: the batch × process-count × precision grids behind
//! the paper's figures 1 and 3–12.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::Serialize;

use jetsim_des::SimDuration;
use jetsim_dnn::{ModelGraph, Precision};
use jetsim_profile::JetsonStatsReport;
use jetsim_sim::{ProfilerMode, SimConfig, SimError, Simulation};

use crate::platform::Platform;

/// The grid of parameters to sweep.
///
/// # Examples
///
/// ```
/// use jetsim::SweepSpec;
/// use jetsim_dnn::Precision;
///
/// let spec = SweepSpec::new()
///     .precisions([Precision::Int8])
///     .batches([1, 2, 4, 8, 16])
///     .process_counts([1, 2, 4, 8]);
/// assert_eq!(spec.cells(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    precisions: Vec<Precision>,
    batches: Vec<u32>,
    process_counts: Vec<u32>,
    warmup: SimDuration,
    measure: SimDuration,
    seed: u64,
    workers: Option<usize>,
}

impl SweepSpec {
    /// A single-cell spec (batch 1, one process, fp32) to refine with the
    /// builder methods.
    pub fn new() -> Self {
        SweepSpec {
            precisions: vec![Precision::Fp32],
            batches: vec![1],
            process_counts: vec![1],
            warmup: SimDuration::from_millis(300),
            measure: SimDuration::from_millis(1500),
            seed: 0x6A65_7473,
            workers: None,
        }
    }

    /// Sets the precisions to sweep.
    pub fn precisions<I: IntoIterator<Item = Precision>>(mut self, p: I) -> Self {
        self.precisions = p.into_iter().collect();
        self
    }

    /// Sets the batch sizes to sweep.
    pub fn batches<I: IntoIterator<Item = u32>>(mut self, b: I) -> Self {
        self.batches = b.into_iter().collect();
        self
    }

    /// Sets the concurrent process counts to sweep.
    pub fn process_counts<I: IntoIterator<Item = u32>>(mut self, n: I) -> Self {
        self.process_counts = n.into_iter().collect();
        self
    }

    /// Sets the per-cell warmup window.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the per-cell measurement window.
    pub fn measure(mut self, measure: SimDuration) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the RNG seed (each cell derives its own from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the worker-thread count (defaults to the number of available
    /// cores). Cell results are identical whatever the worker count:
    /// each cell's seed depends only on its `(precision, batch,
    /// processes)` coordinates, never on which thread ran it.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Number of grid cells.
    pub fn cells(&self) -> usize {
        self.precisions.len() * self.batches.len() * self.process_counts.len()
    }

    /// Runs the sweep for `model` on `platform`, one simulation per cell,
    /// in parallel across available cores (or the [`SweepSpec::workers`]
    /// override). Cells that exceed unified memory come back as
    /// [`CellOutcome::OutOfMemory`] instead of aborting the sweep — the
    /// paper hit exactly such cells (§6.2.1).
    ///
    /// Dispatch is a lock-free `fetch_add` over the flattened grid: each
    /// worker claims the next cell index, runs it, and keeps the result
    /// in a thread-local vector; results are merged back into grid order
    /// after the scope joins, so no worker ever blocks on a results
    /// mutex. The output is deterministic — identical whatever the
    /// worker count, and identical whether the process-wide engine
    /// cache is cold or warm.
    pub fn run(&self, platform: &Platform, model: &ModelGraph) -> Vec<SweepCell> {
        let mut params: Vec<(Precision, u32, u32)> = Vec::with_capacity(self.cells());
        for &precision in &self.precisions {
            for &batch in &self.batches {
                for &procs in &self.process_counts {
                    params.push((precision, batch, procs));
                }
            }
        }
        let workers = self
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .min(params.len().max(1));
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<SweepCell>> = vec![None; params.len()];
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut done: Vec<(usize, SweepCell)> = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(precision, batch, procs)) = params.get(index) else {
                                break;
                            };
                            let cell = self.run_cell(platform, model, precision, batch, procs);
                            done.push((index, cell));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (index, cell) in handle.join().expect("sweep worker panicked") {
                    slots[index] = Some(cell);
                }
            }
        })
        .expect("sweep scope");
        let mut cells: Vec<SweepCell> = slots
            .into_iter()
            .map(|slot| slot.expect("every cell dispatched exactly once"))
            .collect();
        cells.sort_by_key(|c| (c.precision, c.batch, c.processes));
        cells
    }

    fn run_cell(
        &self,
        platform: &Platform,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
        procs: u32,
    ) -> SweepCell {
        let outcome = self.try_cell(platform, model, precision, batch, procs);
        SweepCell {
            model: model.name().to_string(),
            device: platform.name().to_string(),
            precision,
            batch,
            processes: procs,
            outcome,
        }
    }

    /// Derives the per-cell RNG seed. Every grid coordinate — including
    /// the precision, which the previous xor-shift scheme dropped, making
    /// e.g. `(int8, b4, p2)` and `(fp16, b4, p2)` share one seed — feeds
    /// a splitmix64 finalizer so neighbouring cells get uncorrelated
    /// streams.
    fn cell_seed(&self, precision: Precision, batch: u32, procs: u32) -> u64 {
        splitmix64(
            self.seed
                ^ ((precision as u64) << 40)
                ^ (u64::from(batch) << 8)
                ^ (u64::from(procs) << 20),
        )
    }

    fn try_cell(
        &self,
        platform: &Platform,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
        procs: u32,
    ) -> CellOutcome {
        let engine = match platform.build_engine(model, precision, batch) {
            Ok(engine) => engine,
            Err(e) => return CellOutcome::BuildFailed(e.to_string()),
        };
        let mut builder = SimConfig::builder(platform.device().clone())
            .warmup(self.warmup)
            .measure(self.measure)
            .seed(self.cell_seed(precision, batch, procs))
            .record_kernel_events(false)
            .profiler(ProfilerMode::Lightweight);
        builder = builder.add_engines(&engine, procs);
        match builder.build() {
            Ok(config) => {
                let trace = Simulation::new(config).expect("validated").run();
                let report = JetsonStatsReport::from_trace(&trace);
                CellOutcome::Ok(CellMetrics {
                    throughput: report.throughput,
                    throughput_per_process: report.throughput_per_process,
                    mean_power_w: report.mean_power_w,
                    gpu_memory_percent: report.gpu_memory_percent,
                    gpu_utilization_percent: report.gpu_utilization_percent,
                    power_per_image: report.power_per_image,
                    mean_ec_ms: trace.mean_ec_time().as_millis_f64(),
                    mean_launch_ms: mean_ms(&trace, |p| p.mean_launch_time),
                    mean_blocking_ms: mean_ms(&trace, |p| p.mean_blocking_time),
                    mean_sync_ms: mean_ms(&trace, |p| p.mean_sync_time),
                    final_gpu_freq_mhz: report.final_gpu_freq_mhz,
                })
            }
            Err(SimError::OutOfMemory {
                required_bytes,
                usable_bytes,
            }) => CellOutcome::OutOfMemory {
                required_mib: required_bytes / (1024 * 1024),
                usable_mib: usable_bytes / (1024 * 1024),
            },
            Err(e) => CellOutcome::SimFailed(e.to_string()),
        }
    }
}

/// Sebastiano Vigna's splitmix64 finalizer: a cheap, well-mixed 64-bit
/// hash used to decorrelate per-cell seeds.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mean_ms(trace: &jetsim_sim::RunTrace, f: fn(&jetsim_sim::ProcessStats) -> SimDuration) -> f64 {
    if trace.processes.is_empty() {
        return 0.0;
    }
    trace
        .processes
        .iter()
        .map(|p| f(p).as_millis_f64())
        .sum::<f64>()
        / trace.processes.len() as f64
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec::new()
    }
}

/// Phase-1 metrics of one sweep cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellMetrics {
    /// Aggregate throughput, images/s.
    pub throughput: f64,
    /// The paper's T/P metric, images/s per process.
    pub throughput_per_process: f64,
    /// Mean module power, W.
    pub mean_power_w: f64,
    /// GPU memory as a percentage of board RAM.
    pub gpu_memory_percent: f64,
    /// GPU busy percentage.
    pub gpu_utilization_percent: f64,
    /// Energy per image, J.
    pub power_per_image: f64,
    /// Mean EC wall time, ms.
    pub mean_ec_ms: f64,
    /// Mean per-EC launch CPU time, ms.
    pub mean_launch_ms: f64,
    /// Mean per-EC blocking, ms.
    pub mean_blocking_ms: f64,
    /// Mean per-EC sync wait, ms.
    pub mean_sync_ms: f64,
    /// GPU frequency after DVFS settled, MHz.
    pub final_gpu_freq_mhz: u32,
}

/// What happened to one cell of the grid.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum CellOutcome {
    /// The cell ran; metrics inside.
    Ok(CellMetrics),
    /// The deployment did not fit in unified memory (on hardware this
    /// reboots the board).
    OutOfMemory {
        /// MiB the deployment needed.
        required_mib: u64,
        /// MiB available.
        usable_mib: u64,
    },
    /// The engine could not be built for these parameters.
    BuildFailed(String),
    /// The engine built but the simulation itself was rejected for a
    /// reason other than memory (e.g. an invalid configuration).
    /// Previously these were mislabeled as [`CellOutcome::BuildFailed`].
    SimFailed(String),
}

impl CellOutcome {
    /// The metrics, if the cell ran.
    pub fn metrics(&self) -> Option<&CellMetrics> {
        match self {
            CellOutcome::Ok(m) => Some(m),
            _ => None,
        }
    }
}

/// One `(precision, batch, processes)` cell of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepCell {
    /// Model name.
    pub model: String,
    /// Device name.
    pub device: String,
    /// Requested precision.
    pub precision: Precision,
    /// Batch size.
    pub batch: u32,
    /// Concurrent process count.
    pub processes: u32,
    /// Outcome.
    pub outcome: CellOutcome,
}

impl fmt::Display for SweepCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} b{} p{}: ",
            self.model, self.precision, self.batch, self.processes
        )?;
        match &self.outcome {
            CellOutcome::Ok(m) => write!(
                f,
                "T/P {:.1} img/s, {:.2} W, mem {:.1}%",
                m.throughput_per_process, m.mean_power_w, m.gpu_memory_percent
            ),
            CellOutcome::OutOfMemory {
                required_mib,
                usable_mib,
            } => write!(f, "OOM ({required_mib} MiB > {usable_mib} MiB)"),
            CellOutcome::BuildFailed(e) => write!(f, "build failed: {e}"),
            CellOutcome::SimFailed(e) => write!(f, "sim failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetsim_dnn::zoo;

    fn fast_spec() -> SweepSpec {
        SweepSpec::new()
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(400))
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1, 4])
            .process_counts([1, 2]);
        let cells = spec.run(&Platform::orin_nano(), &zoo::resnet50());
        assert_eq!(cells.len(), 4);
        let keys: Vec<(u32, u32)> = cells.iter().map(|c| (c.batch, c.processes)).collect();
        assert_eq!(keys, vec![(1, 1), (1, 2), (4, 1), (4, 2)]);
        assert!(cells.iter().all(|c| c.outcome.metrics().is_some()));
    }

    #[test]
    fn tp_falls_with_processes_rises_with_batch() {
        let spec = fast_spec()
            .precisions([Precision::Int8])
            .batches([1, 16])
            .process_counts([1, 8]);
        let cells = spec.run(&Platform::orin_nano(), &zoo::yolov8n());
        let tp = |b: u32, p: u32| {
            cells
                .iter()
                .find(|c| c.batch == b && c.processes == p)
                .and_then(|c| c.outcome.metrics())
                .map(|m| m.throughput_per_process)
                .expect("cell ran")
        };
        assert!(tp(16, 1) > tp(1, 1), "batch helps");
        assert!(tp(1, 8) < tp(1, 1) / 3.0, "processes hurt");
    }

    #[test]
    fn oom_cells_reported_not_fatal() {
        let spec = fast_spec()
            .precisions([Precision::Fp16])
            .batches([1])
            .process_counts([1, 4]);
        let cells = spec.run(&Platform::jetson_nano(), &zoo::fcn_resnet50());
        assert_eq!(cells.len(), 2);
        assert!(cells[0].outcome.metrics().is_some());
        assert!(matches!(cells[1].outcome, CellOutcome::OutOfMemory { .. }));
        assert!(format!("{}", cells[1]).contains("OOM"));
    }

    #[test]
    fn cells_count_product() {
        let spec = SweepSpec::new()
            .precisions(Precision::ALL)
            .batches([1, 2, 4])
            .process_counts([1, 2]);
        assert_eq!(spec.cells(), 24);
    }

    #[test]
    fn results_identical_across_worker_counts_and_cache_state() {
        let spec = fast_spec()
            .precisions([Precision::Int8, Precision::Fp16])
            .batches([1, 4])
            .process_counts([1, 2]);
        let platform = Platform::orin_nano();
        let model = zoo::yolov8n();
        // The first run may compile engines (cache cold for this grid);
        // the later runs hit the process-wide cache. Dispatch order and
        // cache state must not leak into the results.
        let cold = spec.clone().workers(1).run(&platform, &model);
        let warm2 = spec.clone().workers(2).run(&platform, &model);
        let warm8 = spec.clone().workers(8).run(&platform, &model);
        let json = |cells: &[SweepCell]| serde_json::to_string(cells).expect("serializable");
        assert_eq!(json(&cold), json(&warm2), "1 vs 2 workers");
        assert_eq!(json(&cold), json(&warm8), "1 vs 8 workers (cache warm)");
    }

    #[test]
    fn cell_seeds_depend_on_every_coordinate() {
        let spec = SweepSpec::new();
        let base = spec.cell_seed(Precision::Int8, 4, 2);
        assert_ne!(base, spec.cell_seed(Precision::Fp16, 4, 2), "precision");
        assert_ne!(base, spec.cell_seed(Precision::Int8, 8, 2), "batch");
        assert_ne!(base, spec.cell_seed(Precision::Int8, 4, 4), "processes");
    }
}
