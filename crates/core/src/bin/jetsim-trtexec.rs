//! A `trtexec`-style command-line front-end for the simulator.
//!
//! Mirrors the flags the paper drives its experiments with and prints a
//! trtexec-like performance summary plus the `jetson-stats` view:
//!
//! ```sh
//! jetsim-trtexec --model=resnet50 --int8 --batch=8 --device=orin-nano \
//!     --processes=2 --duration=2 --chrome-trace=/tmp/timeline.json
//! ```
//!
//! Heterogeneous deployments use the repeatable `--tenant` flag instead
//! of `--model`; each tenant is `model:precision:batch[:count]`:
//!
//! ```sh
//! jetsim-trtexec --tenant=resnet50:int8:1:2 --tenant=yolov8n:fp16:4 \
//!     --device=orin-nano --duration=2
//! ```

use std::process::ExitCode;

use jetsim::deployment::Tenant;
use jetsim::prelude::*;
use jetsim::scenario::{parse_duration, FlagCursor, ScenarioSpec};
use jetsim_profile::chrome_trace;
use jetsim_sim::{FaultKind, FaultPlan, GpuPolicy};

#[derive(Debug)]
struct Args {
    model: String,
    tenants: Vec<String>,
    precision: Precision,
    batch: u32,
    processes: u32,
    streams: u32,
    device: String,
    duration_secs: f64,
    nsight: bool,
    chrome_trace: Option<String>,
    seed: u64,
    faults: bool,
    fault_seed: Option<u64>,
    gpu_policy: GpuPolicy,
}

impl Args {
    fn usage() -> &'static str {
        "usage: jetsim-trtexec --model=<zoo name or path/to/model.json>\n\
         \x20                  zoo: resnet50, fcn_resnet50, yolov8n, resnet18, resnet34, resnet101, mobilenet_v2\n\
         \x20                  [--int8|--fp16|--tf32|--fp32] [--batch=N] [--processes=N] [--streams=N]\n\
         \x20                  [--device=orin-nano|jetson-nano|cloud-a40] [--duration=SECONDS]\n\
         \x20                  [--nsight] [--chrome-trace=FILE] [--seed=N] [--faults[=SEED]]\n\
         \x20                  [--gpu-policy=rr|fifo|priority[:PENALTY_US]|mps[:OVERLAP]]\n\
         \x20                  --faults injects a seeded fault plan (memory spikes + a throttle\n\
         \x20                  lock) and swaps strict OOM admission for OOM-killer semantics\n\
         \x20      or: jetsim-trtexec --tenant=model:precision:batch[:count[:priority]] [--tenant=...]\n\
         \x20                  runs a heterogeneous deployment (repeat --tenant per model mix;\n\
         \x20                  key=value specs like model=resnet50,precision=int8,batch=4 also work);\n\
         \x20                  mutually exclusive with --model/--batch/--processes/--streams\n\
         \x20                  and the precision flags\n\
         \x20      or: jetsim-trtexec --scenario=FILE\n\
         \x20                  load a TOML/JSON scenario document as the base configuration\n\
         \x20                  (device, seed, duration, gpu_policy, fault_seed and tenant specs;\n\
         \x20                  serving-only fields are ignored by this closed-loop tool);\n\
         \x20                  explicit flags override individual fields"
    }

    /// Applies the closed-loop subset of a scenario document as base
    /// values (flags parsed afterwards override them). Serving-only
    /// fields — SLO, arrivals, resilience, autoscaling — have no
    /// meaning under closed-loop load and are ignored.
    fn apply_scenario(&mut self, sc: &ScenarioSpec) -> Result<(), String> {
        if let Some(device) = &sc.device {
            self.device = device.clone();
        }
        if let Some(seed) = sc.seed {
            self.seed = seed;
        }
        if let Some(duration) = &sc.duration {
            self.duration_secs = parse_duration(duration)?.as_secs_f64();
        }
        if let Some(policy) = &sc.gpu_policy {
            self.gpu_policy = policy
                .parse()
                .map_err(|e| format!("scenario gpu_policy: {e}"))?;
        }
        if let Some(fault_seed) = sc.fault_seed {
            self.faults = true;
            self.fault_seed = Some(fault_seed);
        }
        for tenant in sc.tenants.iter().flatten() {
            if let Some(spec) = &tenant.spec {
                self.tenants.push(spec.clone());
            }
        }
        Ok(())
    }

    fn parse(argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let argv: Vec<String> = argv.collect();
        let mut args = Args {
            model: String::new(),
            tenants: Vec::new(),
            precision: Precision::Fp32,
            batch: 1,
            processes: 1,
            streams: 1,
            device: "orin-nano".to_string(),
            duration_secs: 2.0,
            nsight: false,
            chrome_trace: None,
            seed: 0x6A65_7473,
            faults: false,
            fault_seed: None,
            gpu_policy: GpuPolicy::TimesliceRR,
        };
        // Pass 1: an optional scenario file supplies base values; any
        // explicit flag (pass 2) overrides the corresponding field.
        let mut tenants_from_scenario = false;
        for (i, arg) in argv.iter().enumerate() {
            let path = match arg.strip_prefix("--scenario=") {
                Some(p) => Some(p.to_string()),
                None if arg == "--scenario" => argv.get(i + 1).cloned(),
                None => None,
            };
            if let Some(path) = path {
                let scenario: ScenarioSpec = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read scenario `{path}`: {e}"))?
                    .parse()
                    .map_err(|e| format!("{path}: {e}"))?;
                args.tenants.clear();
                args.apply_scenario(&scenario)?;
                tenants_from_scenario = !args.tenants.is_empty();
            }
        }
        let mut workload_flags = false;
        let mut argv = FlagCursor::new(argv.into_iter());
        while let Some((key, mut value)) = argv.next_flag() {
            match key.as_str() {
                "--model" | "--onnx" => {
                    workload_flags = true;
                    args.model = argv.require(&mut value)?;
                }
                "--scenario" => {
                    // Applied in pass 1; just validate the spelling.
                    argv.require(&mut value)?;
                }
                "--tenant" => {
                    if tenants_from_scenario {
                        // Explicit --tenant flags redefine the workload.
                        args.tenants.clear();
                        tenants_from_scenario = false;
                    }
                    args.tenants.push(argv.require(&mut value)?)
                }
                "--int8" => {
                    workload_flags = true;
                    args.precision = Precision::Int8;
                }
                "--fp16" => {
                    workload_flags = true;
                    args.precision = Precision::Fp16;
                }
                "--tf32" => {
                    workload_flags = true;
                    args.precision = Precision::Tf32;
                }
                "--fp32" => {
                    workload_flags = true;
                    args.precision = Precision::Fp32;
                }
                "--batch" => {
                    workload_flags = true;
                    args.batch = argv
                        .require(&mut value)?
                        .parse()
                        .map_err(|e| format!("bad --batch: {e}"))?
                }
                "--processes" => {
                    workload_flags = true;
                    args.processes = argv
                        .require(&mut value)?
                        .parse()
                        .map_err(|e| format!("bad --processes: {e}"))?
                }
                "--streams" => {
                    workload_flags = true;
                    args.streams = argv
                        .require(&mut value)?
                        .parse()
                        .map_err(|e| format!("bad --streams: {e}"))?
                }
                "--device" => args.device = argv.require(&mut value)?,
                "--duration" => {
                    args.duration_secs = argv
                        .require(&mut value)?
                        .parse()
                        .map_err(|e| format!("bad --duration: {e}"))?
                }
                "--nsight" => args.nsight = true,
                "--faults" => {
                    args.faults = true;
                    if let Some(v) = value {
                        args.fault_seed =
                            Some(v.parse().map_err(|e| format!("bad --faults: {e}"))?);
                    }
                }
                "--gpu-policy" => {
                    args.gpu_policy = argv
                        .require(&mut value)?
                        .parse()
                        .map_err(|e| format!("bad --gpu-policy: {e}"))?
                }
                "--chrome-trace" => args.chrome_trace = Some(argv.require(&mut value)?),
                "--seed" => {
                    args.seed = argv
                        .require(&mut value)?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?
                }
                "--help" | "-h" => return Err(Args::usage().to_string()),
                other => return Err(format!("unknown flag `{other}`\n{}", Args::usage())),
            }
        }
        if tenants_from_scenario && workload_flags {
            // A --model invocation on top of a scenario file keeps the
            // scenario's device/seed/duration but swaps the workload.
            args.tenants.clear();
        }
        if !args.tenants.is_empty() && workload_flags {
            return Err(format!(
                "--tenant cannot be combined with --model/--batch/--processes/--streams \
                 or precision flags (each tenant spec carries its own)\n{}",
                Args::usage()
            ));
        }
        if args.tenants.is_empty() && args.model.is_empty() {
            return Err(format!(
                "--model, --tenant or --scenario is required\n{}",
                Args::usage()
            ));
        }
        Ok(args)
    }

    fn platform(&self) -> Result<Platform, String> {
        Platform::by_name(&self.device).ok_or_else(|| format!("unknown device `{}`", self.device))
    }
}

fn run(args: Args) -> Result<(), String> {
    let platform = args.platform()?;
    let deployment = if args.tenants.is_empty() {
        None
    } else {
        let mut d = Deployment::new();
        for spec in &args.tenants {
            d = d.tenant(Tenant::parse(spec).map_err(|e| e.to_string())?);
        }
        Some(d)
    };

    let warmup = SimDuration::from_millis(500);
    let measure = SimDuration::from_secs_f64(args.duration_secs);
    let mut builder = SimConfig::builder(platform.device().clone())
        .warmup(warmup)
        .measure(measure)
        .seed(args.seed)
        .gpu_policy(args.gpu_policy)
        .profiler(if args.nsight {
            ProfilerMode::Nsight
        } else {
            ProfilerMode::Lightweight
        });

    if let Some(d) = &deployment {
        println!("=== Deployment ===");
        println!(
            "{} tenant(s), {} process(es): {}",
            d.len(),
            d.total_processes(),
            d.label()
        );
        for tenant in d.tenants() {
            let engine = platform
                .build_engine(tenant.model(), tenant.precision(), tenant.batch())
                .map_err(|e| e.to_string())?;
            println!(
                "  {} x{}: {} | {} kernels | engine {:.1} MiB + workspace {:.1} MiB",
                tenant.label(),
                tenant.instances(),
                tenant.model().stats(),
                engine.kernel_count(),
                engine.engine_bytes() as f64 / (1024.0 * 1024.0),
                engine.workspace_bytes() as f64 / (1024.0 * 1024.0),
            );
        }
        builder = d
            .add_to_config(&platform, builder)
            .map_err(|e| e.to_string())?;
    } else {
        let model = if args.model.ends_with(".json") {
            jetsim::plan::load_model(&args.model)
                .map_err(|e| format!("cannot load model file `{}`: {e}", args.model))?
        } else {
            zoo::by_name(&args.model).ok_or_else(|| format!("unknown model `{}`", args.model))?
        };
        let cache = jetsim_trt::EngineCache::global();
        let misses_before = cache.stats().misses;
        let build_start = std::time::Instant::now();
        let engine = platform
            .build_engine(&model, args.precision, args.batch)
            .map_err(|e| e.to_string())?;
        let build_secs = build_start.elapsed().as_secs_f64();
        let cache_state = if cache.stats().misses > misses_before {
            "compiled"
        } else {
            "cache hit"
        };

        println!("=== Model Options ===");
        println!("Model: {} ({})", model.name(), model.stats());
        println!("=== Build Options ===");
        println!(
            "Precision: {} (engine runs {:.0}% of FLOPs at the requested format)",
            args.precision,
            engine.requested_precision_flop_fraction() * 100.0
        );
        println!(
            "Batch: {} | Kernels after fusion: {}",
            args.batch,
            engine.kernel_count()
        );
        println!(
            "Engine size: {:.1} MiB | workspace {:.1} MiB",
            engine.engine_bytes() as f64 / (1024.0 * 1024.0),
            engine.workspace_bytes() as f64 / (1024.0 * 1024.0),
        );
        println!(
            "Engine build: {:.1} ms ({cache_state}; {} engine(s) cached this process)",
            build_secs * 1e3,
            cache.len()
        );
        for _ in 0..args.processes {
            builder = builder.add_engine_streams(&engine, args.streams);
        }
    }
    println!("=== Device ===");
    println!("{platform}");
    if args.gpu_policy != GpuPolicy::TimesliceRR {
        println!("GPU scheduling policy: {}", args.gpu_policy);
    }

    if args.faults {
        let fault_seed = args.fault_seed.unwrap_or(args.seed);
        let horizon = SimDuration::from_secs_f64(warmup.as_secs_f64() + measure.as_secs_f64());
        let plan = FaultPlan::seeded(fault_seed, horizon, 2, 1)
            .oom_policy(jetsim_sim::OomPolicy::KillLargest);
        println!("=== Fault Plan (seed {fault_seed}) ===");
        println!(
            "{} memory spike(s), {} throttle lock(s), OOM policy: kill-largest",
            plan.memory_spikes.len(),
            plan.throttle_locks.len()
        );
        builder = builder.faults(plan);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let trace = Simulation::new(config).map_err(|e| e.to_string())?.run();

    println!("\n=== Performance Summary ===");
    println!(
        "Throughput: {:.2} qps (total), {:.2} qps/process",
        trace.total_throughput(),
        trace.throughput_per_process()
    );
    for p in &trace.processes {
        println!(
            "{}: EC mean {} | median {} | p95 {} | p99 {} (launch {}, sync {}, blocking {})",
            p.name,
            p.mean_ec_time,
            p.p50_ec_time,
            p.p95_ec_time,
            p.p99_ec_time,
            p.mean_launch_time,
            p.mean_sync_time,
            p.mean_blocking_time,
        );
    }
    if !trace.preemptions.is_empty() {
        println!("Kernel preemptions: {}", trace.preemptions.len());
    }
    println!("\n=== jetson-stats ===");
    println!("{}", jetsim_profile::JetsonStatsReport::from_trace(&trace));

    if let Some(d) = &deployment {
        println!("\n=== Per-Tenant Summary ===");
        for tenant in TenantMetrics::from_trace(&trace, d) {
            println!("{tenant}");
        }
    }

    if args.faults {
        println!("\n=== Fault Events ===");
        if trace.fault_events.is_empty() {
            println!("(none fired inside the simulated window)");
        }
        for event in &trace.fault_events {
            let t_ms = event.time.as_micros_f64() / 1e3;
            match &event.kind {
                FaultKind::MemorySpikeStart { bytes } => println!(
                    "[{t_ms:9.3} ms] memory spike +{:.0} MiB",
                    *bytes as f64 / (1024.0 * 1024.0)
                ),
                FaultKind::MemorySpikeEnd { bytes } => println!(
                    "[{t_ms:9.3} ms] memory spike released -{:.0} MiB",
                    *bytes as f64 / (1024.0 * 1024.0)
                ),
                FaultKind::ThrottleLockStart { step, mhz } => {
                    println!("[{t_ms:9.3} ms] throttle lock: GPU pinned to step {step} ({mhz} MHz)")
                }
                FaultKind::ThrottleLockEnd => {
                    println!("[{t_ms:9.3} ms] throttle lock released; governor resumes")
                }
                FaultKind::ProcessKilled {
                    pid,
                    name,
                    freed_bytes,
                } => println!(
                    "[{t_ms:9.3} ms] OOM killer: {name} (pid {pid}) killed, {:.0} MiB freed",
                    *freed_bytes as f64 / (1024.0 * 1024.0)
                ),
                _ => println!("[{t_ms:9.3} ms] fault: {:?}", event.kind),
            }
        }
        if trace.killed_processes() > 0 {
            println!(
                "{} of {} processes killed; surviving throughput {:.2} qps",
                trace.killed_processes(),
                trace.processes.len(),
                trace.surviving_throughput()
            );
        }
    }

    if args.nsight {
        if let Some(report) = NsightReport::from_trace(&trace) {
            println!("\n=== Nsight Systems ===");
            println!("{report}");
        }
    }

    if let Some(path) = args.chrome_trace {
        std::fs::write(&path, chrome_trace::to_chrome_trace(&trace))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("\nchrome trace written to {path} (open in ui.perfetto.dev)");
    }
    Ok(())
}

fn main() -> ExitCode {
    match Args::parse(std::env::args().skip(1)) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
