//! Simulated platforms: the entry point of the public API.

use std::fmt;
use std::sync::Arc;

use jetsim_device::{presets, DeviceSpec};
use jetsim_dnn::{ModelGraph, Precision};
use jetsim_trt::{BuildError, Engine, EngineBuilder};

/// A simulated edge (or cloud) platform to profile workloads on.
///
/// # Examples
///
/// ```
/// use jetsim::Platform;
/// use jetsim_dnn::{zoo, Precision};
///
/// let orin = Platform::orin_nano();
/// let engine = orin.build_engine(&zoo::resnet50(), Precision::Int8, 4)?;
/// assert_eq!(engine.batch(), 4);
/// # Ok::<(), jetsim_trt::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    spec: DeviceSpec,
}

impl Platform {
    /// The NVIDIA Jetson Orin Nano (the paper's primary platform).
    pub fn orin_nano() -> Self {
        Platform {
            spec: presets::orin_nano(),
        }
    }

    /// The NVIDIA Jetson Nano (the paper's entry-level platform).
    pub fn jetson_nano() -> Self {
        Platform {
            spec: presets::jetson_nano(),
        }
    }

    /// An A40-class cloud GPU, for edge-vs-cloud offload studies.
    pub fn cloud_a40() -> Self {
        Platform {
            spec: presets::cloud_a40(),
        }
    }

    /// Wraps a custom device specification (for ablations).
    pub fn from_spec(spec: DeviceSpec) -> Self {
        Platform { spec }
    }

    /// The underlying device specification.
    pub fn device(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The platform's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Both paper platforms, in Table 1 order.
    pub fn paper_platforms() -> Vec<Platform> {
        vec![Platform::orin_nano(), Platform::jetson_nano()]
    }

    /// Builds a TensorRT-style engine for this platform.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the engine builder (invalid model,
    /// bad batch size).
    pub fn build_engine(
        &self,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
    ) -> Result<Arc<Engine>, BuildError> {
        Ok(Arc::new(
            EngineBuilder::new(&self.spec)
                .precision(precision)
                .batch(batch)
                .build(model)?,
        ))
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetsim_dnn::zoo;

    #[test]
    fn presets_accessible() {
        assert_eq!(Platform::orin_nano().name(), "Jetson Orin Nano");
        assert_eq!(Platform::jetson_nano().name(), "Jetson Nano");
        assert_eq!(Platform::cloud_a40().name(), "Cloud A40");
    }

    #[test]
    fn paper_platforms_order() {
        let names: Vec<String> = Platform::paper_platforms()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        assert_eq!(names, vec!["Jetson Orin Nano", "Jetson Nano"]);
    }

    #[test]
    fn engine_building_respects_device() {
        let nano = Platform::jetson_nano();
        let engine = nano
            .build_engine(&zoo::resnet50(), Precision::Int8, 1)
            .unwrap();
        assert_eq!(
            engine.requested_precision_flop_fraction(),
            0.0,
            "Maxwell fallback"
        );
    }

    #[test]
    fn from_spec_round_trips() {
        let spec = presets::orin_nano();
        let platform = Platform::from_spec(spec.clone());
        assert_eq!(platform.device(), &spec);
    }

    #[test]
    fn display_is_table_row() {
        let text = format!("{}", Platform::orin_nano());
        assert!(text.contains("Jetson Orin Nano"));
    }
}
