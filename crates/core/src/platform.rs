//! Simulated platforms: the entry point of the public API.

use std::fmt;
use std::sync::Arc;

use jetsim_device::{presets, DeviceSpec};
use jetsim_dnn::{ModelGraph, Precision};
use jetsim_trt::{BuildError, Engine, EngineCache};

/// A simulated edge (or cloud) platform to profile workloads on.
///
/// # Examples
///
/// ```
/// use jetsim::Platform;
/// use jetsim_dnn::{zoo, Precision};
///
/// let orin = Platform::orin_nano();
/// let engine = orin.build_engine(&zoo::resnet50(), Precision::Int8, 4)?;
/// assert_eq!(engine.batch(), 4);
/// # Ok::<(), jetsim_trt::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    spec: DeviceSpec,
}

impl Platform {
    /// The NVIDIA Jetson Orin Nano (the paper's primary platform).
    pub fn orin_nano() -> Self {
        Platform {
            spec: presets::orin_nano(),
        }
    }

    /// The NVIDIA Jetson Nano (the paper's entry-level platform).
    pub fn jetson_nano() -> Self {
        Platform {
            spec: presets::jetson_nano(),
        }
    }

    /// An A40-class cloud GPU, for edge-vs-cloud offload studies.
    pub fn cloud_a40() -> Self {
        Platform {
            spec: presets::cloud_a40(),
        }
    }

    /// Resolves a CLI platform name (the `--platform` grammar shared by
    /// `jetsim-trtexec` and `jetsim-serve`): `orin-nano`/`orin`,
    /// `jetson-nano`/`nano`, or `cloud-a40`/`a40`. `None` for anything
    /// else.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "orin-nano" | "orin" => Some(Platform::orin_nano()),
            "jetson-nano" | "nano" => Some(Platform::jetson_nano()),
            "cloud-a40" | "a40" => Some(Platform::cloud_a40()),
            _ => None,
        }
    }

    /// Wraps a custom device specification (for ablations).
    pub fn from_spec(spec: DeviceSpec) -> Self {
        Platform { spec }
    }

    /// The underlying device specification.
    pub fn device(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The platform's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Both paper platforms, in Table 1 order.
    pub fn paper_platforms() -> Vec<Platform> {
        vec![Platform::orin_nano(), Platform::jetson_nano()]
    }

    /// Builds a TensorRT-style engine for this platform.
    ///
    /// Engines are served from the process-wide [`EngineCache`], keyed by
    /// content fingerprints of the device spec and model graph plus the
    /// precision and batch, so each distinct engine is compiled exactly
    /// once per process — sweeps and figure harnesses that revisit the
    /// same `(model, precision, batch)` point pay the build cost only on
    /// the first visit. Engine building is deterministic, so a cached
    /// engine is indistinguishable from a fresh one.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the engine builder (invalid model,
    /// bad batch size). Failed builds are never cached.
    pub fn build_engine(
        &self,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
    ) -> Result<Arc<Engine>, BuildError> {
        EngineCache::global().get_or_build(&self.spec, model, precision, batch)
    }

    /// Builds an engine bypassing the process-wide cache (for ablations
    /// that mutate builder options, or benchmarks of the build itself).
    pub fn build_engine_uncached(
        &self,
        model: &ModelGraph,
        precision: Precision,
        batch: u32,
    ) -> Result<Arc<Engine>, BuildError> {
        Ok(Arc::new(
            jetsim_trt::EngineBuilder::new(&self.spec)
                .precision(precision)
                .batch(batch)
                .build(model)?,
        ))
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetsim_dnn::zoo;

    #[test]
    fn presets_accessible() {
        assert_eq!(Platform::orin_nano().name(), "Jetson Orin Nano");
        assert_eq!(Platform::jetson_nano().name(), "Jetson Nano");
        assert_eq!(Platform::cloud_a40().name(), "Cloud A40");
    }

    #[test]
    fn paper_platforms_order() {
        let names: Vec<String> = Platform::paper_platforms()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        assert_eq!(names, vec!["Jetson Orin Nano", "Jetson Nano"]);
    }

    #[test]
    fn engine_building_respects_device() {
        let nano = Platform::jetson_nano();
        let engine = nano
            .build_engine(&zoo::resnet50(), Precision::Int8, 1)
            .unwrap();
        assert_eq!(
            engine.requested_precision_flop_fraction(),
            0.0,
            "Maxwell fallback"
        );
    }

    #[test]
    fn repeated_builds_share_one_cached_engine() {
        let orin = Platform::orin_nano();
        let model = zoo::fcn_resnet50();
        let a = orin.build_engine(&model, Precision::Tf32, 3).unwrap();
        let b = orin.build_engine(&model, Precision::Tf32, 3).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second build must be a cache hit");
        // Uncached builds produce an equal engine but a fresh allocation.
        let c = orin
            .build_engine_uncached(&model, Precision::Tf32, 3)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(*a, *c, "engine building is deterministic");
    }

    #[test]
    fn from_spec_round_trips() {
        let spec = presets::orin_nano();
        let platform = Platform::from_spec(spec.clone());
        assert_eq!(platform.device(), &spec);
    }

    #[test]
    fn display_is_table_row() {
        let text = format!("{}", Platform::orin_nano());
        assert!(text.contains("Jetson Orin Nano"));
    }
}
