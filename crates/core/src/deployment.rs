//! First-class heterogeneous deployments: an ordered list of tenants
//! (model × precision × batch × count) sharing one device.
//!
//! The paper studies homogeneous concurrency — N identical `trtexec`
//! instances — but real edge boxes mix tenants: a detector, a classifier
//! and a segmenter time-sharing one Jetson. [`Deployment`] makes that
//! mix a value the whole profiling stack consumes: the
//! [`crate::DualPhaseProfiler`], the sweep supervisor
//! ([`crate::SweepSpec::run_deployment_supervised`]) and the
//! `jetsim-trtexec --tenant` flag all take the same type, and per-tenant
//! metrics ([`TenantMetrics`]) break aggregate throughput back down.
//!
//! Homogeneous calls are the trivial one-tenant case
//! ([`Deployment::homogeneous`]), so nothing downstream needs two code
//! paths.

use std::fmt;

use serde::Serialize;

use jetsim_dnn::{zoo, ModelGraph, Precision};
use jetsim_sim::{RunTrace, SimConfigBuilder};
use jetsim_trt::BuildError;

use crate::platform::Platform;

/// One tenant of a deployment: `count` concurrent processes running one
/// model at one precision and batch size.
///
/// # Examples
///
/// ```
/// use jetsim::deployment::Tenant;
/// use jetsim_dnn::{zoo, Precision};
///
/// let tenant = Tenant::new(zoo::resnet50(), Precision::Int8, 1).count(2);
/// assert_eq!(tenant.label(), "resnet50:int8:b1");
/// assert_eq!(tenant.instances(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Tenant {
    model: ModelGraph,
    precision: Precision,
    batch: u32,
    count: u32,
    priority: u8,
    sm_share: f64,
}

impl Tenant {
    /// One process of `model` at the given precision and batch size.
    pub fn new(model: ModelGraph, precision: Precision, batch: u32) -> Self {
        Tenant {
            model,
            precision,
            batch: batch.max(1),
            count: 1,
            priority: 0,
            sm_share: 1.0,
        }
    }

    /// Sets how many concurrent processes this tenant runs (≥ 1).
    pub fn count(mut self, count: u32) -> Self {
        self.count = count.max(1);
        self
    }

    /// Sets the tenant's GPU scheduling priority (higher wins under the
    /// `priority` GPU policy; every other policy ignores it). Default 0.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the tenant's fractional SM share (weight under the `mps` GPU
    /// policy; every other policy ignores it). Default 1.0.
    pub fn sm_share(mut self, share: f64) -> Self {
        self.sm_share = share;
        self
    }

    /// The tenant's GPU scheduling priority.
    pub fn gpu_priority(&self) -> u8 {
        self.priority
    }

    /// The tenant's fractional SM share.
    pub fn gpu_sm_share(&self) -> f64 {
        self.sm_share
    }

    /// The tenant's model graph.
    pub fn model(&self) -> &ModelGraph {
        &self.model
    }

    /// The tenant's inference precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The tenant's batch size per execution context.
    pub fn batch(&self) -> u32 {
        self.batch
    }

    /// How many concurrent processes the tenant runs.
    pub fn instances(&self) -> u32 {
        self.count
    }

    /// Canonical label, `model:precision:bBATCH` — used to name the
    /// tenant's processes and to key report rows.
    pub fn label(&self) -> String {
        format!("{}:{}:b{}", self.model.name(), self.precision, self.batch)
    }

    /// Parses a `--tenant` spec in either grammar the CLIs accept:
    ///
    /// * positional — `model:precision:batch[:count[:priority]]`;
    /// * key=value — comma-separated `key=value` fields, where `model`,
    ///   `precision` and `batch` are required and `count`, `priority`
    ///   and `sm_share` are optional. `sm_share` (the weight under
    ///   `--gpu-policy=mps`) has no positional slot, so the key=value
    ///   form is the only way to set it from a spec string.
    ///
    /// The model must be a zoo name. Errors name the offending field.
    ///
    /// # Examples
    ///
    /// ```
    /// use jetsim::deployment::Tenant;
    ///
    /// let t = Tenant::parse("yolov8n:fp16:4:2").unwrap();
    /// assert_eq!(t.label(), "yolov8n:fp16:b4");
    /// assert_eq!(t.instances(), 2);
    /// let t = Tenant::parse("resnet50:int8:1:1:5").unwrap();
    /// assert_eq!(t.gpu_priority(), 5);
    /// let t = Tenant::parse("model=resnet50,precision=int8,batch=4,count=2,sm_share=0.5")
    ///     .unwrap();
    /// assert_eq!(t.batch(), 4);
    /// assert_eq!(t.gpu_sm_share(), 0.5);
    /// assert!(Tenant::parse("nonesuch:fp16:1").is_err());
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError`] for unknown models, unknown
    /// precisions, unknown keys, or malformed field values.
    pub fn parse(spec: &str) -> Result<Tenant, DeploymentError> {
        if spec.contains('=') {
            return Self::parse_kv(spec);
        }
        let parts: Vec<&str> = spec.split(':').collect();
        if !(3..=5).contains(&parts.len()) {
            return Err(DeploymentError::BadSpec {
                spec: spec.to_string(),
                reason: format!("{} field(s)", parts.len()),
            });
        }
        let model = zoo::by_name(parts[0]).ok_or_else(|| DeploymentError::BadSpec {
            spec: spec.to_string(),
            reason: format!("unknown model `{}`", parts[0]),
        })?;
        let precision: Precision = parts[1].parse().map_err(|e| DeploymentError::BadSpec {
            spec: spec.to_string(),
            reason: format!("{e}"),
        })?;
        let batch: u32 =
            parts[2]
                .trim_start_matches('b')
                .parse()
                .map_err(|e| DeploymentError::BadSpec {
                    spec: spec.to_string(),
                    reason: format!("bad batch: {e}"),
                })?;
        let count: u32 = match parts.get(3) {
            Some(c) => c.parse().map_err(|e| DeploymentError::BadSpec {
                spec: spec.to_string(),
                reason: format!("bad count: {e}"),
            })?,
            None => 1,
        };
        let priority: u8 = match parts.get(4) {
            Some(p) => p.parse().map_err(|e| DeploymentError::BadSpec {
                spec: spec.to_string(),
                reason: format!("bad priority: {e}"),
            })?,
            None => 0,
        };
        Ok(Tenant::new(model, precision, batch)
            .count(count)
            .priority(priority))
    }

    /// The comma-separated key=value arm of [`Tenant::parse`].
    fn parse_kv(spec: &str) -> Result<Tenant, DeploymentError> {
        let bad = |reason: String| DeploymentError::BadSpec {
            spec: spec.to_string(),
            reason,
        };
        let mut model = None;
        let mut precision: Option<Precision> = None;
        let mut batch: Option<u32> = None;
        let mut count = 1u32;
        let mut priority = 0u8;
        let mut sm_share = 1.0f64;
        for field in spec.split(',') {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| bad(format!("field `{field}` is not key=value")))?;
            let value = value.trim();
            match key.trim() {
                "model" => {
                    model = Some(
                        zoo::by_name(value)
                            .ok_or_else(|| bad(format!("model: unknown model `{value}`")))?,
                    );
                }
                "precision" => {
                    precision = Some(value.parse().map_err(|e| bad(format!("precision: {e}")))?);
                }
                "batch" => {
                    batch = Some(
                        value
                            .trim_start_matches('b')
                            .parse()
                            .map_err(|e| bad(format!("batch: {e}")))?,
                    );
                }
                "count" => count = value.parse().map_err(|e| bad(format!("count: {e}")))?,
                "priority" => {
                    priority = value.parse().map_err(|e| bad(format!("priority: {e}")))?
                }
                "sm_share" => {
                    sm_share = value.parse().map_err(|e| bad(format!("sm_share: {e}")))?;
                    if !(sm_share > 0.0 && sm_share <= 1.0) {
                        return Err(bad(format!("sm_share: `{value}` not in (0, 1]")));
                    }
                }
                other => return Err(bad(format!("unknown field `{other}`"))),
            }
        }
        let model = model.ok_or_else(|| bad("missing field `model`".to_string()))?;
        let precision = precision.ok_or_else(|| bad("missing field `precision`".to_string()))?;
        let batch = batch.ok_or_else(|| bad("missing field `batch`".to_string()))?;
        Ok(Tenant::new(model, precision, batch)
            .count(count)
            .priority(priority)
            .sm_share(sm_share))
    }

    /// The canonical spec string [`Tenant::parse`] round-trips: the
    /// shortest positional form when the SM share is the default, the
    /// key=value form otherwise (sm_share has no positional slot).
    pub fn to_spec(&self) -> String {
        if self.sm_share == 1.0 {
            let mut s = format!("{}:{}:{}", self.model.name(), self.precision, self.batch);
            if self.priority != 0 {
                s.push_str(&format!(":{}:{}", self.count, self.priority));
            } else if self.count != 1 {
                s.push_str(&format!(":{}", self.count));
            }
            s
        } else {
            format!(
                "model={},precision={},batch={},count={},priority={},sm_share={}",
                self.model.name(),
                self.precision,
                self.batch,
                self.count,
                self.priority,
                self.sm_share
            )
        }
    }
}

impl fmt::Display for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

impl std::str::FromStr for Tenant {
    type Err = DeploymentError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Tenant::parse(s)
    }
}

/// Errors from assembling or parsing a deployment.
#[derive(Debug)]
pub enum DeploymentError {
    /// A tenant spec string did not parse.
    BadSpec {
        /// The offending spec.
        spec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// Engine building failed for one tenant.
    Build {
        /// The tenant whose engine failed to build.
        label: String,
        /// The underlying build error.
        source: BuildError,
    },
}

impl fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeploymentError::BadSpec { spec, reason } => {
                write!(
                    f,
                    "bad tenant spec `{spec}`: {reason} \
                     (expected model:precision:batch[:count[:priority]], e.g. resnet50:int8:1:2, \
                     or key=value fields, e.g. model=resnet50,precision=int8,batch=4,sm_share=0.5)"
                )
            }
            DeploymentError::Build { label, source } => {
                write!(f, "tenant {label}: engine build failed: {source}")
            }
        }
    }
}

impl std::error::Error for DeploymentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeploymentError::BadSpec { .. } => None,
            DeploymentError::Build { source, .. } => Some(source),
        }
    }
}

/// An ordered list of [`Tenant`]s sharing one device — the unit the
/// profiler, sweeps and CLI all consume.
///
/// # Examples
///
/// A mixed detector + classifier box:
///
/// ```
/// use jetsim::deployment::{Deployment, Tenant};
/// use jetsim_dnn::{zoo, Precision};
///
/// let deployment = Deployment::new()
///     .tenant(Tenant::new(zoo::resnet50(), Precision::Int8, 1).count(2))
///     .tenant(Tenant::new(zoo::yolov8n(), Precision::Fp16, 4));
/// assert_eq!(deployment.total_processes(), 3);
/// assert_eq!(
///     deployment.label(),
///     "resnet50:int8:b1x2+yolov8n:fp16:b4"
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    tenants: Vec<Tenant>,
}

impl Deployment {
    /// An empty deployment to extend with [`Deployment::tenant`].
    pub fn new() -> Self {
        Deployment::default()
    }

    /// Appends a tenant (order is preserved and determines process ids).
    pub fn tenant(mut self, tenant: Tenant) -> Self {
        self.tenants.push(tenant);
        self
    }

    /// The homogeneous case the paper measures: `count` identical
    /// processes of one model — a single-tenant deployment.
    pub fn homogeneous(model: &ModelGraph, precision: Precision, batch: u32, count: u32) -> Self {
        Deployment::new().tenant(Tenant::new(model.clone(), precision, batch).count(count))
    }

    /// The tenants, in deployment order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// `true` when no tenants have been added.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Number of tenants (not processes).
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Total concurrent processes across all tenants.
    pub fn total_processes(&self) -> u32 {
        self.tenants.iter().map(Tenant::instances).sum()
    }

    /// Canonical label: tenant labels joined with `+`, each suffixed
    /// `xN` when it runs more than one instance.
    pub fn label(&self) -> String {
        self.tenants
            .iter()
            .map(|t| {
                if t.instances() > 1 {
                    format!("{}x{}", t.label(), t.instances())
                } else {
                    t.label()
                }
            })
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Maps each process index (in the order processes are added to a
    /// [`SimConfigBuilder`]) to its tenant index.
    pub fn tenant_of_process(&self) -> Vec<usize> {
        let mut map = Vec::with_capacity(self.total_processes() as usize);
        for (index, tenant) in self.tenants.iter().enumerate() {
            for _ in 0..tenant.instances() {
                map.push(index);
            }
        }
        map
    }

    /// Builds every tenant's engine on `platform` (served from the
    /// process-wide engine cache) and adds the deployment's processes to
    /// `builder`, named `label/i` so traces and reports carry tenant
    /// identity.
    ///
    /// # Errors
    ///
    /// Returns [`DeploymentError::Build`] naming the failing tenant.
    pub fn add_to_config(
        &self,
        platform: &Platform,
        mut builder: SimConfigBuilder,
    ) -> Result<SimConfigBuilder, DeploymentError> {
        for tenant in &self.tenants {
            let engine = platform
                .build_engine(tenant.model(), tenant.precision(), tenant.batch())
                .map_err(|source| DeploymentError::Build {
                    label: tenant.label(),
                    source,
                })?;
            let label = tenant.label();
            for instance in 0..tenant.instances() {
                builder = builder
                    .add_engine_named(
                        format!("{label}/{instance}"),
                        std::sync::Arc::clone(&engine),
                    )
                    .process_priority(tenant.gpu_priority())
                    .process_sm_share(tenant.gpu_sm_share());
            }
        }
        Ok(builder)
    }
}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Per-tenant breakdown of a run — aggregate throughput and latency of
/// the processes belonging to one tenant.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantMetrics {
    /// The tenant's canonical label (`model:precision:bBATCH`).
    pub label: String,
    /// Processes the tenant ran.
    pub processes: u32,
    /// Aggregate tenant throughput, images/s.
    pub throughput: f64,
    /// Mean per-process throughput within the tenant.
    pub throughput_per_process: f64,
    /// Mean EC wall time across the tenant's processes, ms.
    pub mean_ec_ms: f64,
    /// Worst 99th-percentile EC wall time across the tenant's
    /// processes, ms — the tenant's tail latency under contention.
    pub p99_ec_ms: f64,
    /// Processes of this tenant the simulated OOM killer terminated.
    pub killed: u32,
}

impl TenantMetrics {
    /// Breaks a trace down per tenant. Process `i` of the trace belongs
    /// to `deployment.tenant_of_process()[i]`; processes beyond the
    /// mapping (not part of the deployment) are ignored.
    pub fn from_trace(trace: &RunTrace, deployment: &Deployment) -> Vec<TenantMetrics> {
        let owner = deployment.tenant_of_process();
        let mut out: Vec<TenantMetrics> = deployment
            .tenants()
            .iter()
            .map(|t| TenantMetrics {
                label: t.label(),
                processes: 0,
                throughput: 0.0,
                throughput_per_process: 0.0,
                mean_ec_ms: 0.0,
                p99_ec_ms: 0.0,
                killed: 0,
            })
            .collect();
        for (pid, stats) in trace.processes.iter().enumerate() {
            let Some(&tenant) = owner.get(pid) else {
                continue;
            };
            let m = &mut out[tenant];
            m.processes += 1;
            m.throughput += stats.throughput;
            m.mean_ec_ms += stats.mean_ec_time.as_millis_f64();
            m.p99_ec_ms = m.p99_ec_ms.max(stats.p99_ec_time.as_millis_f64());
            if stats.killed_at.is_some() {
                m.killed += 1;
            }
        }
        for m in &mut out {
            if m.processes > 0 {
                m.throughput_per_process = m.throughput / f64::from(m.processes);
                m.mean_ec_ms /= f64::from(m.processes);
            }
        }
        out
    }
}

impl fmt::Display for TenantMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ×{}: {:.1} img/s (T/P {:.1}), EC {:.2} ms mean / {:.2} ms p99",
            self.label,
            self.processes,
            self.throughput,
            self.throughput_per_process,
            self.mean_ec_ms,
            self.p99_ec_ms,
        )?;
        if self.killed > 0 {
            write!(f, " [{} killed]", self.killed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jetsim_des::SimDuration;
    use jetsim_sim::{SimConfig, Simulation};

    fn mixed() -> Deployment {
        Deployment::new()
            .tenant(Tenant::new(zoo::resnet50(), Precision::Int8, 1).count(2))
            .tenant(Tenant::new(zoo::yolov8n(), Precision::Fp16, 4))
    }

    #[test]
    fn labels_and_counts() {
        let d = mixed();
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_processes(), 3);
        assert_eq!(d.label(), "resnet50:int8:b1x2+yolov8n:fp16:b4");
        assert_eq!(d.tenant_of_process(), vec![0, 0, 1]);
        assert_eq!(format!("{d}"), d.label());
    }

    #[test]
    fn homogeneous_is_one_tenant() {
        let d = Deployment::homogeneous(&zoo::resnet50(), Precision::Fp16, 2, 4);
        assert_eq!(d.len(), 1);
        assert_eq!(d.total_processes(), 4);
        assert_eq!(d.tenants()[0].batch(), 2);
        assert!(!d.is_empty());
        assert!(Deployment::new().is_empty());
    }

    #[test]
    fn parse_round_trips() {
        let t = Tenant::parse("resnet50:int8:1").unwrap();
        assert_eq!(t.label(), "resnet50:int8:b1");
        assert_eq!(t.instances(), 1);
        let t = Tenant::parse("fcn_resnet50:fp16:b2:3").unwrap();
        assert_eq!(t.batch(), 2);
        assert_eq!(t.instances(), 3);
        assert_eq!(t.gpu_priority(), 0, "priority defaults to 0");
        let t = Tenant::parse("resnet50:int8:1:2:7").unwrap();
        assert_eq!(t.instances(), 2);
        assert_eq!(t.gpu_priority(), 7);
        assert_eq!(t.gpu_sm_share(), 1.0);
    }

    #[test]
    fn parse_key_value_grammar() {
        let t = Tenant::parse("model=resnet50,precision=int8,batch=4").unwrap();
        assert_eq!(t.label(), "resnet50:int8:b4");
        assert_eq!(
            (t.instances(), t.gpu_priority(), t.gpu_sm_share()),
            (1, 0, 1.0)
        );
        let t = Tenant::parse(
            "model=yolov8n, precision=fp16, batch=b2, count=3, priority=5, sm_share=0.25",
        )
        .unwrap();
        assert_eq!(t.label(), "yolov8n:fp16:b2");
        assert_eq!(
            (t.instances(), t.gpu_priority(), t.gpu_sm_share()),
            (3, 5, 0.25)
        );
    }

    #[test]
    fn parse_key_value_names_the_offending_field() {
        for (bad, field) in [
            ("model=resnet50,precision=int8", "missing field `batch`"),
            ("precision=int8,batch=1", "missing field `model`"),
            ("model=resnet50,batch=1", "missing field `precision`"),
            (
                "model=nonesuch,precision=int8,batch=1",
                "unknown model `nonesuch`",
            ),
            (
                "model=resnet50,precision=int8,batch=1,sm_share=1.5",
                "sm_share",
            ),
            (
                "model=resnet50,precision=int8,batch=1,sm_share=0",
                "sm_share",
            ),
            (
                "model=resnet50,precision=int8,batch=1,gpu=2",
                "unknown field `gpu`",
            ),
            (
                "model=resnet50,precision=int8,batch=1,count",
                "not key=value",
            ),
            ("model=resnet50,precision=int9,batch=1", "precision"),
        ] {
            let err = Tenant::parse(bad).unwrap_err();
            assert!(
                err.to_string().contains(field),
                "`{bad}` should name `{field}`: {err}"
            );
        }
    }

    #[test]
    fn to_spec_round_trips_both_grammars() {
        for spec in [
            "resnet50:int8:1",
            "yolov8n:fp16:4:2",
            "resnet50:int8:1:2:7",
            "model=resnet50,precision=int8,batch=4,count=2,priority=1,sm_share=0.5",
        ] {
            let t = Tenant::parse(spec).unwrap();
            let back: Tenant = t.to_spec().parse().unwrap();
            assert_eq!(t.label(), back.label(), "{spec}");
            assert_eq!(t.instances(), back.instances(), "{spec}");
            assert_eq!(t.gpu_priority(), back.gpu_priority(), "{spec}");
            assert_eq!(t.gpu_sm_share(), back.gpu_sm_share(), "{spec}");
            assert_eq!(format!("{t}"), t.to_spec());
        }
        // Canonical form stays positional while sm_share is default.
        assert_eq!(
            Tenant::parse("resnet50:int8:1:2").unwrap().to_spec(),
            "resnet50:int8:1:2"
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "resnet50",
            "resnet50:int8",
            "nonesuch:int8:1",
            "resnet50:int9:1",
            "resnet50:int8:zero",
            "resnet50:int8:1:many",
            "resnet50:int8:1:2:high",
            "resnet50:int8:1:2:3:4",
        ] {
            let err = Tenant::parse(bad).unwrap_err();
            assert!(
                matches!(err, DeploymentError::BadSpec { .. }),
                "{bad}: {err}"
            );
            let message = err.to_string();
            assert!(message.contains("bad tenant spec"), "{message}");
            assert!(
                message.contains(&format!("`{bad}`")),
                "names the offending spec: {message}"
            );
            assert!(
                message.contains("model:precision:batch[:count[:priority]]"),
                "teaches the grammar: {message}"
            );
        }
    }

    #[test]
    fn mixed_deployment_runs_with_tenant_identity() {
        let platform = Platform::orin_nano();
        let builder = SimConfig::builder(platform.device().clone())
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(500));
        let d = mixed();
        let config = d
            .add_to_config(&platform, builder)
            .unwrap()
            .build()
            .unwrap();
        let names: Vec<&str> = config.processes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "resnet50:int8:b1/0",
                "resnet50:int8:b1/1",
                "yolov8n:fp16:b4/0"
            ]
        );
        let trace = Simulation::new(config).unwrap().run();
        let tenants = TenantMetrics::from_trace(&trace, &d);
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].processes, 2);
        assert_eq!(tenants[1].processes, 1);
        assert!(tenants.iter().all(|t| t.throughput > 0.0), "{tenants:?}");
        let total: f64 = tenants.iter().map(|t| t.throughput).sum();
        assert!((total - trace.total_throughput()).abs() < 1e-9);
        assert!(format!("{}", tenants[0]).contains("img/s"));
    }

    #[test]
    fn build_errors_name_the_tenant() {
        let platform = Platform::orin_nano();
        let builder = SimConfig::builder(platform.device().clone());
        // Batch 0 is clamped to 1 by Tenant::new, so force an invalid
        // batch through a huge value the builder rejects.
        let d = Deployment::new().tenant(Tenant::new(zoo::resnet50(), Precision::Int8, 100_000));
        let err = d.add_to_config(&platform, builder).unwrap_err();
        assert!(matches!(err, DeploymentError::Build { .. }), "{err}");
        assert!(err.to_string().contains("resnet50"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
