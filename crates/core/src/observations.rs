//! The paper's boxed observations as executable checks.
//!
//! Each section of the paper's evaluation ends in a boxed takeaway. This
//! module encodes them as predicates over sweep results and profiles, so
//! the reproduction can *verify* — in CI, not by eyeballing plots — that
//! the simulated platform exhibits the published behaviour.

use std::fmt;

use jetsim_dnn::Precision;
use jetsim_profile::NsightReport;

use crate::sweep::SweepCell;

/// The outcome of checking one boxed observation.
#[derive(Debug, Clone)]
pub struct Check {
    /// Short identifier, e.g. `obs-6.1.1`.
    pub id: &'static str,
    /// The paper's claim, paraphrased.
    pub claim: &'static str,
    /// Whether the simulated platform exhibits it.
    pub holds: bool,
    /// Numbers backing the verdict.
    pub evidence: String,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — {}: {}",
            if self.holds { "PASS" } else { "FAIL" },
            self.id,
            self.claim,
            self.evidence
        )
    }
}

fn tp(cells: &[SweepCell], precision: Precision, batch: u32, procs: u32) -> Option<f64> {
    cells
        .iter()
        .find(|c| c.precision == precision && c.batch == batch && c.processes == procs)
        .and_then(|c| c.outcome.metrics())
        .map(|m| m.throughput_per_process)
}

fn metric(
    cells: &[SweepCell],
    precision: Precision,
    batch: u32,
    procs: u32,
    f: fn(&crate::sweep::CellMetrics) -> f64,
) -> Option<f64> {
    cells
        .iter()
        .find(|c| c.precision == precision && c.batch == batch && c.processes == procs)
        .and_then(|c| c.outcome.metrics())
        .map(f)
}

/// §6.1.1 — "int8 models are beneficial on Jetson Orin Nano whereas fp16
/// models are optimal for Jetson Nano." Pass the b1/p1 precision sweep of
/// one model and the expected winner for the device.
pub fn optimal_precision(cells: &[SweepCell], expected: Precision) -> Check {
    let mut best: Option<(Precision, f64)> = None;
    for precision in Precision::ALL {
        if let Some(t) = tp(cells, precision, 1, 1) {
            if best.map(|(_, bt)| t > bt).unwrap_or(true) {
                best = Some((precision, t));
            }
        }
    }
    match best {
        Some((winner, t)) => Check {
            id: "obs-6.1.1",
            claim: "the device-native reduced precision wins",
            holds: winner == expected,
            evidence: format!("fastest precision {winner} at {t:.1} img/s (expected {expected})"),
        },
        None => Check {
            id: "obs-6.1.1",
            claim: "the device-native reduced precision wins",
            holds: false,
            evidence: "no successful cells".to_string(),
        },
    }
}

/// §6.1.1 — "GPU memory usage typically increases when higher precision
/// levels are used."
pub fn memory_grows_with_precision(cells: &[SweepCell]) -> Check {
    let mem: Vec<(Precision, f64)> = Precision::ALL
        .iter()
        .filter_map(|&p| metric(cells, p, 1, 1, |m| m.gpu_memory_percent).map(|v| (p, v)))
        .collect();
    let holds = mem.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-9);
    Check {
        id: "obs-6.1.1-mem",
        claim: "GPU memory grows from int8 to fp32",
        holds,
        evidence: mem
            .iter()
            .map(|(p, v)| format!("{p} {v:.2}%"))
            .collect::<Vec<_>>()
            .join(", "),
    }
}

/// §6.1.2 — "supported precision formats consume less power per image
/// than unsupported formats" (Jetson Nano: fp16 vs the fp32 fallbacks).
pub fn supported_format_cheapest_per_image(cells: &[SweepCell]) -> Check {
    let ppi: Vec<(Precision, f64)> = Precision::ALL
        .iter()
        .filter_map(|&p| metric(cells, p, 1, 1, |m| m.power_per_image).map(|v| (p, v)))
        .collect();
    let fp16 = ppi.iter().find(|(p, _)| *p == Precision::Fp16).map(|x| x.1);
    let holds = match fp16 {
        Some(f) => ppi.iter().all(|&(p, v)| p == Precision::Fp16 || f < v),
        None => false,
    };
    Check {
        id: "obs-6.1.2",
        claim: "the natively supported format uses the least energy per image",
        holds,
        evidence: ppi
            .iter()
            .map(|(p, v)| format!("{p} {v:.3} J"))
            .collect::<Vec<_>>()
            .join(", "),
    }
}

/// §6.1.2 (Orin) — "power notably drops for fp32" thanks to DVFS.
pub fn fp32_power_drops(cells: &[SweepCell]) -> Check {
    let power = |p| metric(cells, p, 1, 1, |m| m.mean_power_w);
    let (Some(tf32), Some(fp32)) = (power(Precision::Tf32), power(Precision::Fp32)) else {
        return Check {
            id: "obs-6.1.2-dvfs",
            claim: "fp32 draws less than tf32 under DVFS",
            holds: false,
            evidence: "missing cells".to_string(),
        };
    };
    let freq = metric(cells, Precision::Fp32, 1, 1, |m| {
        f64::from(m.final_gpu_freq_mhz)
    });
    Check {
        id: "obs-6.1.2-dvfs",
        claim: "fp32 draws less than tf32 under DVFS",
        holds: fp32 < tf32,
        evidence: format!(
            "fp32 {fp32:.2} W vs tf32 {tf32:.2} W (fp32 clock {} MHz)",
            freq.unwrap_or(0.0)
        ),
    }
}

/// §6.1.3 — "low issue slot utilisation … highlights significant
/// instruction stalls": SM active high, issue slot ≤ 80 % and ~25–45 %
/// on average.
pub fn issue_slots_stall(report: &NsightReport) -> Check {
    let sm = report.cdfs.sm_active.mean();
    let issue = report.cdfs.issue_slot.mean();
    let max_issue = report.cdfs.issue_slot.quantile(1.0);
    let holds = sm > 0.55 && issue < sm && max_issue <= 0.8 && (0.1..=0.5).contains(&issue);
    Check {
        id: "obs-6.1.3",
        claim: "SMs stay active while issue slots stall below 80%",
        holds,
        evidence: format!(
            "SM mean {:.0}%, issue mean {:.0}%, issue max {:.0}%",
            sm * 100.0,
            issue * 100.0,
            max_issue * 100.0
        ),
    }
}

/// §6.1.4 — "higher TC utilisation does not always equate to higher
/// throughput". Pass (tc_mean, throughput) for a TC-pinned slow model
/// (FCN fp16) and a TC-light fast one (ResNet int8 / YoloV8n int8).
pub fn tc_not_throughput(pinned: (f64, f64), light: (f64, f64)) -> Check {
    let holds = pinned.0 > light.0 && pinned.1 < light.1;
    Check {
        id: "obs-6.1.4",
        claim: "high TC activity does not imply high throughput",
        holds,
        evidence: format!(
            "TC {:.0}% at {:.1} img/s vs TC {:.0}% at {:.1} img/s",
            pinned.0 * 100.0,
            pinned.1,
            light.0 * 100.0,
            light.1
        ),
    }
}

/// §6.2.1 — "T/P increases with larger batch sizes … declines as the
/// number of concurrent processes increases", while GPU memory keeps
/// growing with both.
pub fn tp_scaling(cells: &[SweepCell], precision: Precision) -> Check {
    let batches: Vec<u32> = sorted_values(cells, |c| c.batch);
    let procs: Vec<u32> = sorted_values(cells, |c| c.processes);
    let (&bmin, &bmax) = (batches.first().unwrap_or(&1), batches.last().unwrap_or(&1));
    let (&pmin, &pmax) = (procs.first().unwrap_or(&1), procs.last().unwrap_or(&1));
    let batch_up = match (
        tp(cells, precision, bmin, pmin),
        tp(cells, precision, bmax, pmin),
    ) {
        (Some(lo), Some(hi)) => hi > lo,
        _ => false,
    };
    let procs_down = match (
        tp(cells, precision, bmin, pmin),
        tp(cells, precision, bmin, pmax),
    ) {
        (Some(lo), Some(hi)) => hi < lo,
        _ => false,
    };
    let mem_up = match (
        metric(cells, precision, bmin, pmin, |m| m.gpu_memory_percent),
        metric(cells, precision, bmax, pmax, |m| m.gpu_memory_percent),
    ) {
        (Some(lo), Some(hi)) => hi > lo,
        // The largest cell may legitimately be OOM — that *is* growth.
        (Some(_), None) => true,
        _ => false,
    };
    Check {
        id: "obs-6.2.1",
        claim: "T/P rises with batch, falls with processes; memory keeps growing",
        holds: batch_up && procs_down && mem_up,
        evidence: format!("batch_up {batch_up}, procs_down {procs_down}, mem_up {mem_up}"),
    }
}

/// §6.2.2 — "power consumption never crosses a certain value" (7 W Orin
/// Nano, 5 W Jetson Nano).
pub fn power_capped(cells: &[SweepCell], budget_w: f64) -> Check {
    let peak = cells
        .iter()
        .filter_map(|c| c.outcome.metrics())
        .map(|m| m.mean_power_w)
        .fold(0.0, f64::max);
    Check {
        id: "obs-6.2.2",
        claim: "mean power never crosses the module budget",
        holds: peak <= budget_w * 1.05,
        evidence: format!("peak mean power {peak:.2} W vs budget {budget_w:.1} W"),
    }
}

/// §7 — "if the number of processes is equal to or fewer than half the
/// available CPU cores, the EC duration remains stable … when it exceeds
/// this threshold, both the EC duration and kernel launch time increase."
pub fn ec_stability(cells: &[SweepCell], precision: Precision, heavy_cores: u32) -> Check {
    let ec = |p: u32| metric(cells, precision, 1, p, |m| m.mean_ec_ms);
    let launch = |p: u32| metric(cells, precision, 1, p, |m| m.mean_launch_ms);
    let procs: Vec<u32> = sorted_values(cells, |c| c.processes);
    let Some(base) = ec(1) else {
        return Check {
            id: "obs-7",
            claim: "EC stable iff processes fit the heavy cores",
            holds: false,
            evidence: "missing baseline cell".to_string(),
        };
    };
    let mut holds = true;
    let mut notes = vec![format!("EC(p1) {base:.2} ms")];
    for &p in &procs {
        let (Some(e), Some(l)) = (ec(p), launch(p)) else {
            continue;
        };
        notes.push(format!("p{p}: EC {e:.2} ms launch {l:.2} ms"));
        if p > heavy_cores {
            // Oversubscribed: EC must blow up and launches must stretch.
            if e < base * 1.8 || l <= launch(1).unwrap_or(0.0) {
                holds = false;
            }
        }
    }
    Check {
        id: "obs-7",
        claim: "EC stable iff processes fit the heavy cores",
        holds,
        evidence: notes.join("; "),
    }
}

/// §7 — "employing larger batch sizes helps stabilise the EC duration":
/// per-image EC time falls as batch grows.
pub fn batch_stabilizes_ec(cells: &[SweepCell], precision: Precision) -> Check {
    let batches: Vec<u32> = sorted_values(cells, |c| c.batch);
    let per_image: Vec<(u32, f64)> = batches
        .iter()
        .filter_map(|&b| {
            metric(cells, precision, b, 1, |m| m.mean_ec_ms).map(|e| (b, e / f64::from(b)))
        })
        .collect();
    let holds = per_image.len() >= 2
        && per_image.last().map(|x| x.1).unwrap_or(f64::MAX)
            < per_image.first().map(|x| x.1).unwrap_or(0.0);
    Check {
        id: "obs-7-batch",
        claim: "larger batches reduce per-image EC time",
        holds,
        evidence: per_image
            .iter()
            .map(|(b, e)| format!("b{b} {e:.2} ms/img"))
            .collect::<Vec<_>>()
            .join(", "),
    }
}

fn sorted_values(cells: &[SweepCell], f: fn(&SweepCell) -> u32) -> Vec<u32> {
    let mut v: Vec<u32> = cells.iter().map(f).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{CellMetrics, CellOutcome, SweepCell};

    fn cell(precision: Precision, batch: u32, procs: u32, tput: f64, mem: f64) -> SweepCell {
        SweepCell {
            model: "m".into(),
            device: "d".into(),
            precision,
            batch,
            processes: procs,
            offered_load: None,
            gpu_policy: "rr".into(),
            outcome: CellOutcome::Ok(CellMetrics {
                throughput: tput * f64::from(procs),
                throughput_per_process: tput,
                mean_power_w: 5.0,
                gpu_memory_percent: mem,
                gpu_utilization_percent: 90.0,
                power_per_image: 5.0 / tput,
                mean_ec_ms: f64::from(batch) * 1000.0 / tput,
                mean_launch_ms: 2.0 * f64::from(procs),
                mean_blocking_ms: 0.0,
                mean_sync_ms: 0.1,
                final_gpu_freq_mhz: 625,
                tenants: vec![],
            }),
        }
    }

    #[test]
    fn optimal_precision_detects_winner() {
        let cells = vec![
            cell(Precision::Int8, 1, 1, 400.0, 1.5),
            cell(Precision::Fp16, 1, 1, 260.0, 1.9),
            cell(Precision::Fp32, 1, 1, 60.0, 2.7),
        ];
        assert!(optimal_precision(&cells, Precision::Int8).holds);
        assert!(!optimal_precision(&cells, Precision::Fp16).holds);
    }

    #[test]
    fn memory_monotonicity() {
        let good = vec![
            cell(Precision::Int8, 1, 1, 1.0, 1.0),
            cell(Precision::Fp16, 1, 1, 1.0, 2.0),
            cell(Precision::Tf32, 1, 1, 1.0, 3.0),
            cell(Precision::Fp32, 1, 1, 1.0, 3.0),
        ];
        assert!(memory_grows_with_precision(&good).holds);
        let bad = vec![
            cell(Precision::Int8, 1, 1, 1.0, 5.0),
            cell(Precision::Fp16, 1, 1, 1.0, 2.0),
        ];
        assert!(!memory_grows_with_precision(&bad).holds);
    }

    #[test]
    fn tp_scaling_check() {
        let cells = vec![
            cell(Precision::Int8, 1, 1, 200.0, 1.0),
            cell(Precision::Int8, 16, 1, 300.0, 3.0),
            cell(Precision::Int8, 1, 8, 15.0, 8.0),
            cell(Precision::Int8, 16, 8, 30.0, 24.0),
        ];
        assert!(tp_scaling(&cells, Precision::Int8).holds);
    }

    #[test]
    fn power_cap_check() {
        let cells = vec![cell(Precision::Int8, 1, 1, 100.0, 1.0)];
        assert!(power_capped(&cells, 7.0).holds);
        assert!(!power_capped(&cells, 4.0).holds);
    }

    #[test]
    fn tc_vs_throughput() {
        assert!(tc_not_throughput((0.9, 18.0), (0.2, 400.0)).holds);
        assert!(!tc_not_throughput((0.1, 500.0), (0.2, 400.0)).holds);
    }

    #[test]
    fn batch_stabilisation() {
        let cells = vec![
            cell(Precision::Int8, 1, 1, 200.0, 1.0),
            cell(Precision::Int8, 16, 1, 400.0, 2.0),
        ];
        assert!(batch_stabilizes_ec(&cells, Precision::Int8).holds);
    }

    #[test]
    fn check_display_has_verdict() {
        let c = Check {
            id: "x",
            claim: "y",
            holds: true,
            evidence: "z".into(),
        };
        assert!(format!("{c}").starts_with("[PASS]"));
    }
}
